"""Linear-ordering integer-program model used by (Fair-)Kemeny.

The exact Kemeny formulation (Section III-A, Equations 7–10) is a *linear
ordering problem*: binary variables ``Y[a, b]`` indicate that candidate ``a``
is placed above candidate ``b`` in the consensus.  The constraints

* ``Y[a, b] + Y[b, a] = 1`` (antisymmetry, Equation 9) and
* ``Y[a, b] + Y[b, c] + Y[c, a] <= 2`` (transitivity, Equation 10)

force ``Y`` to encode a permutation.  We eliminate the antisymmetry constraint
by keeping only one variable per unordered pair ``(a, b)`` with ``a < b`` and
substituting ``Y[b, a] = 1 - Y[a, b]`` everywhere.  That halves the variable
count and removes ``n(n-1)/2`` equality constraints.

:class:`LinearOrderingModel` stores the objective and any number of extra
linear constraints (the MANI-Rank fairness constraints of Equations 11–12 are
added this way by :mod:`repro.fair.fair_kemeny`), and knows how to translate
a 0/1 assignment of the pair variables back into a ranking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ranking import Ranking
from repro.exceptions import SolverError, ValidationError

__all__ = ["PairVariableIndex", "LinearConstraintSpec", "LinearOrderingModel"]


class PairVariableIndex:
    """Index mapping unordered candidate pairs ``(a, b), a < b`` to variable ids."""

    def __init__(self, n_candidates: int) -> None:
        if n_candidates < 2:
            raise ValidationError(
                f"a linear ordering problem needs at least 2 candidates, got {n_candidates}"
            )
        self._n = n_candidates
        self._index: dict[tuple[int, int], int] = {}
        pairs = []
        for a in range(n_candidates):
            for b in range(a + 1, n_candidates):
                self._index[(a, b)] = len(pairs)
                pairs.append((a, b))
        self._pairs = tuple(pairs)

    @property
    def n_candidates(self) -> int:
        """Number of candidates in the ordering."""
        return self._n

    @property
    def n_variables(self) -> int:
        """Number of pair variables, ``n (n - 1) / 2``."""
        return len(self._pairs)

    @property
    def pairs(self) -> tuple[tuple[int, int], ...]:
        """All unordered pairs in variable order."""
        return self._pairs

    def variable(self, a: int, b: int) -> tuple[int, float, float]:
        """Return ``(variable id, sign, offset)`` such that ``Y[a, b] = sign * x + offset``.

        For ``a < b`` the variable represents ``Y[a, b]`` directly
        (``sign=+1, offset=0``); for ``a > b`` it is the complement
        (``sign=-1, offset=1``).
        """
        if a == b:
            raise ValidationError("Y[a, a] is not a model variable")
        if a < b:
            return self._index[(a, b)], 1.0, 0.0
        return self._index[(b, a)], -1.0, 1.0


@dataclass
class LinearConstraintSpec:
    """A linear constraint over the model variables: ``lower <= coeffs . x <= upper``.

    Coefficient keys are *model variable ids*: ids below
    ``index.n_variables`` are binary pair variables; ids at or above it are
    auxiliary continuous variables (added via
    :meth:`LinearOrderingModel.add_auxiliary_variable`).
    """

    coefficients: dict[int, float]
    lower: float
    upper: float
    label: str = ""


@dataclass
class LinearOrderingModel:
    """Objective + constraints of a (possibly fairness-constrained) Kemeny ILP."""

    index: PairVariableIndex
    objective: np.ndarray
    objective_constant: float = 0.0
    extra_constraints: list[LinearConstraintSpec] = field(default_factory=list)
    auxiliary_bounds: list[tuple[float, float]] = field(default_factory=list)

    @classmethod
    def from_precedence(cls, precedence: np.ndarray) -> "LinearOrderingModel":
        """Build the Kemeny objective (Equation 7) from a precedence matrix ``W``.

        The full objective is ``sum_{a != b} W[a, b] * Y[a, b]``.  After
        substituting the complement variables the reduced objective over
        ``x = Y[a, b], a < b`` is::

            sum_{a < b} (W[a, b] - W[b, a]) * x_ab  +  sum_{a < b} W[b, a]
        """
        precedence = np.asarray(precedence, dtype=float)
        if precedence.ndim != 2 or precedence.shape[0] != precedence.shape[1]:
            raise ValidationError(
                f"precedence matrix must be square, got shape {precedence.shape}"
            )
        n = precedence.shape[0]
        index = PairVariableIndex(n)
        coefficients = np.empty(index.n_variables, dtype=float)
        constant = 0.0
        for variable_id, (a, b) in enumerate(index.pairs):
            coefficients[variable_id] = precedence[a, b] - precedence[b, a]
            constant += precedence[b, a]
        return cls(index=index, objective=coefficients, objective_constant=constant)

    # ------------------------------------------------------------------
    # constraint construction
    # ------------------------------------------------------------------
    @property
    def n_auxiliary(self) -> int:
        """Number of auxiliary continuous variables added to the model."""
        return len(self.auxiliary_bounds)

    @property
    def n_total_variables(self) -> int:
        """Binary pair variables plus auxiliary continuous variables."""
        return self.index.n_variables + self.n_auxiliary

    def add_auxiliary_variable(self, lower: float = 0.0, upper: float = 1.0) -> int:
        """Add a continuous auxiliary variable and return its model variable id.

        Auxiliary variables carry no objective coefficient; they exist so that
        constraints such as the MANI-Rank min/max FPR formulation can be
        expressed compactly.
        """
        self.auxiliary_bounds.append((float(lower), float(upper)))
        return self.index.n_variables + len(self.auxiliary_bounds) - 1

    def add_constraint(
        self,
        pair_coefficients: dict[tuple[int, int], float],
        lower: float,
        upper: float,
        label: str = "",
        auxiliary_coefficients: dict[int, float] | None = None,
    ) -> None:
        """Add ``lower <= sum coeff[a,b] * Y[a,b] + sum aux coeffs <= upper``.

        Pair coefficients are given on the *directed* ``Y[a, b]`` variables;
        the method performs the complement substitution internally.
        ``auxiliary_coefficients`` is keyed by auxiliary variable ids returned
        from :meth:`add_auxiliary_variable`.
        """
        coefficients: dict[int, float] = {}
        offset = 0.0
        for (a, b), coefficient in pair_coefficients.items():
            variable_id, sign, constant = self.index.variable(a, b)
            coefficients[variable_id] = coefficients.get(variable_id, 0.0) + sign * coefficient
            offset += constant * coefficient
        for variable_id, coefficient in (auxiliary_coefficients or {}).items():
            if not self.index.n_variables <= variable_id < self.n_total_variables:
                raise ValidationError(
                    f"auxiliary variable id {variable_id} is not defined on this model"
                )
            coefficients[variable_id] = coefficients.get(variable_id, 0.0) + coefficient
        self.extra_constraints.append(
            LinearConstraintSpec(
                coefficients=coefficients,
                lower=lower - offset,
                upper=upper - offset,
                label=label,
            )
        )

    def triangle_constraint_rows(
        self, triples: list[tuple[int, int, int]]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Build the constraint matrix rows enforcing transitivity on ``triples``.

        For each triple ``a < b < c`` two inequalities are generated on the
        reduced variables ``x_ab, x_bc, x_ac``::

            x_ab + x_bc - x_ac <= 1      (a≺b and b≺c  =>  a≺c)
            -x_ab - x_bc + x_ac <= 0     (b≺a and c≺b  =>  c≺a)

        Returns COO-style ``(rows, cols, values)`` plus the per-row upper
        bounds; lower bounds are ``-inf``.
        """
        rows: list[int] = []
        cols: list[int] = []
        values: list[float] = []
        upper: list[float] = []
        row_id = 0
        for a, b, c in triples:
            x_ab, _, _ = self.index.variable(a, b)
            x_bc, _, _ = self.index.variable(b, c)
            x_ac, _, _ = self.index.variable(a, c)
            rows.extend([row_id, row_id, row_id])
            cols.extend([x_ab, x_bc, x_ac])
            values.extend([1.0, 1.0, -1.0])
            upper.append(1.0)
            row_id += 1
            rows.extend([row_id, row_id, row_id])
            cols.extend([x_ab, x_bc, x_ac])
            values.extend([-1.0, -1.0, 1.0])
            upper.append(0.0)
            row_id += 1
        return (
            np.asarray(rows, dtype=np.int64),
            np.asarray(cols, dtype=np.int64),
            np.asarray(values, dtype=float),
            np.asarray(upper, dtype=float),
        )

    def all_triples(self) -> list[tuple[int, int, int]]:
        """Every ordered triple ``a < b < c`` of the candidate universe."""
        n = self.index.n_candidates
        return [
            (a, b, c)
            for a in range(n)
            for b in range(a + 1, n)
            for c in range(b + 1, n)
        ]

    # ------------------------------------------------------------------
    # solution handling
    # ------------------------------------------------------------------
    def objective_value(self, assignment: np.ndarray) -> float:
        """Evaluate the full (unreduced) Kemeny objective for an assignment.

        ``assignment`` may include trailing auxiliary-variable values; only
        the pair-variable prefix contributes to the objective.
        """
        pair_assignment = assignment[: self.index.n_variables]
        return float(self.objective @ pair_assignment + self.objective_constant)

    def violated_triples(self, assignment: np.ndarray) -> list[tuple[int, int, int]]:
        """Return triples whose transitivity constraints the 0/1 assignment violates."""
        rounded = np.rint(assignment[: self.index.n_variables]).astype(np.int64)
        n = self.index.n_candidates
        # Y[a, b] for all ordered pairs from the reduced assignment.
        prefers = np.zeros((n, n), dtype=bool)
        for variable_id, (a, b) in enumerate(self.index.pairs):
            if rounded[variable_id] == 1:
                prefers[a, b] = True
            else:
                prefers[b, a] = True
        violated: list[tuple[int, int, int]] = []
        for a in range(n):
            for b in range(a + 1, n):
                for c in range(b + 1, n):
                    # cycle a->b->c->a or the reverse cycle.
                    if prefers[a, b] and prefers[b, c] and prefers[c, a]:
                        violated.append((a, b, c))
                    elif prefers[b, a] and prefers[c, b] and prefers[a, c]:
                        violated.append((a, b, c))
        return violated

    def assignment_to_ranking(self, assignment: np.ndarray) -> Ranking:
        """Convert a transitive 0/1 assignment into a :class:`Ranking`.

        Each candidate's number of "wins" (pairs in which it is placed above
        the other candidate) determines its position; a transitive tournament
        yields distinct win counts ``n-1, n-2, ..., 0``.
        """
        rounded = np.rint(assignment[: self.index.n_variables]).astype(np.int64)
        n = self.index.n_candidates
        wins = np.zeros(n, dtype=np.int64)
        for variable_id, (a, b) in enumerate(self.index.pairs):
            if rounded[variable_id] == 1:
                wins[a] += 1
            else:
                wins[b] += 1
        if sorted(wins.tolist()) != list(range(n)):
            raise SolverError(
                "assignment is not a transitive tournament; cannot decode a ranking"
            )
        order = np.argsort(-wins, kind="stable").astype(np.int64)
        return Ranking(order, validate=False)

    def ranking_to_assignment(self, ranking: Ranking) -> np.ndarray:
        """Encode a ranking as a 0/1 assignment of the pair variables (warm starts)."""
        assignment = np.zeros(self.index.n_variables, dtype=float)
        positions = ranking.positions
        for variable_id, (a, b) in enumerate(self.index.pairs):
            assignment[variable_id] = 1.0 if positions[a] < positions[b] else 0.0
        return assignment
