"""Optimization substrate: linear-ordering ILP model, MILP backend, branch and bound."""

from repro.optimize.branch_and_bound import branch_and_bound_kemeny
from repro.optimize.milp_backend import MilpSolution, solve_linear_ordering
from repro.optimize.model import LinearConstraintSpec, LinearOrderingModel, PairVariableIndex

__all__ = [
    "LinearOrderingModel",
    "LinearConstraintSpec",
    "PairVariableIndex",
    "MilpSolution",
    "solve_linear_ordering",
    "branch_and_bound_kemeny",
]
