"""MILP backend for the linear-ordering model using scipy's HiGHS solver.

The paper solves the (Fair-)Kemeny integer program with IBM CPLEX.  CPLEX is
proprietary, so this reproduction solves the *same formulation* with the HiGHS
solver shipped inside :func:`scipy.optimize.milp`.  Two solve strategies are
provided:

* **eager** — generate all ``2 * C(n, 3)`` transitivity constraints up front.
  Simple and robust, fine for a few dozen candidates.
* **lazy** (cutting-plane) — start with no transitivity constraints, solve,
  find violated triples in the integer solution, add only those, and repeat.
  Kemeny objectives are usually "almost transitive" because the precedence
  matrix already encodes a near-order, so only a tiny fraction of triangle
  constraints is ever needed.  This is how the reproduction scales without
  CPLEX.

The model may contain auxiliary *continuous* variables (used by the compact
min/max formulation of the MANI-Rank constraints); they are appended after the
binary pair variables.

A per-solve ``time_limit`` can be set.  When HiGHS hits the limit but has an
integer-feasible incumbent, that incumbent is returned and the solution is
marked non-optimal; fairness constraints still hold for it (it is feasible),
only PD-loss optimality is lost.  This mirrors how a practitioner would run
the exact method on large instances without a commercial solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.exceptions import InfeasibleProblemError, SolverError
from repro.optimize.model import LinearOrderingModel

__all__ = ["MilpSolution", "solve_linear_ordering"]

#: Default maximum number of cutting-plane rounds before giving up.
DEFAULT_MAX_ROUNDS = 60

#: HiGHS status codes returned by scipy.optimize.milp.
_STATUS_OPTIMAL = 0
_STATUS_LIMIT = 1
_STATUS_INFEASIBLE = 2


@dataclass(frozen=True)
class MilpSolution:
    """Result of a linear-ordering MILP solve."""

    assignment: np.ndarray
    objective: float
    rounds: int
    n_lazy_constraints: int
    optimal: bool = True


def _build_constraints(
    model: LinearOrderingModel,
    triples: list[tuple[int, int, int]],
) -> list[LinearConstraint]:
    """Assemble scipy ``LinearConstraint`` objects for triangles + extra constraints."""
    constraints: list[LinearConstraint] = []
    n_variables = model.n_total_variables
    if triples:
        rows, cols, values, upper = model.triangle_constraint_rows(triples)
        matrix = sparse.coo_matrix(
            (values, (rows, cols)), shape=(len(upper), n_variables)
        ).tocsr()
        lower = np.full(len(upper), -np.inf)
        constraints.append(LinearConstraint(matrix, lower, upper))
    if model.extra_constraints:
        rows_list: list[int] = []
        cols_list: list[int] = []
        values_list: list[float] = []
        lowers: list[float] = []
        uppers: list[float] = []
        for row_id, spec in enumerate(model.extra_constraints):
            for variable_id, coefficient in spec.coefficients.items():
                rows_list.append(row_id)
                cols_list.append(variable_id)
                values_list.append(coefficient)
            lowers.append(spec.lower)
            uppers.append(spec.upper)
        matrix = sparse.coo_matrix(
            (values_list, (rows_list, cols_list)),
            shape=(len(model.extra_constraints), n_variables),
        ).tocsr()
        constraints.append(LinearConstraint(matrix, np.asarray(lowers), np.asarray(uppers)))
    return constraints


def _run_milp(
    model: LinearOrderingModel,
    triples: list[tuple[int, int, int]],
    time_limit: float | None,
    mip_rel_gap: float | None,
) -> tuple[np.ndarray, bool]:
    """Run one MILP solve; return the assignment and whether it is proven optimal."""
    n_pairs = model.index.n_variables
    n_variables = model.n_total_variables
    constraints = _build_constraints(model, triples)
    options: dict[str, float | bool] = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    if mip_rel_gap is not None:
        options["mip_rel_gap"] = float(mip_rel_gap)

    objective = np.concatenate([model.objective, np.zeros(model.n_auxiliary)])
    integrality = np.concatenate(
        [np.ones(n_pairs), np.zeros(model.n_auxiliary)]
    )
    lower_bounds = np.zeros(n_variables)
    upper_bounds = np.ones(n_variables)
    for offset, (lower, upper) in enumerate(model.auxiliary_bounds):
        lower_bounds[n_pairs + offset] = lower
        upper_bounds[n_pairs + offset] = upper

    result = milp(
        c=objective,
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(lb=lower_bounds, ub=upper_bounds),
        options=options or None,
    )
    if result.status == _STATUS_INFEASIBLE:
        raise InfeasibleProblemError(
            "the (fair) Kemeny integer program is infeasible for the given "
            "constraints; consider relaxing the fairness threshold delta"
        )
    if result.status == _STATUS_LIMIT and result.x is not None:
        # Time/iteration limit with an integer-feasible incumbent: usable,
        # just not proven optimal.
        return np.asarray(result.x, dtype=float), False
    if not result.success or result.x is None:
        raise SolverError(
            f"MILP solver failed (status={result.status}): {result.message}"
        )
    return np.asarray(result.x, dtype=float), True


def solve_linear_ordering(
    model: LinearOrderingModel,
    lazy: bool | None = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    time_limit: float | None = None,
    mip_rel_gap: float | None = None,
) -> MilpSolution:
    """Solve the linear-ordering model (to optimality when no limit is hit).

    Parameters
    ----------
    model:
        The objective + extra (fairness) constraints.
    lazy:
        ``True`` to use cutting-plane triangle generation, ``False`` to add
        all triangle constraints eagerly.  ``None`` (default) picks lazy for
        more than 30 candidates when the model has no extra constraints;
        models carrying fairness constraints default to eager, because their
        unconstrained-round incumbents are far from transitive and the
        cutting-plane loop converges slowly.
    max_rounds:
        Safety cap on cutting-plane iterations.
    time_limit:
        Optional per-solve time limit in seconds passed to HiGHS.  When the
        limit is reached with an integer-feasible incumbent, the incumbent is
        returned and the solution is flagged ``optimal=False``.
    mip_rel_gap:
        Optional relative MIP gap passed to HiGHS (e.g. ``1e-3`` trades a
        provably tiny amount of PD loss for a large speedup on hard
        fairness-constrained instances).

    Returns
    -------
    MilpSolution
        The assignment, its objective value, solve statistics, and whether the
        solution is proven optimal.
    """
    n = model.index.n_candidates
    if lazy is None:
        lazy = n > 30 and not model.extra_constraints

    if not lazy:
        assignment, optimal = _run_milp(model, model.all_triples(), time_limit, mip_rel_gap)
        if model.violated_triples(assignment):
            raise SolverError(
                "eager MILP returned a non-transitive assignment; this should "
                "not happen with all triangle constraints present"
            )
        return MilpSolution(
            assignment=assignment,
            objective=model.objective_value(assignment),
            rounds=1,
            n_lazy_constraints=2 * len(model.all_triples()),
            optimal=optimal,
        )

    triples: list[tuple[int, int, int]] = []
    seen: set[tuple[int, int, int]] = set()
    optimal = True
    for round_number in range(1, max_rounds + 1):
        assignment, round_optimal = _run_milp(model, triples, time_limit, mip_rel_gap)
        optimal = optimal and round_optimal
        violated = model.violated_triples(assignment)
        if not violated:
            return MilpSolution(
                assignment=assignment,
                objective=model.objective_value(assignment),
                rounds=round_number,
                n_lazy_constraints=2 * len(triples),
                optimal=optimal,
            )
        added = 0
        for triple in violated:
            if triple not in seen:
                seen.add(triple)
                triples.append(triple)
                added += 1
        if added == 0:
            raise SolverError(
                "cutting-plane loop stalled: violated triangles were already "
                "present in the model"
            )
    raise SolverError(
        f"cutting-plane loop did not converge within {max_rounds} rounds; "
        "re-run with lazy=False or a larger max_rounds"
    )
