"""Pure-Python branch-and-bound solver for the (small) Kemeny problem.

This is an independent exact solver used to cross-check the MILP backend in
the test suite and as a dependency-free fallback when scipy's MILP is
unavailable.  It explores permutations by appending one candidate at a time to
a growing prefix (best position first) and prunes with the classic pairwise
lower bound::

    bound(prefix) = cost(prefix)                      # disagreements already fixed
                  + sum over unordered pairs {a, b}   # both still unplaced
                        min(W[a, b], W[b, a])

The solver is exponential in the number of candidates and intended for
``n <= ~15``; callers wanting larger instances should use the MILP backend.
"""

from __future__ import annotations

import numpy as np

from repro.core.ranking import Ranking
from repro.exceptions import ValidationError

__all__ = ["branch_and_bound_kemeny"]

#: Practical ceiling above which branch-and-bound is refused outright.
MAX_CANDIDATES = 18


def _pairwise_min_bound(precedence: np.ndarray, remaining: list[int]) -> float:
    """Lower bound contributed by pairs of still-unplaced candidates."""
    bound = 0.0
    for i, a in enumerate(remaining):
        for b in remaining[i + 1 :]:
            bound += min(precedence[a, b], precedence[b, a])
    return bound


def branch_and_bound_kemeny(
    precedence: np.ndarray,
    initial_upper_bound: float | None = None,
    initial_ranking: Ranking | None = None,
) -> tuple[Ranking, float]:
    """Solve the Kemeny problem exactly by branch and bound.

    Parameters
    ----------
    precedence:
        Precedence matrix ``W`` (Definition 11): ``W[a, b]`` is the number of
        base rankings placing ``b`` above ``a``, i.e. the cost of putting
        ``a`` above ``b`` in the consensus.
    initial_upper_bound:
        Optional known objective value used to prune from the start (e.g. the
        Borda consensus objective).
    initial_ranking:
        Optional ranking matching ``initial_upper_bound``; returned if no
        better permutation exists.

    Returns
    -------
    (Ranking, float)
        The optimal consensus ranking and its Kemeny objective value.
    """
    precedence = np.asarray(precedence, dtype=float)
    if precedence.ndim != 2 or precedence.shape[0] != precedence.shape[1]:
        raise ValidationError(
            f"precedence matrix must be square, got shape {precedence.shape}"
        )
    n = precedence.shape[0]
    if n > MAX_CANDIDATES:
        raise ValidationError(
            f"branch-and-bound Kemeny supports at most {MAX_CANDIDATES} candidates "
            f"(got {n}); use the MILP backend for larger instances"
        )
    if n == 1:
        return Ranking([0]), 0.0

    best_cost = float("inf") if initial_upper_bound is None else float(initial_upper_bound)
    best_order: list[int] | None = (
        initial_ranking.to_list() if initial_ranking is not None else None
    )

    # Order candidates by Borda-like score so promising branches come first.
    attractiveness = precedence.sum(axis=0) - precedence.sum(axis=1)
    candidate_order = np.argsort(-attractiveness, kind="stable").tolist()

    def recurse(prefix: list[int], remaining: list[int], prefix_cost: float) -> None:
        nonlocal best_cost, best_order
        if not remaining:
            if prefix_cost < best_cost:
                best_cost = prefix_cost
                best_order = list(prefix)
            return
        lower_bound = prefix_cost + _pairwise_min_bound(precedence, remaining)
        if lower_bound >= best_cost:
            return
        # Try each remaining candidate as the next (best) position, most
        # attractive first so good incumbents are found early.
        for candidate in remaining:
            added_cost = sum(precedence[candidate, other] for other in remaining if other != candidate)
            recurse(
                prefix + [candidate],
                [other for other in remaining if other != candidate],
                prefix_cost + added_cost,
            )

    recurse([], candidate_order, 0.0)
    if best_order is None:  # pragma: no cover - defensive; cannot happen for n >= 1
        raise ValidationError("branch and bound failed to produce a ranking")
    return Ranking(np.asarray(best_order, dtype=np.int64)), float(best_cost)
