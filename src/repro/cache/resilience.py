"""Resilience primitives for the serving stack: retries, breakers, admission.

The serving layer (PR 6) was only correct on the happy path: a slow client
could hold a connection forever, a full disk turned every cache write into a
500, and shutdown abandoned in-flight aggregations.  This module collects the
failure-containment building blocks the stack now runs on:

:class:`RetryPolicy`
    Synchronous retry-with-backoff for transient :class:`OSError`\\ s around
    the disk tier's filesystem operations.  The sleep function is injectable
    so tests never wait on real time.

:class:`CircuitBreaker`
    A classic closed → open → half-open breaker.  After ``failure_threshold``
    consecutive failures the breaker opens and callers stop attempting the
    guarded operation; after ``recovery_after`` seconds (measured on an
    injectable monotonic clock) a single half-open probe is allowed through —
    success closes the breaker, failure re-opens it.  The cache uses this to
    degrade to memory-only service instead of raising out of ``put``.

:class:`AdmissionController`
    A semaphore-style in-flight budget with an explicit bounded wait queue.
    ``acquire`` admits immediately below the budget, queues up to
    ``queue_depth`` waiters, and *sheds* (returns ``False``) beyond that so
    the HTTP front-end can answer 503 + ``Retry-After`` instead of piling up
    unbounded work.  Single-event-loop use only — no locks.

:class:`LatencyRecorder`
    A fixed-window latency sample with nearest-rank percentiles for the
    ``/stats`` endpoint.

:class:`AsyncClock`
    The event-loop time source behind every HTTP deadline (``monotonic`` /
    ``wait_for`` / ``sleep``).  Tests substitute a virtual clock
    (``tests/cache/faults.py``) whose time only advances on demand, so the
    slowloris/drain suites are deterministic and sleep-free.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from collections.abc import Awaitable, Callable
from dataclasses import dataclass, field
from typing import TypeVar

__all__ = [
    "AdmissionController",
    "AsyncClock",
    "CircuitBreaker",
    "LatencyRecorder",
    "RetryPolicy",
]

T = TypeVar("T")

#: Breaker state names (also reported verbatim in ``CacheStats.breaker_state``).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class RetryPolicy:
    """Retry a synchronous operation with exponential backoff.

    Parameters
    ----------
    attempts:
        Total tries, including the first (so ``attempts=3`` retries twice).
    base_delay:
        Seconds slept after the first failure; each further failure multiplies
        the delay by ``multiplier``.
    multiplier:
        Backoff factor between consecutive delays.
    retry_on:
        Exception types considered transient and retried.
    no_retry:
        Exception types re-raised immediately even when they match
        ``retry_on`` — ``FileNotFoundError`` by default, because a missing
        blob is a definitive miss, never a transient fault.
    sleep:
        Injectable sleep function; tests pass a no-op so retries are instant.
    """

    attempts: int = 3
    base_delay: float = 0.02
    multiplier: float = 2.0
    retry_on: tuple[type[BaseException], ...] = (OSError,)
    no_retry: tuple[type[BaseException], ...] = (FileNotFoundError,)
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        """Validate the attempt budget."""
        if self.attempts < 1:
            raise ValueError("attempts must be at least 1")

    def call(self, operation: Callable[[], T]) -> T:
        """Run ``operation``, retrying transient failures; re-raise the last one."""
        delay = self.base_delay
        for attempt in range(self.attempts):
            try:
                return operation()
            except self.retry_on as exc:
                if isinstance(exc, self.no_retry) or attempt == self.attempts - 1:
                    raise
                self.sleep(delay)
                delay *= self.multiplier
        raise AssertionError("unreachable")  # pragma: no cover


class CircuitBreaker:
    """Closed → open → half-open breaker over an injectable monotonic clock.

    ``allow()`` answers "may the caller attempt the guarded operation now?":

    - **closed** — always ``True``; consecutive failures are counted and the
      breaker opens at ``failure_threshold``.
    - **open** — ``False`` until ``recovery_after`` seconds have elapsed since
      opening; then the next ``allow()`` transitions to half-open and admits
      exactly one probe.
    - **half-open** — the probe is in flight: further ``allow()`` calls return
      ``False``.  ``record_success`` closes the breaker, ``record_failure``
      re-opens it (restarting the recovery clock), and ``record_neutral`` —
      an outcome that never exercised the guarded path, such as a clean
      cache miss — releases the probe slot so the next caller probes again.

    Thread-safe: the cache calls it both under its own lock and from tests.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_after: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """See the class docstring for the parameter contract."""
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self._threshold = failure_threshold
        self._recovery_after = recovery_after
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._open_count = 0

    @property
    def state(self) -> str:
        """Current state: ``"closed"``, ``"open"``, or ``"half-open"``."""
        with self._lock:
            return self._state

    @property
    def open_count(self) -> int:
        """Lifetime number of closed/half-open → open transitions."""
        with self._lock:
            return self._open_count

    def allow(self) -> bool:
        """Return ``True`` when the guarded operation may be attempted now."""
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self._recovery_after:
                    self._state = HALF_OPEN
                    return True  # the single half-open probe
                return False
            return False  # half-open: probe already in flight

    def record_success(self) -> None:
        """Report a successful guarded operation: reset failures, close."""
        with self._lock:
            self._consecutive_failures = 0
            self._state = CLOSED

    def record_failure(self) -> None:
        """Report a failed guarded operation; may open (or re-open) the breaker."""
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN or self._consecutive_failures >= self._threshold:
                if self._state != OPEN:
                    self._open_count += 1
                self._state = OPEN
                self._opened_at = self._clock()

    def record_neutral(self) -> None:
        """Report an outcome that is evidence of neither health nor failure.

        A clean cache miss never exercises the faulty path (a write-broken
        disk reads fine), so it must not reset the consecutive-failure count
        the way ``record_success`` does.  When it was the half-open probe
        that came back inconclusive, the probe slot is released — the state
        returns to open with the recovery clock untouched, so the very next
        ``allow()`` admits a fresh probe.
        """
        with self._lock:
            if self._state == HALF_OPEN:
                self._state = OPEN


class AdmissionController:
    """Bounded in-flight budget with an explicit wait queue; excess is shed.

    Built for single-event-loop use (no locks): ``acquire`` either admits
    immediately (``active < max_inflight``), parks the caller in a FIFO queue
    bounded by ``queue_depth``, or returns ``False`` — the shed signal the
    HTTP layer maps to 503 + ``Retry-After``.  ``release`` hands the freed
    slot to the oldest live waiter.
    """

    def __init__(self, max_inflight: int = 64, queue_depth: int = 16) -> None:
        """See the class docstring for the parameter contract."""
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if queue_depth < 0:
            raise ValueError("queue_depth must be non-negative")
        self._max_inflight = max_inflight
        self._queue_depth = queue_depth
        self._active = 0
        self._waiters: deque[asyncio.Future] = deque()
        self._admitted = 0
        self._shed = 0

    @property
    def active(self) -> int:
        """Requests currently holding an in-flight slot."""
        return self._active

    @property
    def queued(self) -> int:
        """Requests currently parked in the wait queue."""
        return sum(1 for waiter in self._waiters if not waiter.done())

    @property
    def shed(self) -> int:
        """Lifetime number of requests rejected because the queue was full."""
        return self._shed

    async def acquire(self) -> bool:
        """Admit, queue, or shed; return ``True`` once a slot is held."""
        if self._active < self._max_inflight:
            self._active += 1
            self._admitted += 1
            return True
        if self.queued >= self._queue_depth:
            self._shed += 1
            return False
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.append(waiter)
        try:
            await waiter
        except asyncio.CancelledError:
            if waiter.done() and not waiter.cancelled():
                # The slot was handed over in the same tick we were cancelled:
                # give it back so it is not leaked.
                self.release()
            raise
        self._admitted += 1
        return True

    def release(self) -> None:
        """Free a slot, handing it to the oldest still-waiting request."""
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(True)  # the slot transfers; active is unchanged
                return
        self._active -= 1

    def snapshot(self) -> dict[str, int]:
        """JSON-safe counters for the ``/stats`` endpoint."""
        return {
            "max_inflight": self._max_inflight,
            "queue_depth": self._queue_depth,
            "inflight": self._active,
            "queued": self.queued,
            "admitted": self._admitted,
            "shed": self._shed,
        }


class LatencyRecorder:
    """Fixed-window latency sample with nearest-rank percentiles.

    Records per-request wall seconds into a bounded deque (the window) and
    reports p50/p90/p99/mean in milliseconds plus the lifetime count.
    """

    def __init__(self, window: int = 1024) -> None:
        """Keep at most ``window`` recent samples for the percentile view."""
        self._samples: deque[float] = deque(maxlen=window)
        self._count = 0

    def record(self, seconds: float) -> None:
        """Add one request latency (in seconds) to the window."""
        self._samples.append(seconds)
        self._count += 1

    @staticmethod
    def _percentile(ordered: list[float], fraction: float) -> float:
        """Nearest-rank percentile of a pre-sorted sample."""
        rank = max(0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> dict[str, float | int]:
        """JSON-safe ``{count, mean_ms, p50_ms, p90_ms, p99_ms}`` summary."""
        ordered = sorted(self._samples)
        if not ordered:
            return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p90_ms": 0.0, "p99_ms": 0.0}
        to_ms = 1000.0
        return {
            "count": self._count,
            "mean_ms": sum(ordered) / len(ordered) * to_ms,
            "p50_ms": self._percentile(ordered, 0.50) * to_ms,
            "p90_ms": self._percentile(ordered, 0.90) * to_ms,
            "p99_ms": self._percentile(ordered, 0.99) * to_ms,
        }


@dataclass(frozen=True)
class ServerLimits:
    """Read-deadline and header-size limits enforced per connection.

    ``read_timeout`` bounds each *phase* of reading a request (request line,
    header block, body) separately; a client that trickles bytes forever gets
    a 408 at the first exhausted phase.  ``max_header_count`` and
    ``max_header_bytes`` (per line) turn pathological header blocks into 431
    responses instead of unbounded buffering.
    """

    read_timeout: float = 10.0
    max_header_count: int = 100
    max_header_bytes: int = 8192
    max_body_bytes: int = 64 * 1024 * 1024


@dataclass
class AsyncClock:
    """Event-loop time source: ``monotonic`` plus deadline-bounded awaiting.

    The HTTP server takes every timestamp and timeout through this object so
    tests can substitute a virtual clock (``tests/cache/faults.py``) whose
    time advances only when the test says so — deterministic slowloris and
    drain coverage with zero real sleeping.
    """

    _monotonic: Callable[[], float] = field(default=time.monotonic, repr=False)

    def monotonic(self) -> float:
        """Current monotonic time in seconds."""
        return self._monotonic()

    async def wait_for(self, awaitable: Awaitable[T], timeout: float) -> T:
        """Await ``awaitable``, raising ``asyncio.TimeoutError`` past ``timeout``."""
        return await asyncio.wait_for(awaitable, timeout)

    async def sleep(self, delay: float) -> None:
        """Suspend the calling task for ``delay`` seconds."""
        await asyncio.sleep(delay)


# ServerLimits is re-exported with the primitives above.
__all__.append("ServerLimits")
