"""Two-tier result store: memory LRU over an optional disk tier.

The memory tier is a capacity-bounded LRU (an :class:`~collections.OrderedDict`
keyed by content digest); the disk tier persists every stored payload as one
JSON blob per digest, written atomically (temp file + :func:`os.replace`) so a
crash mid-write never leaves a truncated blob under the final name.  Reads
fall through memory → disk; a disk hit is promoted back into memory.

Failure containment: a corrupted disk blob (truncated file, invalid JSON,
non-object payload) is treated as a miss — the blob is deleted, a
``disk_corruptions`` counter is bumped, and the caller recomputes.  The cache
never raises on bad persisted state.

All operations are guarded by one lock so the HTTP front-end can compute
cache misses on executor threads; counters are reported as an immutable
:class:`CacheStats` snapshot.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.io.serialization import canonical_json

__all__ = ["CacheStats", "DiskTier", "ResultCache"]


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of the cache counters.

    ``hits`` always equals ``memory_hits + disk_hits``; ``disk_corruptions``
    counts blobs that were discarded as unreadable (each also counted as a
    miss).  ``memory_entries``/``disk_entries``/``disk_bytes`` are the current
    sizes, not lifetime counters.
    """

    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    evictions: int = 0
    disk_corruptions: int = 0
    memory_entries: int = 0
    disk_entries: int = 0
    disk_bytes: int = 0

    @property
    def requests(self) -> int:
        """Total lookups observed (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when no lookups yet)."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def to_dict(self) -> dict[str, object]:
        """JSON-safe view including the derived ``requests``/``hit_rate``."""
        payload: dict[str, object] = asdict(self)
        payload["requests"] = self.requests
        payload["hit_rate"] = self.hit_rate
        return payload


class DiskTier:
    """One-JSON-blob-per-digest persistent tier under ``directory``.

    Blobs are canonical JSON objects named ``<digest>.json``.  Loading a blob
    that is missing returns ``None``; loading one that is unreadable deletes
    it and returns ``None`` while reporting the corruption to the caller.
    """

    def __init__(self, directory: str | Path) -> None:
        """Create (if needed) and bind the blob directory."""
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._corruptions = 0

    @property
    def directory(self) -> Path:
        """The blob directory."""
        return self._directory

    def path_for(self, digest: str) -> Path:
        """Blob path of ``digest``."""
        return self._directory / f"{digest}.json"

    def load(self, digest: str) -> dict | None:
        """Return the stored payload, or ``None`` on a miss.

        Returns
        -------
        The payload dictionary, or ``None`` when the blob is missing or was
        discarded as corrupt (distinguish via the return of :meth:`discarded`
        — :class:`ResultCache` tracks the counter).
        """
        path = self.path_for(digest)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
        if not isinstance(payload, dict):
            # Truncated or otherwise mangled blob: drop it so the slot heals
            # on the next store, and let the caller recompute.
            path.unlink(missing_ok=True)
            self._corruptions += 1
            return None
        return payload

    def pop_corruptions(self) -> int:
        """Return and reset the number of blobs discarded since the last call."""
        count = self._corruptions
        self._corruptions = 0
        return count

    def store(self, digest: str, payload: dict) -> None:
        """Atomically persist ``payload`` as the blob for ``digest``."""
        path = self.path_for(digest)
        temporary = path.with_suffix(".json.tmp")
        temporary.write_text(canonical_json(payload) + "\n")
        os.replace(temporary, path)

    def entry_count(self) -> int:
        """Number of blobs currently on disk."""
        return sum(1 for _ in self._directory.glob("*.json"))

    def total_bytes(self) -> int:
        """Total size in bytes of the blobs currently on disk."""
        return sum(path.stat().st_size for path in self._directory.glob("*.json"))


class ResultCache:
    """Memory-LRU-over-disk result cache keyed by content digest.

    Parameters
    ----------
    memory_capacity:
        Maximum number of payloads held in memory; the least recently used
        entry is evicted (counted in :class:`CacheStats.evictions`) when a
        store or a disk promotion exceeds it.  ``None`` disables the bound.
    directory:
        Optional disk-tier directory.  When set, every stored payload is also
        persisted, memory evictions remain servable from disk, and the cache
        survives process restarts.
    """

    def __init__(
        self,
        memory_capacity: int | None = 256,
        directory: str | Path | None = None,
    ) -> None:
        """See the class docstring for the parameter contract."""
        if memory_capacity is not None and memory_capacity < 1:
            raise ValueError("memory_capacity must be at least 1 (or None)")
        self._capacity = memory_capacity
        self._memory: OrderedDict[str, dict] = OrderedDict()
        self._disk = DiskTier(directory) if directory is not None else None
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._memory_hits = 0
        self._disk_hits = 0
        self._evictions = 0
        self._disk_corruptions = 0

    @property
    def disk(self) -> DiskTier | None:
        """The disk tier, or ``None`` when the cache is memory-only."""
        return self._disk

    def _admit(self, digest: str, payload: dict) -> None:
        """Insert into the memory tier, evicting the LRU entry past capacity."""
        self._memory[digest] = payload
        self._memory.move_to_end(digest)
        if self._capacity is not None:
            while len(self._memory) > self._capacity:
                self._memory.popitem(last=False)
                self._evictions += 1

    def get(self, digest: str) -> dict | None:
        """Return the cached payload for ``digest``, or ``None`` on a miss."""
        with self._lock:
            if digest in self._memory:
                self._memory.move_to_end(digest)
                self._hits += 1
                self._memory_hits += 1
                return self._memory[digest]
            if self._disk is not None:
                payload = self._disk.load(digest)
                self._disk_corruptions += self._disk.pop_corruptions()
                if payload is not None:
                    self._hits += 1
                    self._disk_hits += 1
                    self._admit(digest, payload)
                    return payload
            self._misses += 1
            return None

    def put(self, digest: str, payload: dict) -> None:
        """Store ``payload`` under ``digest`` in both tiers."""
        with self._lock:
            self._admit(digest, payload)
            if self._disk is not None:
                self._disk.store(digest, payload)

    def stats(self) -> CacheStats:
        """Return an immutable snapshot of the counters and current sizes."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                memory_hits=self._memory_hits,
                disk_hits=self._disk_hits,
                evictions=self._evictions,
                disk_corruptions=self._disk_corruptions,
                memory_entries=len(self._memory),
                disk_entries=self._disk.entry_count() if self._disk else 0,
                disk_bytes=self._disk.total_bytes() if self._disk else 0,
            )
