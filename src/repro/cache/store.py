"""Two-tier result store: memory LRU over an optional disk tier.

The memory tier is a capacity-bounded LRU (an :class:`~collections.OrderedDict`
keyed by content digest); the disk tier persists every stored payload as one
JSON blob per digest, written atomically (temp file + :func:`os.replace`) so a
crash mid-write never leaves a truncated blob under the final name.  Reads
fall through memory → disk; a disk hit is promoted back into memory.

Failure containment (degrade, don't die):

- A corrupted disk blob (truncated file, invalid JSON, non-object payload) is
  treated as a miss — the blob is deleted, ``disk_corruptions`` is bumped,
  and the caller recomputes.
- Transient :class:`OSError`\\ s around the disk tier (``ENOSPC``, permission
  flaps, ...) are retried with backoff (:class:`~repro.cache.resilience.RetryPolicy`);
  a load that still fails degrades to a quarantined miss (``disk_errors``),
  never an exception out of :meth:`ResultCache.get`.
- Repeated store/load failures open a
  :class:`~repro.cache.resilience.CircuitBreaker`: the cache degrades to
  memory-only service (``disk_degraded`` in :class:`CacheStats`) instead of
  raising out of :meth:`ResultCache.put`, and a half-open probe re-attaches
  the disk tier once it recovers.
- Startup sweeps stale ``*.json.tmp`` files left by a crash between the temp
  write and the atomic rename.

All filesystem access goes through an injectable :class:`LocalFilesystem`
seam so the fault-injection harness (``tests/cache/faults.py``) can fail,
tear, or delay any operation on a schedule.  All cache operations are guarded
by one lock so the HTTP front-end can compute cache misses on executor
threads; counters are reported as an immutable :class:`CacheStats` snapshot.
"""

from __future__ import annotations

import functools
import json
import os
import threading
from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.cache.resilience import CLOSED, CircuitBreaker, RetryPolicy
from repro.io.serialization import canonical_json

__all__ = ["CacheStats", "DiskTier", "LocalFilesystem", "ResultCache"]


class LocalFilesystem:
    """Direct filesystem operations behind the :class:`DiskTier` seam.

    Every disk-tier touch routes through one of these methods so the
    fault-injection harness can subclass this and fail operations on a
    schedule (ENOSPC, EACCES, torn writes) without monkeypatching.
    """

    def read_text(self, path: Path) -> str:
        """Return the text contents of ``path``."""
        return Path(path).read_text()

    def write_text(self, path: Path, text: str) -> None:
        """Write ``text`` to ``path``."""
        Path(path).write_text(text)

    def replace(self, source: Path, destination: Path) -> None:
        """Atomically rename ``source`` over ``destination``."""
        os.replace(source, destination)

    def unlink(self, path: Path, missing_ok: bool = False) -> None:
        """Remove ``path``."""
        Path(path).unlink(missing_ok=missing_ok)

    def glob(self, directory: Path, pattern: str) -> list[Path]:
        """List the paths under ``directory`` matching ``pattern``."""
        return list(Path(directory).glob(pattern))

    def stat(self, path: Path) -> os.stat_result:
        """Stat ``path``."""
        return Path(path).stat()

    def mkdir(self, directory: Path) -> None:
        """Create ``directory`` (and parents) if missing."""
        Path(directory).mkdir(parents=True, exist_ok=True)


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of the cache counters.

    ``hits`` always equals ``memory_hits + disk_hits``; ``disk_corruptions``
    counts blobs that were discarded as unreadable (each also counted as a
    miss).  ``disk_errors`` counts disk operations that still failed after
    retries (reads degrade to quarantined misses, writes to memory-only
    stores); ``disk_degraded`` is ``True`` while the disk circuit breaker is
    not closed — the cache is serving memory-only — and ``breaker_state``
    reports the breaker verbatim (``closed``/``open``/``half-open``).
    ``memory_entries``/``disk_entries``/``disk_bytes`` are the current sizes,
    not lifetime counters.  ``invalidations`` counts entries removed because
    their profile changed (explicit :meth:`ResultCache.invalidate` calls, as
    the streaming engine issues after every update) — distinct from
    ``evictions``, which are capacity-driven; ``profile_version`` echoes the
    version recorded by the most recent invalidation (0 before any).
    """

    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    evictions: int = 0
    disk_corruptions: int = 0
    memory_entries: int = 0
    disk_entries: int = 0
    disk_bytes: int = 0
    disk_errors: int = 0
    disk_degraded: bool = False
    breaker_state: str = CLOSED
    invalidations: int = 0
    profile_version: int = 0

    @property
    def requests(self) -> int:
        """Total lookups observed (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when no lookups yet)."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def to_dict(self) -> dict[str, object]:
        """JSON-safe view including the derived ``requests``/``hit_rate``."""
        payload: dict[str, object] = asdict(self)
        payload["requests"] = self.requests
        payload["hit_rate"] = self.hit_rate
        return payload


class DiskTier:
    """One-JSON-blob-per-digest persistent tier under ``directory``.

    Blobs are canonical JSON objects named ``<digest>.json``.  Loading a blob
    that is missing returns ``None``; loading one that is unreadable —
    corrupt content *or* a persistent ``OSError`` such as permission denied —
    degrades to ``None`` while reporting the corruption/error to the caller
    via :meth:`pop_corruptions`/:meth:`pop_errors`.  Transient ``OSError``\\ s
    are retried per ``retry``; construction sweeps stale ``*.json.tmp`` files
    left by a crash mid-store.
    """

    def __init__(
        self,
        directory: str | Path,
        retry: RetryPolicy | None = None,
        fs: LocalFilesystem | None = None,
    ) -> None:
        """Create (if needed) and bind the blob directory.

        ``retry`` wraps every filesystem operation (default: 3 attempts with
        exponential backoff); ``fs`` is the filesystem seam the fault harness
        substitutes.
        """
        self._directory = Path(directory)
        self._retry = retry if retry is not None else RetryPolicy()
        self._fs = fs if fs is not None else LocalFilesystem()
        self._corruptions = 0
        self._errors = 0
        self._fs.mkdir(self._directory)
        self._sweep_stale_temp_files()

    @property
    def directory(self) -> Path:
        """The blob directory."""
        return self._directory

    def path_for(self, digest: str) -> Path:
        """Blob path of ``digest``."""
        return self._directory / f"{digest}.json"

    def _sweep_stale_temp_files(self) -> None:
        """Remove ``*.json.tmp`` leftovers from a crash between write and rename."""
        try:
            for stale in self._fs.glob(self._directory, "*.json.tmp"):
                self._fs.unlink(stale, missing_ok=True)
        except OSError:
            # The sweep is best-effort hygiene; a listing/unlink failure here
            # must not stop the tier from coming up.
            self._errors += 1

    def load(self, digest: str) -> dict | None:
        """Return the stored payload, or ``None`` on a miss.

        Returns
        -------
        The payload dictionary, or ``None`` when the blob is missing, was
        discarded as corrupt, or could not be read at all (persistent
        ``OSError`` after retries).  The caller distinguishes the cases via
        :meth:`pop_corruptions`/:meth:`pop_errors` — :class:`ResultCache`
        tracks both counters and feeds its disk circuit breaker from them.
        """
        path = self.path_for(digest)
        try:
            text = self._retry.call(functools.partial(self._fs.read_text, path))
        except FileNotFoundError:
            return None
        except OSError:
            # Permission denied, I/O error, ...: a quarantined miss, never an
            # exception into ResultCache.get.  The blob stays put (we may not
            # even be able to unlink it); the error counter reports it.
            self._errors += 1
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
        if not isinstance(payload, dict):
            # Truncated or otherwise mangled blob: drop it so the slot heals
            # on the next store, and let the caller recompute.
            try:
                self._fs.unlink(path, missing_ok=True)
            except OSError:
                self._errors += 1
            self._corruptions += 1
            return None
        return payload

    def pop_corruptions(self) -> int:
        """Return and reset the number of blobs discarded since the last call."""
        count = self._corruptions
        self._corruptions = 0
        return count

    def pop_errors(self) -> int:
        """Return and reset the number of failed disk operations since the last call."""
        count = self._errors
        self._errors = 0
        return count

    def store(self, digest: str, payload: dict) -> None:
        """Atomically persist ``payload`` as the blob for ``digest``.

        Transient failures are retried per the tier's
        :class:`~repro.cache.resilience.RetryPolicy`; a persistent failure
        raises the final :class:`OSError` (after a best-effort cleanup of the
        temp file) so :class:`ResultCache` can count it and trip its breaker.
        """
        path = self.path_for(digest)
        temporary = path.with_suffix(".json.tmp")
        text = canonical_json(payload) + "\n"

        def _write_and_rename() -> None:
            self._fs.write_text(temporary, text)
            self._fs.replace(temporary, path)

        try:
            self._retry.call(_write_and_rename)
        except OSError:
            try:
                self._fs.unlink(temporary, missing_ok=True)
            except OSError:
                pass
            raise

    def delete(self, digest: str) -> bool:
        """Remove the blob for ``digest``; returns whether one was present.

        A missing blob is a clean no-op.  A persistent ``OSError`` after
        retries is absorbed into the error counter (the caller's breaker
        logic picks it up via :meth:`pop_errors`) and reported as ``False``.
        """
        path = self.path_for(digest)
        try:
            self._retry.call(functools.partial(self._fs.unlink, path))
        except FileNotFoundError:
            return False
        except OSError:
            self._errors += 1
            return False
        return True

    def entry_count(self) -> int:
        """Number of blobs currently on disk (0 when the listing itself fails)."""
        try:
            return len(self._fs.glob(self._directory, "*.json"))
        except OSError:
            self._errors += 1
            return 0

    def total_bytes(self) -> int:
        """Total size in bytes of the blobs currently on disk.

        A blob unlinked between the listing and its ``stat`` (or made
        unreadable) is skipped instead of raising out of ``/stats``.
        """
        try:
            paths = self._fs.glob(self._directory, "*.json")
        except OSError:
            self._errors += 1
            return 0
        total = 0
        for path in paths:
            try:
                total += self._fs.stat(path).st_size
            except OSError:
                continue
        return total


class ResultCache:
    """Memory-LRU-over-disk result cache keyed by content digest.

    Parameters
    ----------
    memory_capacity:
        Maximum number of payloads held in memory; the least recently used
        entry is evicted (counted in :class:`CacheStats.evictions`) when a
        store or a disk promotion exceeds it.  ``None`` disables the bound.
    directory:
        Optional disk-tier directory.  When set, every stored payload is also
        persisted, memory evictions remain servable from disk, and the cache
        survives process restarts.
    retry:
        Retry policy wrapped around every disk-tier filesystem operation
        (default: 3 attempts, exponential backoff).
    breaker:
        Disk circuit breaker.  While it is not closed the cache serves
        memory-only (``disk_degraded`` in :class:`CacheStats`); a half-open
        probe re-attaches the disk tier after recovery.  Defaults to a
        3-failure threshold with a 30 s recovery window.
    fs:
        Filesystem seam handed to the disk tier (fault-injection tests
        substitute a scheduled-failure implementation).
    """

    def __init__(
        self,
        memory_capacity: int | None = 256,
        directory: str | Path | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        fs: LocalFilesystem | None = None,
    ) -> None:
        """See the class docstring for the parameter contract."""
        if memory_capacity is not None and memory_capacity < 1:
            raise ValueError("memory_capacity must be at least 1 (or None)")
        self._capacity = memory_capacity
        self._memory: OrderedDict[str, dict] = OrderedDict()
        self._disk = (
            DiskTier(directory, retry=retry, fs=fs) if directory is not None else None
        )
        self._breaker = breaker if breaker is not None else CircuitBreaker()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._memory_hits = 0
        self._disk_hits = 0
        self._evictions = 0
        self._disk_corruptions = 0
        self._disk_errors = 0
        self._invalidations = 0
        self._profile_version = 0
        if self._disk is not None:
            # Errors during the construction-time temp-file sweep count too.
            self._disk_errors += self._disk.pop_errors()

    @property
    def disk(self) -> DiskTier | None:
        """The disk tier, or ``None`` when the cache is memory-only."""
        return self._disk

    @property
    def breaker(self) -> CircuitBreaker:
        """The disk circuit breaker (meaningful only with a disk tier)."""
        return self._breaker

    def _admit(self, digest: str, payload: dict) -> None:
        """Insert into the memory tier, evicting the LRU entry past capacity."""
        self._memory[digest] = payload
        self._memory.move_to_end(digest)
        if self._capacity is not None:
            while len(self._memory) > self._capacity:
                self._memory.popitem(last=False)
                self._evictions += 1

    def _absorb_disk_outcome(self, evidence: bool = True) -> None:
        """Pull the disk tier's corruption/error counters and feed the breaker.

        ``evidence`` marks outcomes that actually exercised the disk (a
        payload was read or written).  A clean file-not-found miss is
        *neutral* — a write-broken disk still answers reads, so letting cold
        misses count as successes would reset the consecutive-failure count
        between failing stores and keep the breaker closed forever.
        """
        assert self._disk is not None
        self._disk_corruptions += self._disk.pop_corruptions()
        errors = self._disk.pop_errors()
        self._disk_errors += errors
        if errors:
            self._breaker.record_failure()
        elif evidence:
            self._breaker.record_success()
        else:
            self._breaker.record_neutral()

    def get(self, digest: str) -> dict | None:
        """Return the cached payload for ``digest``, or ``None`` on a miss.

        While the disk breaker is open the disk tier is skipped entirely
        (memory-only service); a half-open probe read decides whether it
        closes again.
        """
        with self._lock:
            if digest in self._memory:
                self._memory.move_to_end(digest)
                self._hits += 1
                self._memory_hits += 1
                return self._memory[digest]
            if self._disk is not None and self._breaker.allow():
                payload = self._disk.load(digest)
                self._absorb_disk_outcome(evidence=payload is not None)
                if payload is not None:
                    self._hits += 1
                    self._disk_hits += 1
                    self._admit(digest, payload)
                    return payload
            self._misses += 1
            return None

    def put(self, digest: str, payload: dict) -> None:
        """Store ``payload`` under ``digest`` in both tiers.

        A disk store that still fails after retries is absorbed — counted in
        ``disk_errors``, reported to the breaker (repeated failures open it
        and degrade the cache to memory-only) — and never raised; the memory
        tier always admits the payload first.
        """
        with self._lock:
            self._admit(digest, payload)
            if self._disk is None or not self._breaker.allow():
                return
            try:
                self._disk.store(digest, payload)
            except OSError:
                # store() raises without counting; +1 is the final failure.
                self._disk_errors += self._disk.pop_errors() + 1
                self._disk_corruptions += self._disk.pop_corruptions()
                self._breaker.record_failure()
            else:
                self._absorb_disk_outcome()

    def invalidate(
        self, digests: Iterable[str], profile_version: int | None = None
    ) -> int:
        """Remove the given entries from both tiers because their inputs changed.

        This is the explicit invalidation hook the streaming engine calls
        after every profile update: stale consensus payloads are *removed*
        (counted in ``invalidations``, distinct from capacity ``evictions``),
        and ``profile_version`` — when given — is recorded so ``/stats``
        dashboards can tell which profile generation the cache is serving.
        Returns the number of entries that were actually present in at least
        one tier.  Disk deletions honour the circuit breaker: while it is
        open only the memory tier is purged (the stale blob is unreachable
        anyway — reads skip the disk while degraded, and the digest's slot is
        overwritten on the next store).
        """
        removed = 0
        with self._lock:
            for digest in set(digests):
                present = self._memory.pop(digest, None) is not None
                if self._disk is not None and self._breaker.allow():
                    deleted = self._disk.delete(digest)
                    self._absorb_disk_outcome(evidence=deleted)
                    present = present or deleted
                if present:
                    removed += 1
                    self._invalidations += 1
            if profile_version is not None:
                self._profile_version = profile_version
        return removed

    def stats(self) -> CacheStats:
        """Return an immutable snapshot of the counters and current sizes."""
        with self._lock:
            breaker_state = self._breaker.state if self._disk is not None else CLOSED
            disk_ok = self._disk is not None and breaker_state == CLOSED
            stats = CacheStats(
                hits=self._hits,
                misses=self._misses,
                memory_hits=self._memory_hits,
                disk_hits=self._disk_hits,
                evictions=self._evictions,
                disk_corruptions=self._disk_corruptions,
                memory_entries=len(self._memory),
                disk_entries=self._disk.entry_count() if disk_ok else 0,
                disk_bytes=self._disk.total_bytes() if disk_ok else 0,
                disk_errors=self._disk_errors,
                disk_degraded=self._disk is not None and breaker_state != CLOSED,
                breaker_state=breaker_state,
                invalidations=self._invalidations,
                profile_version=self._profile_version,
            )
            if self._disk is not None:
                self._disk_errors += self._disk.pop_errors()
            return stats
