"""Two-tier result store: a policy-managed memory tier over an optional disk tier.

The memory tier is capacity-bounded with a pluggable replacement policy
(:mod:`repro.cache.eviction`: ``lru`` — the default, bit-identical to the
pre-refactor ``OrderedDict`` implementation — ``cost-aware``, or ``clock``);
the disk tier persists every stored payload as one JSON blob per digest,
written atomically (temp file + :func:`os.replace`) so a crash mid-write
never leaves a truncated blob under the final name.  Reads fall through
memory → disk; a disk hit is promoted back into memory.

Each blob is an *envelope* ``{"meta": {...}, "payload": {...}}``: the payload
is exactly the canonical-JSON consensus result (still bit-identical to cold
computation), and the metadata carries the entry's observed
``compute_seconds``, its lifetime hit ``frequency``, and its ``stored_at``
stamp — so the cost-aware policy's inputs and the TTL clock survive disk
promotions and process restarts.  Pre-envelope blobs (a bare payload object)
still load, with default metadata.

Opt-in TTL expiry (``ResultCache(ttl=...)``) is lazy and covers both tiers:
a lookup whose entry has aged past the TTL removes it everywhere (counted in
``expirations``) and reports a miss, so the caller recomputes.  All
timestamps are read through an injectable ``clock`` — the same seam the
circuit breaker uses — so the TTL tests never touch wall time.  The default
clock is :func:`time.monotonic`; it restarts at boot, so a blob stamped by a
previous process is treated as freshly stored (it lives at most one more
TTL).  Inject ``clock=time.time`` for wall-clock TTLs across restarts.

Failure containment (degrade, don't die):

- A corrupted disk blob (truncated file, invalid JSON, non-object payload) is
  treated as a miss — the blob is deleted, ``disk_corruptions`` is bumped,
  and the caller recomputes.
- Transient :class:`OSError`\\ s around the disk tier (``ENOSPC``, permission
  flaps, ...) are retried with backoff (:class:`~repro.cache.resilience.RetryPolicy`);
  a load that still fails degrades to a quarantined miss (``disk_errors``),
  never an exception out of :meth:`ResultCache.get`.
- Repeated store/load failures open a
  :class:`~repro.cache.resilience.CircuitBreaker`: the cache degrades to
  memory-only service (``disk_degraded`` in :class:`CacheStats`) instead of
  raising out of :meth:`ResultCache.put`, and a half-open probe re-attaches
  the disk tier once it recovers.
- Startup sweeps stale ``*.json.tmp`` files left by a crash between the temp
  write and the atomic rename.

All filesystem access goes through an injectable :class:`LocalFilesystem`
seam so the fault-injection harness (``tests/cache/faults.py``) can fail,
tear, or delay any operation on a schedule.  All cache operations are guarded
by one lock so the HTTP front-end can compute cache misses on executor
threads; counters are reported as an immutable :class:`CacheStats` snapshot.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from collections.abc import Callable, Iterable
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.cache.eviction import EvictionPolicy, create_policy
from repro.cache.resilience import CLOSED, CircuitBreaker, RetryPolicy
from repro.io.serialization import canonical_json

__all__ = ["CacheStats", "DiskTier", "LocalFilesystem", "ResultCache"]


class LocalFilesystem:
    """Direct filesystem operations behind the :class:`DiskTier` seam.

    Every disk-tier touch routes through one of these methods so the
    fault-injection harness can subclass this and fail operations on a
    schedule (ENOSPC, EACCES, torn writes) without monkeypatching.
    """

    def read_text(self, path: Path) -> str:
        """Return the text contents of ``path``."""
        return Path(path).read_text()

    def write_text(self, path: Path, text: str) -> None:
        """Write ``text`` to ``path``."""
        Path(path).write_text(text)

    def replace(self, source: Path, destination: Path) -> None:
        """Atomically rename ``source`` over ``destination``."""
        os.replace(source, destination)

    def unlink(self, path: Path, missing_ok: bool = False) -> None:
        """Remove ``path``."""
        Path(path).unlink(missing_ok=missing_ok)

    def glob(self, directory: Path, pattern: str) -> list[Path]:
        """List the paths under ``directory`` matching ``pattern``."""
        return list(Path(directory).glob(pattern))

    def stat(self, path: Path) -> os.stat_result:
        """Stat ``path``."""
        return Path(path).stat()

    def mkdir(self, directory: Path) -> None:
        """Create ``directory`` (and parents) if missing."""
        Path(directory).mkdir(parents=True, exist_ok=True)


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of the cache counters.

    ``hits`` always equals ``memory_hits + disk_hits``; ``disk_corruptions``
    counts blobs that were discarded as unreadable (each also counted as a
    miss).  ``disk_errors`` counts disk operations that still failed after
    retries (reads degrade to quarantined misses, writes to memory-only
    stores); ``disk_degraded`` is ``True`` while the disk circuit breaker is
    not closed — the cache is serving memory-only — and ``breaker_state``
    reports the breaker verbatim (``closed``/``open``/``half-open``).
    ``memory_entries``/``disk_entries``/``disk_bytes`` are the current sizes,
    not lifetime counters.  ``invalidations`` counts entries removed because
    their profile changed (explicit :meth:`ResultCache.invalidate` calls, as
    the streaming engine issues after every update) — distinct from
    ``evictions``, which are capacity-driven; ``profile_version`` echoes the
    version recorded by the most recent invalidation (0 before any).

    The replacement-policy view: ``policy`` names the memory tier's eviction
    policy, ``expirations`` counts entries dropped because they aged past the
    TTL (each such lookup is also a miss), ``recompute_seconds_saved`` is the
    lifetime sum of the served entries' observed compute costs (every memory
    or disk hit adds the entry's ``compute_seconds`` — the currency the
    cost-aware policy maximises), and ``memory_cost_seconds`` is the summed
    compute cost of the entries currently resident in memory.
    """

    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    evictions: int = 0
    disk_corruptions: int = 0
    memory_entries: int = 0
    disk_entries: int = 0
    disk_bytes: int = 0
    disk_errors: int = 0
    disk_degraded: bool = False
    breaker_state: str = CLOSED
    invalidations: int = 0
    profile_version: int = 0
    policy: str = "lru"
    expirations: int = 0
    recompute_seconds_saved: float = 0.0
    memory_cost_seconds: float = 0.0

    @property
    def requests(self) -> int:
        """Total lookups observed (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when no lookups yet)."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def to_dict(self) -> dict[str, object]:
        """JSON-safe view including the derived ``requests``/``hit_rate``."""
        payload: dict[str, object] = asdict(self)
        payload["requests"] = self.requests
        payload["hit_rate"] = self.hit_rate
        return payload


@dataclass
class _MemoryEntry:
    """One resident payload plus the replacement metadata the policies consume.

    ``stored_at`` is the injectable-clock stamp of the original ``put`` (kept
    across disk promotions, so TTL measures age since compute, not since
    promotion); ``compute_seconds`` is the observed cost of computing the
    payload (0.0 when the caller did not report one); ``frequency`` is the
    entry's lifetime hit count.
    """

    payload: dict
    stored_at: float
    compute_seconds: float
    frequency: int


#: Envelope keys of the on-disk blob format (see the module docstring).
_PAYLOAD_KEY = "payload"
_META_KEY = "meta"


def _wrap_entry(entry: _MemoryEntry) -> dict:
    """The disk-blob envelope of ``entry``: payload plus replacement metadata."""
    return {
        _META_KEY: {
            "compute_seconds": entry.compute_seconds,
            "frequency": entry.frequency,
            "stored_at": entry.stored_at,
        },
        _PAYLOAD_KEY: entry.payload,
    }


def _unwrap_blob(blob: dict, now: float) -> _MemoryEntry:
    """Rebuild a memory entry from a disk blob (envelope or legacy bare payload).

    A ``stored_at`` in the future — the monotonic clock restarted, or the
    blob was written by another process — is clamped to ``now`` so the entry
    counts as freshly stored instead of surviving a TTL forever.
    """
    payload = blob.get(_PAYLOAD_KEY)
    meta = blob.get(_META_KEY)
    if not isinstance(payload, dict) or not isinstance(meta, dict):
        # Legacy pre-envelope blob: the payload itself, default metadata.
        return _MemoryEntry(blob, stored_at=now, compute_seconds=0.0, frequency=0)
    try:
        stored_at = float(meta.get("stored_at", now))
        compute_seconds = float(meta.get("compute_seconds", 0.0))
        frequency = int(meta.get("frequency", 0))
    except (TypeError, ValueError):
        stored_at, compute_seconds, frequency = now, 0.0, 0
    return _MemoryEntry(
        payload,
        stored_at=min(stored_at, now),
        compute_seconds=max(0.0, compute_seconds),
        frequency=max(0, frequency),
    )


class DiskTier:
    """One-JSON-blob-per-digest persistent tier under ``directory``.

    Blobs are canonical JSON objects named ``<digest>.json``.  Loading a blob
    that is missing returns ``None``; loading one that is unreadable —
    corrupt content *or* a persistent ``OSError`` such as permission denied —
    degrades to ``None`` while reporting the corruption/error to the caller
    via :meth:`pop_corruptions`/:meth:`pop_errors`.  Transient ``OSError``\\ s
    are retried per ``retry``; construction sweeps stale ``*.json.tmp`` files
    left by a crash mid-store.
    """

    def __init__(
        self,
        directory: str | Path,
        retry: RetryPolicy | None = None,
        fs: LocalFilesystem | None = None,
    ) -> None:
        """Create (if needed) and bind the blob directory.

        ``retry`` wraps every filesystem operation (default: 3 attempts with
        exponential backoff); ``fs`` is the filesystem seam the fault harness
        substitutes.
        """
        self._directory = Path(directory)
        self._retry = retry if retry is not None else RetryPolicy()
        self._fs = fs if fs is not None else LocalFilesystem()
        self._corruptions = 0
        self._errors = 0
        self._fs.mkdir(self._directory)
        self._sweep_stale_temp_files()

    @property
    def directory(self) -> Path:
        """The blob directory."""
        return self._directory

    def path_for(self, digest: str) -> Path:
        """Blob path of ``digest``."""
        return self._directory / f"{digest}.json"

    def _sweep_stale_temp_files(self) -> None:
        """Remove ``*.json.tmp`` leftovers from a crash between write and rename."""
        try:
            for stale in self._fs.glob(self._directory, "*.json.tmp"):
                self._fs.unlink(stale, missing_ok=True)
        except OSError:
            # The sweep is best-effort hygiene; a listing/unlink failure here
            # must not stop the tier from coming up.
            self._errors += 1

    def load(self, digest: str) -> dict | None:
        """Return the stored payload, or ``None`` on a miss.

        Returns
        -------
        The payload dictionary, or ``None`` when the blob is missing, was
        discarded as corrupt, or could not be read at all (persistent
        ``OSError`` after retries).  The caller distinguishes the cases via
        :meth:`pop_corruptions`/:meth:`pop_errors` — :class:`ResultCache`
        tracks both counters and feeds its disk circuit breaker from them.
        """
        path = self.path_for(digest)
        try:
            text = self._retry.call(functools.partial(self._fs.read_text, path))
        except FileNotFoundError:
            return None
        except OSError:
            # Permission denied, I/O error, ...: a quarantined miss, never an
            # exception into ResultCache.get.  The blob stays put (we may not
            # even be able to unlink it); the error counter reports it.
            self._errors += 1
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
        if not isinstance(payload, dict):
            # Truncated or otherwise mangled blob: drop it so the slot heals
            # on the next store, and let the caller recompute.
            try:
                self._fs.unlink(path, missing_ok=True)
            except OSError:
                self._errors += 1
            self._corruptions += 1
            return None
        return payload

    def pop_corruptions(self) -> int:
        """Return and reset the number of blobs discarded since the last call."""
        count = self._corruptions
        self._corruptions = 0
        return count

    def pop_errors(self) -> int:
        """Return and reset the number of failed disk operations since the last call."""
        count = self._errors
        self._errors = 0
        return count

    def store(self, digest: str, payload: dict) -> None:
        """Atomically persist ``payload`` as the blob for ``digest``.

        Transient failures are retried per the tier's
        :class:`~repro.cache.resilience.RetryPolicy`; a persistent failure
        raises the final :class:`OSError` (after a best-effort cleanup of the
        temp file) so :class:`ResultCache` can count it and trip its breaker.
        """
        path = self.path_for(digest)
        temporary = path.with_suffix(".json.tmp")
        text = canonical_json(payload) + "\n"

        def _write_and_rename() -> None:
            self._fs.write_text(temporary, text)
            self._fs.replace(temporary, path)

        try:
            self._retry.call(_write_and_rename)
        except OSError:
            try:
                self._fs.unlink(temporary, missing_ok=True)
            except OSError:
                pass
            raise

    def delete(self, digest: str) -> bool:
        """Remove the blob for ``digest``; returns whether one was present.

        A missing blob is a clean no-op.  A persistent ``OSError`` after
        retries is absorbed into the error counter (the caller's breaker
        logic picks it up via :meth:`pop_errors`) and reported as ``False``.
        """
        path = self.path_for(digest)
        try:
            self._retry.call(functools.partial(self._fs.unlink, path))
        except FileNotFoundError:
            return False
        except OSError:
            self._errors += 1
            return False
        return True

    def entry_count(self) -> int:
        """Number of blobs currently on disk (0 when the listing itself fails)."""
        try:
            return len(self._fs.glob(self._directory, "*.json"))
        except OSError:
            self._errors += 1
            return 0

    def total_bytes(self) -> int:
        """Total size in bytes of the blobs currently on disk.

        A blob unlinked between the listing and its ``stat`` (or made
        unreadable) is skipped instead of raising out of ``/stats``.
        """
        try:
            paths = self._fs.glob(self._directory, "*.json")
        except OSError:
            self._errors += 1
            return 0
        total = 0
        for path in paths:
            try:
                total += self._fs.stat(path).st_size
            except OSError:
                continue
        return total


class ResultCache:
    """Policy-managed memory tier over an optional disk tier, keyed by digest.

    Parameters
    ----------
    memory_capacity:
        Maximum number of payloads held in memory; the eviction ``policy``
        picks the victim (counted in :class:`CacheStats.evictions`) when a
        store or a disk promotion exceeds it.  ``None`` disables the bound.
    directory:
        Optional disk-tier directory.  When set, every stored payload is also
        persisted, memory evictions remain servable from disk, and the cache
        survives process restarts.
    retry:
        Retry policy wrapped around every disk-tier filesystem operation
        (default: 3 attempts, exponential backoff).
    breaker:
        Disk circuit breaker.  While it is not closed the cache serves
        memory-only (``disk_degraded`` in :class:`CacheStats`); a half-open
        probe re-attaches the disk tier after recovery.  Defaults to a
        3-failure threshold with a 30 s recovery window.
    fs:
        Filesystem seam handed to the disk tier (fault-injection tests
        substitute a scheduled-failure implementation).
    policy:
        Memory-tier eviction policy: a registered name (``"lru"`` — the
        default and the pre-refactor reference behaviour — ``"cost-aware"``,
        ``"clock"``) or an :class:`~repro.cache.eviction.EvictionPolicy`
        instance.
    ttl:
        Optional time-to-live in seconds.  A lookup whose entry has aged
        ``ttl`` or more since its original ``put`` removes it from both tiers
        (counted in ``expirations``) and reports a miss.  ``None`` (default)
        disables expiry.
    clock:
        Injectable time source behind ``ttl`` stamps and checks (default
        :func:`time.monotonic`; tests substitute a manual clock).
    """

    def __init__(
        self,
        memory_capacity: int | None = 256,
        directory: str | Path | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        fs: LocalFilesystem | None = None,
        policy: str | EvictionPolicy = "lru",
        ttl: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """See the class docstring for the parameter contract."""
        if memory_capacity is not None and memory_capacity < 1:
            raise ValueError("memory_capacity must be at least 1 (or None)")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive seconds (or None)")
        self._capacity = memory_capacity
        self._memory: dict[str, _MemoryEntry] = {}
        self._policy = create_policy(policy)
        self._ttl = ttl
        self._clock = clock
        self._disk = (
            DiskTier(directory, retry=retry, fs=fs) if directory is not None else None
        )
        self._breaker = breaker if breaker is not None else CircuitBreaker()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._memory_hits = 0
        self._disk_hits = 0
        self._evictions = 0
        self._expirations = 0
        self._saved_seconds = 0.0
        self._disk_corruptions = 0
        self._disk_errors = 0
        self._invalidations = 0
        self._profile_version = 0
        if self._disk is not None:
            # Errors during the construction-time temp-file sweep count — and
            # they are disk-fault evidence: feed the breaker so a cache built
            # on an already-faulty disk does not start closed regardless.
            errors = self._disk.pop_errors()
            self._disk_errors += errors
            if errors:
                self._breaker.record_failure()

    @property
    def disk(self) -> DiskTier | None:
        """The disk tier, or ``None`` when the cache is memory-only."""
        return self._disk

    @property
    def breaker(self) -> CircuitBreaker:
        """The disk circuit breaker (meaningful only with a disk tier)."""
        return self._breaker

    @property
    def policy(self) -> EvictionPolicy:
        """The memory tier's eviction policy."""
        return self._policy

    @property
    def ttl(self) -> float | None:
        """The configured time-to-live in seconds, or ``None``."""
        return self._ttl

    def _admit(self, digest: str, entry: _MemoryEntry) -> None:
        """Insert into the memory tier, evicting policy victims past capacity."""
        self._memory[digest] = entry
        self._policy.on_admit(digest, entry.compute_seconds, entry.frequency)
        if self._capacity is not None:
            while len(self._memory) > self._capacity:
                victim = self._policy.victim()
                self._memory.pop(victim, None)
                self._evictions += 1

    def _expired(self, entry: _MemoryEntry, now: float) -> bool:
        """Whether ``entry`` has aged past the TTL (always fresh without one)."""
        return self._ttl is not None and now - entry.stored_at >= self._ttl

    def _absorb_disk_outcome(self, evidence: bool = True) -> None:
        """Pull the disk tier's corruption/error counters and feed the breaker.

        ``evidence`` marks outcomes that actually exercised the disk (a
        payload was read or written).  A clean file-not-found miss is
        *neutral* — a write-broken disk still answers reads, so letting cold
        misses count as successes would reset the consecutive-failure count
        between failing stores and keep the breaker closed forever.
        """
        assert self._disk is not None
        self._disk_corruptions += self._disk.pop_corruptions()
        errors = self._disk.pop_errors()
        self._disk_errors += errors
        if errors:
            self._breaker.record_failure()
        elif evidence:
            self._breaker.record_success()
        else:
            self._breaker.record_neutral()

    def _drop_expired(self, digest: str, from_memory: bool) -> None:
        """Remove an aged-past-TTL entry from both tiers and count it once.

        The memory entry (when ``from_memory``) and the disk blob are stamped
        by the same original ``put``, so one expiry event covers both tiers —
        deleting the blob too keeps a later lookup from resurrecting the
        stale payload via promotion.
        """
        if from_memory:
            self._memory.pop(digest, None)
            self._policy.remove(digest)
        if self._disk is not None and self._breaker.allow():
            deleted = self._disk.delete(digest)
            self._absorb_disk_outcome(evidence=deleted)
        self._expirations += 1

    def get(self, digest: str) -> dict | None:
        """Return the cached payload for ``digest``, or ``None`` on a miss.

        An entry that has aged past the TTL — in either tier — is removed and
        reported as a miss (counted in ``expirations``), so the caller
        recomputes.  While the disk breaker is open the disk tier is skipped
        entirely (memory-only service); a half-open probe read decides
        whether it closes again.
        """
        with self._lock:
            now = self._clock()
            entry = self._memory.get(digest)
            if entry is not None:
                if self._expired(entry, now):
                    self._drop_expired(digest, from_memory=True)
                else:
                    entry.frequency += 1
                    self._policy.on_hit(digest, entry.compute_seconds, entry.frequency)
                    self._hits += 1
                    self._memory_hits += 1
                    self._saved_seconds += entry.compute_seconds
                    return entry.payload
            elif self._disk is not None and self._breaker.allow():
                blob = self._disk.load(digest)
                self._absorb_disk_outcome(evidence=blob is not None)
                if blob is not None:
                    entry = _unwrap_blob(blob, now)
                    if self._expired(entry, now):
                        self._drop_expired(digest, from_memory=False)
                    else:
                        self._hits += 1
                        self._disk_hits += 1
                        entry.frequency += 1
                        self._saved_seconds += entry.compute_seconds
                        self._admit(digest, entry)
                        return entry.payload
            self._misses += 1
            return None

    def put(
        self, digest: str, payload: dict, compute_seconds: float | None = None
    ) -> None:
        """Store ``payload`` under ``digest`` in both tiers.

        ``compute_seconds`` is the observed cost of producing the payload —
        the cost-aware policy's replacement signal and the currency of
        ``recompute_seconds_saved``; omit it and the entry is priced as free.
        A disk store that still fails after retries is absorbed — counted in
        ``disk_errors``, reported to the breaker (repeated failures open it
        and degrade the cache to memory-only) — and never raised; the memory
        tier always admits the payload first.
        """
        with self._lock:
            entry = _MemoryEntry(
                payload,
                stored_at=self._clock(),
                compute_seconds=max(0.0, float(compute_seconds or 0.0)),
                frequency=0,
            )
            self._admit(digest, entry)
            if self._disk is None or not self._breaker.allow():
                return
            try:
                self._disk.store(digest, _wrap_entry(entry))
            except OSError:
                # store() raises without counting; +1 is the final failure.
                self._disk_errors += self._disk.pop_errors() + 1
                self._disk_corruptions += self._disk.pop_corruptions()
                self._breaker.record_failure()
            else:
                self._absorb_disk_outcome()

    def invalidate(
        self, digests: Iterable[str], profile_version: int | None = None
    ) -> int:
        """Remove the given entries from both tiers because their inputs changed.

        This is the explicit invalidation hook the streaming engine calls
        after every profile update: stale consensus payloads are *removed*
        (counted in ``invalidations``, distinct from capacity ``evictions``),
        and ``profile_version`` — when given — is recorded so ``/stats``
        dashboards can tell which profile generation the cache is serving.
        Returns the number of entries that were actually present in at least
        one tier.  Disk deletions honour the circuit breaker: while it is
        open only the memory tier is purged (the stale blob is unreachable
        anyway — reads skip the disk while degraded, and the digest's slot is
        overwritten on the next store).
        """
        removed = 0
        with self._lock:
            for digest in set(digests):
                present = self._memory.pop(digest, None) is not None
                if present:
                    self._policy.remove(digest)
                if self._disk is not None and self._breaker.allow():
                    deleted = self._disk.delete(digest)
                    self._absorb_disk_outcome(evidence=deleted)
                    present = present or deleted
                if present:
                    removed += 1
                    self._invalidations += 1
            if profile_version is not None:
                self._profile_version = profile_version
        return removed

    def stats(self) -> CacheStats:
        """Return an immutable snapshot of the counters and current sizes.

        Disk-size listings run first and their failures are absorbed — into
        ``disk_errors`` *and* the circuit breaker — before the snapshot is
        built, so the returned counters include the errors this very call
        observed and a dead disk hammered only via ``/stats`` still trips
        degradation.  (The breaker state is re-read after absorption for the
        same reason.)  Listings are skipped while the breaker is not closed;
        ``state`` is inspected directly rather than ``allow()`` so a stats
        poll never consumes the half-open probe a real read should get.
        """
        with self._lock:
            disk_entries = 0
            disk_bytes = 0
            if self._disk is not None and self._breaker.state == CLOSED:
                disk_entries = self._disk.entry_count()
                disk_bytes = self._disk.total_bytes()
                # Absorb listing errors (and feed the breaker) BEFORE the
                # snapshot: pre-fix, the pop happened after construction, so
                # the returned disk_errors under-counted and the breaker
                # never saw listing failures.  A clean listing is neutral —
                # it reads directory metadata, not payload bytes.
                self._absorb_disk_outcome(evidence=False)
                if self._breaker.state != CLOSED:
                    disk_entries = 0
                    disk_bytes = 0
            breaker_state = self._breaker.state if self._disk is not None else CLOSED
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                memory_hits=self._memory_hits,
                disk_hits=self._disk_hits,
                evictions=self._evictions,
                disk_corruptions=self._disk_corruptions,
                memory_entries=len(self._memory),
                disk_entries=disk_entries,
                disk_bytes=disk_bytes,
                disk_errors=self._disk_errors,
                disk_degraded=self._disk is not None and breaker_state != CLOSED,
                breaker_state=breaker_state,
                invalidations=self._invalidations,
                profile_version=self._profile_version,
                policy=self._policy.name,
                expirations=self._expirations,
                recompute_seconds_saved=self._saved_seconds,
                memory_cost_seconds=sum(
                    entry.compute_seconds for entry in self._memory.values()
                ),
            )
