"""Asyncio HTTP front-end for the consensus cache (``mani-rank serve``).

A deliberately small HTTP/1.1 server on :func:`asyncio.start_server` — no
``http.server``, no third-party framework — exposing three JSON endpoints:

``POST /aggregate``
    Body: ``{"rankings": ..., "candidates": ..., "method", "strategy",
    "delta"}`` with the inputs either inline (the
    :mod:`repro.io.serialization` dictionaries) or as CSV paths
    (``rankings_csv``/``candidates_csv``, resolved server-side).  Responds
    with the full cached-or-computed consensus payload plus the cache key
    digest and a ``cached`` flag.

``POST /fairness``
    Same body; responds with the fairness projection of the same cache entry
    (per-group FPR row, parity scores, PD loss), so a ``/fairness`` call
    after ``/aggregate`` for the same query is a cache hit.

``GET /stats``
    Cache counters (hits/misses/evictions/sizes), server request counters,
    and the servable method registry.

Cache misses are computed on a worker thread (``run_in_executor``) so slow
aggregations do not stall other connections; the
:class:`~repro.cache.store.ResultCache` lock keeps the tiers consistent.
Responses always carry ``Content-Length`` and ``Connection: close``.
Shutdown is cooperative: SIGINT/SIGTERM (installed by :func:`run_server` when
on the main thread) or an optional ``max_requests`` budget — used by the CI
serve smoke — stop the listener and let :meth:`ConsensusHTTPServer.serve`
return cleanly.
"""

from __future__ import annotations

import asyncio
import functools
import json
import signal
from collections.abc import Callable

from repro.cache.service import ConsensusCacheService
from repro.exceptions import ReproError
from repro.fair.registry import describe_fair_methods
from repro.io.csv_io import read_candidate_table, read_ranking_set
from repro.io.serialization import (
    candidate_table_from_dict,
    ranking_set_from_dict,
    to_jsonable,
)

__all__ = ["ConsensusHTTPServer", "run_server"]

_MAX_BODY_BYTES = 64 * 1024 * 1024


class _BadRequest(Exception):
    """Client error carrying the message served as a 400 response."""


def _parse_inputs(body: dict):
    """Build the (rankings, table) pair from an endpoint request body."""
    if "candidates_csv" in body or "rankings_csv" in body:
        try:
            table = read_candidate_table(body["candidates_csv"])
            rankings = read_ranking_set(body["rankings_csv"], table)
        except KeyError as exc:
            raise _BadRequest(
                "CSV inputs need both 'rankings_csv' and 'candidates_csv'"
            ) from exc
        except OSError as exc:
            raise _BadRequest(f"cannot read CSV input: {exc}") from exc
        return rankings, table
    try:
        table = candidate_table_from_dict(body["candidates"])
        rankings = ranking_set_from_dict(body["rankings"])
    except KeyError as exc:
        raise _BadRequest(
            "request body needs 'rankings' and 'candidates' (inline payloads) "
            "or 'rankings_csv' and 'candidates_csv' (server-side paths)"
        ) from exc
    return rankings, table


class ConsensusHTTPServer:
    """The ``mani-rank serve`` listener bound to one consensus cache service.

    Parameters
    ----------
    service:
        The cache-backed service answering the queries.
    host, port:
        Bind address; port 0 asks the OS for a free port (the bound address
        is available as :attr:`address` after :meth:`start`).
    max_requests:
        Optional request budget; after responding to this many requests the
        server initiates shutdown.  Used by smoke tests for a clean,
        signal-free exit.
    """

    def __init__(
        self,
        service: ConsensusCacheService | None = None,
        host: str = "127.0.0.1",
        port: int = 8340,
        max_requests: int | None = None,
    ) -> None:
        """See the class docstring for the parameter contract."""
        self.service = service if service is not None else ConsensusCacheService()
        self._host = host
        self._port = port
        self._max_requests = max_requests
        self._requests = 0
        self._endpoint_counts: dict[str, int] = {}
        self._server: asyncio.AbstractServer | None = None
        self._stop_event: asyncio.Event | None = None
        self.address: tuple[str, int] | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind the listener and return the (host, port) actually bound."""
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    def request_stop(self) -> None:
        """Ask the serve loop to exit (idempotent, callable from handlers)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve(self) -> None:
        """Run until :meth:`request_stop` (or the request budget) fires."""
        if self._server is None:
            await self.start()
        assert self._server is not None and self._stop_event is not None
        try:
            await self._stop_event.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._respond(reader)
        except Exception as exc:  # noqa: BLE001 - a handler crash must not kill the server
            status, payload = 500, {"error": f"internal error: {exc}"}
        body = json.dumps(to_jsonable(payload)).encode()
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode()
        try:
            writer.write(head + body)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover - client hangup
            pass
        self._requests += 1
        if self._max_requests is not None and self._requests >= self._max_requests:
            self.request_stop()

    async def _respond(self, reader: asyncio.StreamReader) -> tuple[int, dict]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}
        verb, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        content_length = int(headers.get("content-length", "0") or "0")
        if content_length > _MAX_BODY_BYTES:
            return 413, {"error": "request body too large"}
        raw_body = await reader.readexactly(content_length) if content_length else b""

        route = _ROUTES.get(path)
        if route is None:
            return 404, {"error": f"unknown path {path!r}", "paths": sorted(_ROUTES)}
        expected_verb, handler = route
        if verb != expected_verb:
            return 405, {"error": f"{path} expects {expected_verb}, got {verb}"}

        self._endpoint_counts[path] = self._endpoint_counts.get(path, 0) + 1
        try:
            body = json.loads(raw_body) if raw_body else {}
            if not isinstance(body, dict):
                raise _BadRequest("request body must be a JSON object")
            return 200, await handler(self, body)
        except json.JSONDecodeError as exc:
            return 400, {"error": f"request body is not valid JSON: {exc}"}
        except (_BadRequest, ReproError, ValueError) as exc:
            return 400, {"error": str(exc)}

    async def _run_query(self, body: dict) -> dict:
        """Resolve inputs and run the cached aggregation off the event loop."""
        rankings, table = _parse_inputs(body)
        query = functools.partial(
            self.service.aggregate,
            rankings,
            table,
            method=str(body.get("method", "fair-borda")),
            strategy=body.get("strategy"),
            delta=body.get("delta", 0.1),
        )
        return await asyncio.get_running_loop().run_in_executor(None, query)

    async def _handle_aggregate(self, body: dict) -> dict:
        return await self._run_query(body)

    async def _handle_fairness(self, body: dict) -> dict:
        response = await self._run_query(body)
        result = response["result"]
        return {
            "key": response["key"],
            "cached": response["cached"],
            "method": result["method"],
            "method_label": result["method_label"],
            "pd_loss": result["pd_loss"],
            "parity": result["parity"],
            "fairness": result["fairness"],
        }

    async def _handle_stats(self, body: dict) -> dict:
        return {
            "cache": self.service.stats(),
            "server": {
                "requests": self._requests,
                "endpoints": dict(sorted(self._endpoint_counts.items())),
            },
            "methods": describe_fair_methods(),
        }


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}

_ROUTES: dict[str, tuple[str, Callable]] = {
    "/aggregate": ("POST", ConsensusHTTPServer._handle_aggregate),
    "/fairness": ("POST", ConsensusHTTPServer._handle_fairness),
    "/stats": ("GET", ConsensusHTTPServer._handle_stats),
}


def run_server(
    service: ConsensusCacheService | None = None,
    host: str = "127.0.0.1",
    port: int = 8340,
    max_requests: int | None = None,
    on_ready: Callable[[tuple[str, int]], None] | None = None,
) -> int:
    """Blocking entry point behind ``mani-rank serve``.

    Binds, reports the bound address through ``on_ready`` (the CLI prints it;
    tests use it to launch client threads), installs SIGINT/SIGTERM handlers
    when running on the main thread, and serves until stopped.  Returns the
    process exit code (0 on clean shutdown).
    """

    async def _main() -> None:
        server = ConsensusHTTPServer(
            service, host=host, port=port, max_requests=max_requests
        )
        address = await server.start()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGINT, server.request_stop)
            loop.add_signal_handler(signal.SIGTERM, server.request_stop)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-main thread
            pass
        if on_ready is not None:
            on_ready(address)
        await server.serve()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race fallback
        pass
    return 0
