"""Asyncio HTTP front-end for the consensus cache (``mani-rank serve``).

A deliberately small HTTP/1.1 server on :func:`asyncio.start_server` — no
``http.server``, no third-party framework — exposing JSON endpoints:

``POST /aggregate``
    Body: ``{"rankings": ..., "candidates": ..., "method", "strategy",
    "delta"}`` with the inputs either inline (the
    :mod:`repro.io.serialization` dictionaries) or as CSV paths
    (``rankings_csv``/``candidates_csv``, resolved server-side).  Responds
    with the full cached-or-computed consensus payload plus the cache key
    digest and a ``cached`` flag.

``POST /fairness``
    Same body; responds with the fairness projection of the same cache entry
    (per-group FPR row, parity scores, PD loss), so a ``/fairness`` call
    after ``/aggregate`` for the same query is a cache hit.

``POST /update``
    Streaming profile mutation: ``{"add": [...], "remove": [...]}`` where
    each entry is ``{"ranking": [names or ids best-to-worst], "weight",
    "label"}`` (or a bare ranking list).  The first call must carry the
    candidate table (inline ``candidates`` or ``candidates_csv``) plus the
    optional ``method``/``strategy``/``delta`` configuration; it initialises
    the server's :class:`~repro.streaming.service.StreamingConsensusService`
    sharing the batch cache.  Every update patches the profile matrices
    incrementally and invalidates the cache entries served for the old
    profile, keyed on the new profile version.

``GET /consensus``
    The streaming profile's consensus — served under the exact batch cache
    key, so it is bit-identical to ``POST /aggregate`` on the materialized
    profile and a cache hit when unchanged.

``GET /stats``
    Cache counters (hits/misses/evictions/sizes, disk-breaker state,
    invalidations and the streaming profile version), server
    request/shed/timeout counters, latency percentiles, the streaming
    profile state, and the servable method registry.

``GET /healthz`` / ``GET /readyz``
    Liveness (200 while the process serves, even disk-degraded) and
    readiness (503 once draining has begun, so load balancers stop routing
    new traffic before in-flight work finishes).

Resilience contract (see ``docs/serving.md`` for the full status-code table):
every read phase (request line, headers, body) runs under a deadline — slow
clients get 408 instead of a leaked connection — and pathological header
blocks get 431.  The compute endpoints pass through an
:class:`~repro.cache.resilience.AdmissionController`; beyond the in-flight
budget plus queue depth, requests are shed as 503 + ``Retry-After``.
Shutdown (SIGINT/SIGTERM, or the ``max_requests`` budget used by the CI
smoke) is a *graceful drain*: readiness flips false, new compute requests are
shed, in-flight connections get up to ``drain_timeout`` seconds to finish,
then the listener closes and :meth:`ConsensusHTTPServer.serve` returns.

Cache misses are computed on a worker thread (``run_in_executor``) so slow
aggregations do not stall other connections; the
:class:`~repro.cache.store.ResultCache` lock keeps the tiers consistent.
Responses always carry ``Content-Length`` and ``Connection: close``.  All
timeouts are taken through an injectable
:class:`~repro.cache.resilience.AsyncClock`, so the adversarial-client tests
never sleep on real time.
"""

from __future__ import annotations

import asyncio
import functools
import json
import math
import signal
from collections.abc import Callable

from repro.cache.resilience import (
    AdmissionController,
    AsyncClock,
    LatencyRecorder,
    ServerLimits,
)
from repro.cache.service import ConsensusCacheService
from repro.exceptions import ReproError
from repro.fair.registry import describe_fair_methods
from repro.io.csv_io import read_candidate_table, read_ranking_set
from repro.io.serialization import (
    candidate_table_from_dict,
    ranking_set_from_dict,
    to_jsonable,
)
from repro.kernels import describe_backends
from repro.streaming.engine import StreamingConsensusEngine
from repro.streaming.replay import StreamEvent, resolve_order
from repro.streaming.service import StreamingConsensusService

__all__ = ["ConsensusHTTPServer", "run_server"]

#: asyncio.TimeoutError is a distinct class on 3.10 and an alias of the
#: builtin from 3.11 on; catching both keeps the matrix green.
_TIMEOUT_ERRORS = (asyncio.TimeoutError, TimeoutError)


class _BadRequest(Exception):
    """Client error carrying the message served as a 400 response."""


class _PhaseTimeout(Exception):
    """A read phase exhausted its deadline (served as 408)."""

    def __init__(self, phase: str) -> None:
        """Record which read phase (request line / headers / body) timed out."""
        super().__init__(phase)
        self.phase = phase


def _parse_inputs(body: dict):
    """Build the (rankings, table) pair from an endpoint request body."""
    if "candidates_csv" in body or "rankings_csv" in body:
        try:
            table = read_candidate_table(body["candidates_csv"])
            rankings = read_ranking_set(body["rankings_csv"], table)
        except KeyError as exc:
            raise _BadRequest(
                "CSV inputs need both 'rankings_csv' and 'candidates_csv'"
            ) from exc
        except OSError as exc:
            raise _BadRequest(f"cannot read CSV input: {exc}") from exc
        return rankings, table
    try:
        table = candidate_table_from_dict(body["candidates"])
        rankings = ranking_set_from_dict(body["rankings"])
    except KeyError as exc:
        raise _BadRequest(
            "request body needs 'rankings' and 'candidates' (inline payloads) "
            "or 'rankings_csv' and 'candidates_csv' (server-side paths)"
        ) from exc
    return rankings, table


class ConsensusHTTPServer:
    """The ``mani-rank serve`` listener bound to one consensus cache service.

    Parameters
    ----------
    service:
        The cache-backed service answering the queries.
    host, port:
        Bind address; port 0 asks the OS for a free port (the bound address
        is available as :attr:`address` after :meth:`start`).
    max_requests:
        Optional request budget; after responding to this many requests the
        server initiates a graceful drain.  Used by smoke tests for a clean,
        signal-free exit.
    max_inflight, queue_depth:
        Admission-control budget for the compute endpoints: up to
        ``max_inflight`` concurrent requests, up to ``queue_depth`` more
        waiting; the rest are shed as 503 + ``Retry-After``.
    limits:
        Per-connection read deadlines and header caps
        (:class:`~repro.cache.resilience.ServerLimits`).
    drain_timeout:
        Seconds granted to in-flight connections during shutdown before they
        are cancelled.
    clock:
        Injectable time source for every deadline; tests substitute a
        virtual clock so nothing sleeps.
    """

    def __init__(
        self,
        service: ConsensusCacheService | None = None,
        host: str = "127.0.0.1",
        port: int = 8340,
        max_requests: int | None = None,
        max_inflight: int = 64,
        queue_depth: int = 16,
        limits: ServerLimits | None = None,
        drain_timeout: float = 5.0,
        clock: AsyncClock | None = None,
    ) -> None:
        """See the class docstring for the parameter contract."""
        self.service = service if service is not None else ConsensusCacheService()
        self._host = host
        self._port = port
        self._max_requests = max_requests
        self._limits = limits if limits is not None else ServerLimits()
        self._drain_timeout = drain_timeout
        self._clock = clock if clock is not None else AsyncClock()
        self._admission = AdmissionController(max_inflight, queue_depth)
        self._latency = LatencyRecorder()
        self._requests = 0
        self._endpoint_counts: dict[str, int] = {}
        self._status_counts: dict[int, int] = {}
        self._read_timeouts = 0
        self._drain_cancelled = 0
        self._draining = False
        self._connections: set[asyncio.Task] = set()
        self._streaming: StreamingConsensusService | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stop_event: asyncio.Event | None = None
        self.address: tuple[str, int] | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind the listener and return the (host, port) actually bound."""
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    def request_stop(self) -> None:
        """Ask the serve loop to drain and exit (idempotent, handler-safe)."""
        if self._stop_event is not None:
            self._stop_event.set()

    @property
    def draining(self) -> bool:
        """``True`` once shutdown has begun (readiness is already false)."""
        return self._draining

    @property
    def drain_cancelled(self) -> int:
        """Connections cancelled because they outlived the drain timeout."""
        return self._drain_cancelled

    async def serve(self) -> None:
        """Run until :meth:`request_stop` (or the request budget), then drain.

        Drain order: readiness flips false and new compute requests are shed
        first; in-flight connections then get up to ``drain_timeout`` seconds
        to finish (stragglers are cancelled and counted); only then does the
        listener close and this coroutine return.
        """
        if self._server is None:
            await self.start()
        assert self._server is not None and self._stop_event is not None
        try:
            await self._stop_event.wait()
        finally:
            self._draining = True
            await self._drain_connections()
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _drain_connections(self) -> None:
        """Wait (bounded) for in-flight connection tasks; cancel stragglers."""
        pending = {task for task in self._connections if not task.done()}
        if not pending:
            return
        # shield() keeps a drain timeout from cancelling the connection tasks
        # behind our back — stragglers are cancelled explicitly so they are
        # counted in drain_cancelled.
        finished = asyncio.gather(*pending, return_exceptions=True)
        try:
            await self._clock.wait_for(asyncio.shield(finished), self._drain_timeout)
        except _TIMEOUT_ERRORS:
            for task in pending:
                if not task.done():
                    task.cancel()
                    self._drain_cancelled += 1
            await asyncio.gather(*pending, return_exceptions=True)

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        started = self._clock.monotonic()
        extra_headers: dict[str, str] = {}
        try:
            try:
                status, payload, extra_headers = await self._respond(reader)
            except Exception as exc:  # noqa: BLE001 - a handler crash must not kill the server
                status, payload = 500, {"error": f"internal error: {exc}"}
            body = json.dumps(to_jsonable(payload)).encode()
            header_lines = [
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}",
                "Connection: close",
            ]
            header_lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
            head = ("\r\n".join(header_lines) + "\r\n\r\n").encode()
            try:
                writer.write(head + body)
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover - client hangup
                pass
            self._requests += 1
            self._status_counts[status] = self._status_counts.get(status, 0) + 1
            self._latency.record(self._clock.monotonic() - started)
            if self._max_requests is not None and self._requests >= self._max_requests:
                self.request_stop()
        finally:
            if task is not None:
                self._connections.discard(task)

    async def _read_phase(self, awaitable, phase: str, deadline: float):
        """Await one read under the phase deadline, mapping timeout to 408."""
        remaining = deadline - self._clock.monotonic()
        if remaining <= 0:
            if asyncio.iscoroutine(awaitable):
                awaitable.close()
            raise _PhaseTimeout(phase)
        try:
            return await self._clock.wait_for(awaitable, remaining)
        except _TIMEOUT_ERRORS as exc:
            raise _PhaseTimeout(phase) from exc

    async def _respond(self, reader: asyncio.StreamReader) -> tuple[int, dict, dict]:
        limits = self._limits
        try:
            deadline = self._clock.monotonic() + limits.read_timeout
            raw_line = await self._read_phase(reader.readline(), "request line", deadline)
        except _PhaseTimeout:
            self._read_timeouts += 1
            return 408, {"error": "timed out reading the request line"}, {}
        except ValueError:
            return 431, {"error": "request line too long"}, {}
        request_line = raw_line.decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}, {}
        verb, path = parts[0].upper(), parts[1]

        headers: dict[str, str] = {}
        deadline = self._clock.monotonic() + limits.read_timeout
        while True:
            try:
                line = await self._read_phase(reader.readline(), "headers", deadline)
            except _PhaseTimeout:
                self._read_timeouts += 1
                return 408, {"error": "timed out reading headers"}, {}
            except ValueError:
                return 431, {"error": "header line too long"}, {}
            if line in (b"\r\n", b"\n", b""):
                break
            if len(line) > limits.max_header_bytes:
                return 431, {"error": "header line too long"}, {}
            if len(headers) >= limits.max_header_count:
                return 431, {"error": "too many headers"}, {}
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

        raw_length = headers.get("content-length", "0") or "0"
        try:
            content_length = int(raw_length)
        except ValueError:
            return 400, {"error": f"invalid Content-Length: {raw_length!r}"}, {}
        if content_length < 0:
            return 400, {"error": f"negative Content-Length: {content_length}"}, {}
        if content_length > limits.max_body_bytes:
            return 413, {"error": "request body too large"}, {}
        raw_body = b""
        if content_length:
            deadline = self._clock.monotonic() + limits.read_timeout
            try:
                raw_body = await self._read_phase(
                    reader.readexactly(content_length), "body", deadline
                )
            except _PhaseTimeout:
                self._read_timeouts += 1
                return 408, {"error": "timed out reading the request body"}, {}
            except asyncio.IncompleteReadError as exc:
                return 400, {
                    "error": (
                        f"truncated request body: expected {content_length} bytes, "
                        f"got {len(exc.partial)}"
                    )
                }, {}

        route = _ROUTES.get(path)
        if route is None:
            return 404, {"error": f"unknown path {path!r}", "paths": sorted(_ROUTES)}, {}
        expected_verb, handler, sheddable = route
        if verb != expected_verb:
            return 405, {"error": f"{path} expects {expected_verb}, got {verb}"}, {}

        self._endpoint_counts[path] = self._endpoint_counts.get(path, 0) + 1
        try:
            body = json.loads(raw_body) if raw_body else {}
            if not isinstance(body, dict):
                raise _BadRequest("request body must be a JSON object")
        except json.JSONDecodeError as exc:
            return 400, {"error": f"request body is not valid JSON: {exc}"}, {}
        except _BadRequest as exc:
            return 400, {"error": str(exc)}, {}

        if sheddable:
            return await self._dispatch_guarded(handler, body)
        return await self._dispatch(handler, body)

    async def _dispatch(self, handler: Callable, body: dict) -> tuple[int, dict, dict]:
        """Run one handler, mapping domain errors to 400."""
        try:
            result = handler(self, body)
            if asyncio.iscoroutine(result):
                result = await result
        except (_BadRequest, ReproError, ValueError) as exc:
            return 400, {"error": str(exc)}, {}
        if isinstance(result, tuple):
            status, payload = result
            return status, payload, {}
        return 200, result, {}

    def _retry_after_seconds(self) -> int:
        """Back-off hint for shed responses, proportional to actual pressure.

        The queue must drain ``queued + 1`` requests before a retry can be
        admitted, and each drains in roughly one p90 service time — so the
        hint is ``ceil((queued + 1) x p90)``, floored at 1 s (the pre-fix
        constant) so cold servers without latency samples still tell clients
        to wait a beat rather than hammer.
        """
        p90_seconds = self._latency.snapshot()["p90_ms"] / 1000.0
        backlog = self._admission.queued + 1
        return max(1, math.ceil(backlog * p90_seconds))

    async def _dispatch_guarded(
        self, handler: Callable, body: dict
    ) -> tuple[int, dict, dict]:
        """Admission-controlled dispatch for the compute endpoints."""
        if self._draining:
            return (
                503,
                {"error": "server is draining; retry against another instance"},
                {"Retry-After": str(self._retry_after_seconds())},
            )
        if not await self._admission.acquire():
            return (
                503,
                {"error": "server overloaded: in-flight budget and queue are full"},
                {"Retry-After": str(self._retry_after_seconds())},
            )
        try:
            return await self._dispatch(handler, body)
        finally:
            self._admission.release()

    async def _run_query(self, body: dict) -> dict:
        """Resolve inputs and run the cached aggregation off the event loop."""
        rankings, table = _parse_inputs(body)
        query = functools.partial(
            self.service.aggregate,
            rankings,
            table,
            method=str(body.get("method", "fair-borda")),
            strategy=body.get("strategy"),
            delta=body.get("delta", 0.1),
        )
        return await asyncio.get_running_loop().run_in_executor(None, query)

    async def _handle_aggregate(self, body: dict) -> dict:
        """``POST /aggregate``: full cached-or-computed consensus payload."""
        return await self._run_query(body)

    async def _handle_fairness(self, body: dict) -> dict:
        """``POST /fairness``: fairness projection of the same cache entry."""
        response = await self._run_query(body)
        result = response["result"]
        return {
            "key": response["key"],
            "cached": response["cached"],
            "method": result["method"],
            "method_label": result["method_label"],
            "pd_loss": result["pd_loss"],
            "parity": result["parity"],
            "fairness": result["fairness"],
        }

    def _streaming_service(self, body: dict) -> StreamingConsensusService:
        """Return the streaming service, initialising it on the first /update.

        The first call must carry the candidate table; the engine is bound to
        that universe and configuration for the server's lifetime, and later
        calls must not contradict it.  The streaming service shares the batch
        cache, so streamed and batch results for one profile share entries.
        """
        if self._streaming is None:
            if "candidates_csv" in body:
                try:
                    table = read_candidate_table(body["candidates_csv"])
                except OSError as exc:
                    raise _BadRequest(f"cannot read CSV input: {exc}") from exc
            elif "candidates" in body:
                table = candidate_table_from_dict(body["candidates"])
            else:
                raise _BadRequest(
                    "the first /update must carry the candidate table "
                    "('candidates' inline or 'candidates_csv')"
                )
            engine = StreamingConsensusEngine(
                table,
                method=str(body.get("method", "fair-borda")),
                strategy=body.get("strategy"),
                delta=body.get("delta", 0.1),
            )
            self._streaming = StreamingConsensusService(
                engine, cache=self.service.cache
            )
            return self._streaming
        engine = self._streaming.engine
        if "method" in body and str(body["method"]) != engine.method:
            # The registry canonicalises spellings before comparing.
            from repro.fair.registry import canonical_fair_method_name

            if canonical_fair_method_name(str(body["method"])) != engine.method:
                raise _BadRequest(
                    f"the streaming profile is configured for method "
                    f"{engine.method!r}; restart the server to change it"
                )
        return self._streaming

    @staticmethod
    def _streaming_events(entries: object, table, field: str) -> list[StreamEvent]:
        """Parse one ``add``/``remove`` list from an ``/update`` body."""
        if not isinstance(entries, list):
            raise _BadRequest(f"'{field}' must be a list of rankings")
        events: list[StreamEvent] = []
        for entry in entries:
            if isinstance(entry, list):
                entry = {"ranking": entry}
            if not isinstance(entry, dict) or "ranking" not in entry:
                raise _BadRequest(
                    f"each '{field}' entry must be a ranking list or an object "
                    "with a 'ranking' field"
                )
            ranking = entry["ranking"]
            if not isinstance(ranking, list) or not ranking:
                raise _BadRequest(f"'{field}' rankings must be non-empty lists")
            label = entry.get("label")
            if label is not None and not isinstance(label, str):
                raise _BadRequest(f"'{field}' labels must be strings")
            try:
                weight = float(entry.get("weight", 1.0))
            except (TypeError, ValueError) as exc:
                raise _BadRequest(f"'{field}' weights must be numbers") from exc
            events.append(
                StreamEvent(
                    op="add" if field == "add" else "remove",
                    order=tuple(resolve_order(ranking, table)),
                    weight=weight,
                    label=label,
                )
            )
        return events

    async def _handle_update(self, body: dict) -> dict:
        """``POST /update``: apply one add/remove batch to the streaming profile."""
        streaming = self._streaming_service(body)
        table = streaming.engine.table
        add = self._streaming_events(body.get("add", []), table, "add")
        remove = self._streaming_events(body.get("remove", []), table, "remove")
        operation = functools.partial(streaming.update, add=add, remove=remove)
        return await asyncio.get_running_loop().run_in_executor(None, operation)

    async def _handle_consensus(self, body: dict) -> dict:
        """``GET /consensus``: the streaming profile's cached consensus."""
        if self._streaming is None:
            raise _BadRequest(
                "no streaming profile: POST /update with rankings first"
            )
        operation = self._streaming.aggregate
        return await asyncio.get_running_loop().run_in_executor(None, operation)

    async def _handle_stats(self, body: dict) -> dict:
        """``GET /stats``: cache, admission, latency, and registry counters."""
        return {
            "cache": self.service.stats(),
            "streaming": (
                self._streaming.describe() if self._streaming is not None else None
            ),
            "server": {
                "requests": self._requests,
                "endpoints": dict(sorted(self._endpoint_counts.items())),
                "responses_by_status": {
                    str(status): count
                    for status, count in sorted(self._status_counts.items())
                },
                "admission": self._admission.snapshot(),
                "read_timeouts": self._read_timeouts,
                "drain_cancelled": self._drain_cancelled,
                "draining": self._draining,
                "latency": self._latency.snapshot(),
            },
            "methods": describe_fair_methods(),
            "kernel_backend": describe_backends(),
        }

    def _handle_healthz(self, body: dict) -> dict:
        """``GET /healthz``: liveness — 200 while the process can answer at all."""
        from repro.kernels import active_backend

        return {
            "status": "ok",
            "kernel_backend": active_backend().compile_status(),
            **self.service.health(),
        }

    def _handle_readyz(self, body: dict) -> tuple[int, dict]:
        """``GET /readyz``: readiness — 503 once draining has begun."""
        if self._draining or (self._stop_event is not None and self._stop_event.is_set()):
            return 503, {"ready": False, "reason": "draining"}
        return 200, {"ready": True}


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: path → (verb, handler, sheddable).  The compute endpoints are admission
#: controlled; stats/health/readiness must answer even under load or drain.
_ROUTES: dict[str, tuple[str, Callable, bool]] = {
    "/aggregate": ("POST", ConsensusHTTPServer._handle_aggregate, True),
    "/fairness": ("POST", ConsensusHTTPServer._handle_fairness, True),
    "/update": ("POST", ConsensusHTTPServer._handle_update, True),
    "/consensus": ("GET", ConsensusHTTPServer._handle_consensus, True),
    "/stats": ("GET", ConsensusHTTPServer._handle_stats, False),
    "/healthz": ("GET", ConsensusHTTPServer._handle_healthz, False),
    "/readyz": ("GET", ConsensusHTTPServer._handle_readyz, False),
}


def run_server(
    service: ConsensusCacheService | None = None,
    host: str = "127.0.0.1",
    port: int = 8340,
    max_requests: int | None = None,
    on_ready: Callable[[tuple[str, int]], None] | None = None,
    max_inflight: int = 64,
    queue_depth: int = 16,
    read_timeout: float = 10.0,
    drain_timeout: float = 5.0,
) -> int:
    """Blocking entry point behind ``mani-rank serve``.

    Binds, reports the bound address through ``on_ready`` (the CLI prints it;
    tests use it to launch client threads), installs SIGINT/SIGTERM handlers
    when running on the main thread, and serves until stopped — draining
    in-flight requests (bounded by ``drain_timeout``) before returning.
    Returns the process exit code (0 on clean shutdown).
    """

    async def _main() -> None:
        server = ConsensusHTTPServer(
            service,
            host=host,
            port=port,
            max_requests=max_requests,
            max_inflight=max_inflight,
            queue_depth=queue_depth,
            limits=ServerLimits(read_timeout=read_timeout),
            drain_timeout=drain_timeout,
        )
        address = await server.start()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGINT, server.request_stop)
            loop.add_signal_handler(signal.SIGTERM, server.request_stop)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-main thread
            pass
        if on_ready is not None:
            on_ready(address)
        await server.serve()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race fallback
        pass
    return 0
