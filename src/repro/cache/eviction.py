"""Pluggable eviction policies for the memory tier of :class:`ResultCache`.

The PR 6 cache hard-coded an :class:`~collections.OrderedDict` LRU, which is
blind to recompute cost: under the Zipf replay a capacity eviction happily
throws away a ``fair-borda-insertion`` n=200 payload (hundreds of
milliseconds to recompute) to keep a 10 ms Borda entry.  This module turns
the replacement decision into a policy object so cost-aware and
recency-based policies compete under the same measured replay
(``benchmarks/test_perf_eviction.py``), with the committed baseline deciding
what ships.

Three implementations:

``lru`` (:class:`LRUPolicy`)
    The retained reference — bit-identical to the pre-refactor
    ``OrderedDict`` behaviour (admissions and hits refresh recency, the
    least-recently-used entry is the victim).  Property tests pin the
    refactored cache to a from-scratch simulation of the old code on
    randomized traces (``tests/cache/test_eviction.py``).

``cost-aware`` (:class:`CostAwarePolicy`)
    GreedyDual-Size-Frequency with unit sizes: each entry's priority is
    ``L + compute_seconds x (frequency + 1)`` where ``L`` is the inflation
    clock (the priority of the last victim) and ``frequency`` is the entry's
    lifetime hit count.  Expensive, frequently-replayed payloads outlive
    cheap ones; ageing happens through ``L`` instead of per-entry decay, so
    every operation is O(log n) via a lazy-deletion heap.  The cost and
    frequency ride in each stored payload's metadata envelope, so disk
    promotions and process restarts keep them.

``clock`` (:class:`ClockPolicy`)
    Compact-CAR-style second chance: a FIFO ring with one referenced bit per
    entry.  A hit is a single O(1) bit set (no list reshuffling); the victim
    scan clears bits until it finds an unreferenced entry.  The low-overhead
    end of the spectrum from the Compact CAR literature.

Policies only track *ordering metadata*; the payloads themselves stay in
:class:`~repro.cache.store.ResultCache`, which calls ``on_admit``/``on_hit``/
``victim``/``remove`` under its own lock (policies need no locking of their
own).  ``remove`` covers explicit invalidation (the streaming engine's
profile updates) and TTL expiry as well as test teardown, so every policy
must tolerate removals of digests it is still tracking.
"""

from __future__ import annotations

import abc
import heapq
import itertools
from collections import OrderedDict, deque

__all__ = [
    "ClockPolicy",
    "CostAwarePolicy",
    "EvictionPolicy",
    "LRUPolicy",
    "available_policies",
    "create_policy",
]


class EvictionPolicy(abc.ABC):
    """Replacement strategy for the memory tier, keyed by content digest.

    The cache owns the payloads and the capacity bound; the policy only
    answers "which entry goes next?".  Contract:

    - ``on_admit(digest, cost, frequency)`` — the digest entered the memory
      tier (fresh store or disk promotion), or was re-stored while already
      resident (which must refresh it, matching the pre-refactor LRU).
      ``cost`` is the entry's observed ``compute_seconds`` and ``frequency``
      its lifetime hit count, both carried in the payload's metadata.
    - ``on_hit(digest, cost, frequency)`` — a memory hit; ``frequency`` has
      already been incremented by the cache.
    - ``victim()`` — choose, forget, and return the digest to evict.  Only
      called while at least one tracked digest remains.
    - ``remove(digest)`` — the digest left the tier outside eviction
      (invalidation or TTL expiry); unknown digests are a no-op.
    """

    #: Registry name; also reported as ``CacheStats.policy``.
    name: str = "abstract"

    @abc.abstractmethod
    def on_admit(self, digest: str, cost: float, frequency: int) -> None:
        """Track a digest admitted into (or refreshed in) the memory tier."""

    @abc.abstractmethod
    def on_hit(self, digest: str, cost: float, frequency: int) -> None:
        """Record a memory hit on a tracked digest."""

    @abc.abstractmethod
    def victim(self) -> str:
        """Select, forget, and return the next digest to evict."""

    @abc.abstractmethod
    def remove(self, digest: str) -> None:
        """Forget a digest removed outside eviction (no-op when unknown)."""


class LRUPolicy(EvictionPolicy):
    """Least-recently-used — bit-identical to the pre-refactor ``OrderedDict``.

    Admissions and hits move the digest to the most-recent end; the victim is
    the least-recent end.  This is the reference policy the property tests
    pin against a simulation of the original hard-coded implementation.
    """

    name = "lru"

    def __init__(self) -> None:
        """Start with an empty recency order."""
        self._order: OrderedDict[str, None] = OrderedDict()

    def on_admit(self, digest: str, cost: float, frequency: int) -> None:
        """Insert (or refresh) the digest at the most-recent end."""
        self._order[digest] = None
        self._order.move_to_end(digest)

    def on_hit(self, digest: str, cost: float, frequency: int) -> None:
        """Refresh the digest to the most-recent end."""
        self._order.move_to_end(digest)

    def victim(self) -> str:
        """Pop and return the least-recently-used digest."""
        return self._order.popitem(last=False)[0]

    def remove(self, digest: str) -> None:
        """Forget the digest if tracked."""
        self._order.pop(digest, None)


class CostAwarePolicy(EvictionPolicy):
    """GreedyDual-Size-Frequency replacement (unit sizes).

    Priority of an entry: ``L + cost x (frequency + 1)``, where ``L`` is the
    inflation clock — it jumps to the victim's priority on every eviction, so
    long-untouched entries age relative to fresh ones without per-entry
    decay.  ``frequency + 1`` counts the admission itself as one use, so a
    never-hit expensive entry still outranks a never-hit cheap one.

    Entries stored without an observed cost (``compute_seconds`` 0.0, e.g. a
    raw :meth:`ResultCache.put`) all share priority ``L`` and degrade to
    FIFO among themselves — the policy only adds value when the caller
    reports costs, as the consensus services do.

    Frequency is remembered across evictions (*ghost* use counts, the trick
    the CAR/ARC family uses): without it, a popular-but-cheap query restarts
    at frequency zero after every capacity eviction and can never re-earn
    residency against pinned expensive entries, so the policy would lose
    cost-weighted hit mass to plain LRU on exactly the Zipf traces it is
    meant to win.  The ghost table is bounded: when it fills, forgotten
    digests that are no longer resident are dropped oldest-first.

    Implementation: a min-heap of ``(priority, sequence, digest)`` with lazy
    deletion — stale heap rows (priority no longer current, or digest no
    longer tracked) are skipped during :meth:`victim`.  The sequence number
    makes equal-priority ties FIFO and keeps the ordering deterministic.
    """

    name = "cost-aware"

    #: Bound on the ghost frequency table (non-resident digests remembered).
    GHOST_LIMIT = 65536

    def __init__(self) -> None:
        """Start with an empty heap and the inflation clock at zero."""
        self._inflation = 0.0
        self._priority: dict[str, float] = {}
        self._heap: list[tuple[float, int, str]] = []
        self._sequence = itertools.count()
        self._uses: dict[str, int] = {}

    def _observe(self, digest: str, frequency: int) -> int:
        """Bump and return the digest's lifetime use count (ghost-retained).

        The count never drops below the cache-reported ``frequency + 1`` (the
        admission counts as one use), so a cache restart with envelope
        metadata and a long-lived policy agree on the floor.
        """
        uses = max(self._uses.get(digest, 0) + 1, frequency + 1)
        if digest not in self._uses and len(self._uses) >= self.GHOST_LIMIT:
            stale = [
                ghost
                for ghost in self._uses
                if ghost not in self._priority
            ][: self.GHOST_LIMIT // 2]
            for ghost in stale:
                del self._uses[ghost]
        self._uses[digest] = uses
        return uses

    def _reprioritise(self, digest: str, cost: float, frequency: int) -> None:
        """Recompute the digest's priority and push the fresh heap row."""
        priority = self._inflation + cost * self._observe(digest, frequency)
        self._priority[digest] = priority
        heapq.heappush(self._heap, (priority, next(self._sequence), digest))

    def on_admit(self, digest: str, cost: float, frequency: int) -> None:
        """Price the admitted (or refreshed) digest at the current clock."""
        self._reprioritise(digest, cost, frequency)

    def on_hit(self, digest: str, cost: float, frequency: int) -> None:
        """Raise the digest's priority for its new frequency."""
        self._reprioritise(digest, cost, frequency)

    def victim(self) -> str:
        """Evict the minimum-priority digest and advance the inflation clock."""
        while True:
            priority, _, digest = heapq.heappop(self._heap)
            if self._priority.get(digest) == priority:
                del self._priority[digest]
                # GDSF ageing: future admissions start at the evicted
                # priority, so resident-but-idle entries lose ground.
                self._inflation = priority
                return digest

    def remove(self, digest: str) -> None:
        """Forget the digest; its heap rows go stale and are skipped later."""
        self._priority.pop(digest, None)


class ClockPolicy(EvictionPolicy):
    """Second-chance (CLOCK-family) replacement with O(1) hits.

    Entries sit in a FIFO ring with one *referenced* bit each.  A hit sets
    the bit — a single dictionary write, no ring reshuffling, the low-touch
    property Compact CAR optimises for.  The victim scan pops the ring head:
    a referenced entry is granted a second chance (bit cleared, moved to the
    tail), the first unreferenced entry is evicted.  Removals are lazy — a
    generation counter per digest lets stale ring slots be skipped, so
    ``remove`` is O(1) too.
    """

    name = "clock"

    def __init__(self) -> None:
        """Start with an empty ring."""
        self._ring: deque[tuple[str, int]] = deque()
        #: digest -> [generation, referenced]; stale ring slots carry an
        #: older generation and are skipped by the victim scan.
        self._state: dict[str, list] = {}
        self._generation = itertools.count()

    def on_admit(self, digest: str, cost: float, frequency: int) -> None:
        """Append a fresh entry; refreshing a resident one sets its bit."""
        state = self._state.get(digest)
        if state is not None:
            state[1] = True
            return
        generation = next(self._generation)
        self._state[digest] = [generation, False]
        self._ring.append((digest, generation))

    def on_hit(self, digest: str, cost: float, frequency: int) -> None:
        """Set the referenced bit (one O(1) write)."""
        self._state[digest][1] = True

    def victim(self) -> str:
        """Sweep the ring: second-chance referenced entries, evict the first cold one."""
        while True:
            digest, generation = self._ring.popleft()
            state = self._state.get(digest)
            if state is None or state[0] != generation:
                continue  # removed or re-admitted since this slot was queued
            if state[1]:
                state[1] = False
                self._ring.append((digest, generation))
                continue
            del self._state[digest]
            return digest

    def remove(self, digest: str) -> None:
        """Forget the digest; its ring slot goes stale and is skipped later."""
        self._state.pop(digest, None)


#: Registry of constructible policies (``ResultCache(policy=<name>)``).
_POLICIES: dict[str, type[EvictionPolicy]] = {
    LRUPolicy.name: LRUPolicy,
    CostAwarePolicy.name: CostAwarePolicy,
    ClockPolicy.name: ClockPolicy,
}


def available_policies() -> tuple[str, ...]:
    """The registered policy names, in registration order."""
    return tuple(_POLICIES)


def create_policy(policy: str | EvictionPolicy) -> EvictionPolicy:
    """Coerce a policy name or instance into a fresh/usable policy object."""
    if isinstance(policy, EvictionPolicy):
        return policy
    try:
        return _POLICIES[policy]()
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise ValueError(
            f"unknown eviction policy {policy!r} (choose from: {known})"
        ) from None
