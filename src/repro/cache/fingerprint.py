"""Content-addressed cache keys for consensus queries.

A consensus result is fully determined by five inputs: the multiset of
weighted base rankings, the candidate table's group schema, the aggregation
method, the optional local-repair strategy, and the fairness thresholds Δ.
:func:`cache_key` fingerprints each input and combines them into one SHA-256
digest, so the cache never needs to compare payloads — equal digest means
equal query.

Two properties matter for correctness:

* **Construction-order invariance.**  Every aggregation method treats the
  base rankings as a weighted multiset, so :func:`fingerprint_ranking_set`
  hashes the *sorted* per-ranking digests: building the same profile in a
  different ranking order (or through a different constructor) produces the
  identical fingerprint.  Per-ranking labels are cosmetic and excluded.
* **Spelling invariance.**  Method names are canonicalised through the
  registry (``"A3"`` and ``"Fair-Borda"`` share a key with ``"fair-borda"``),
  strategy names through :func:`repro.aggregation.search.get_strategy`, and
  thresholds through :meth:`repro.fairness.thresholds.FairnessThresholds.coerce`.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.candidates import CandidateTable
from repro.core.ranking_set import RankingSet
from repro.fair.registry import canonical_fair_method_name
from repro.fairness.thresholds import FairnessThresholds
from repro.io.serialization import candidate_table_to_dict, canonical_json

__all__ = [
    "CacheKey",
    "cache_key",
    "fingerprint_candidate_table",
    "fingerprint_ranking_set",
    "fingerprint_thresholds",
]


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def fingerprint_ranking_set(rankings: RankingSet) -> str:
    """SHA-256 fingerprint of the weighted multiset of base rankings.

    Each ranking contributes a digest of its candidate order (raw little-endian
    int64 bytes — no JSON encode of ``m*n`` integers on the hot path) and its
    weight; the per-ranking digests are sorted before the final hash, so the
    fingerprint is invariant to the construction order of the set.  Labels are
    excluded: they never influence an aggregation result.
    """
    tokens = sorted(
        _digest(
            ranking.order.astype("<i8", copy=False).tobytes()
            + repr(float(weight)).encode()
        )
        for ranking, weight in zip(rankings.rankings, rankings.weights)
    )
    body = f"n={rankings.n_candidates};" + ";".join(tokens)
    return _digest(body.encode())


def fingerprint_candidate_table(table: CandidateTable) -> str:
    """SHA-256 fingerprint of the candidate names, attributes, and domains.

    Uses the canonical JSON encoding of
    :func:`repro.io.serialization.candidate_table_to_dict`, so any change to
    the group schema — attribute values, domain composition, or candidate
    names (which appear in served payloads) — changes the key.
    """
    return _digest(canonical_json(candidate_table_to_dict(table)).encode())


def fingerprint_thresholds(
    delta: FairnessThresholds | float | Mapping[str, float],
) -> str:
    """Canonical JSON encoding of the fairness thresholds (default + per-entity)."""
    thresholds = FairnessThresholds.coerce(delta)
    return canonical_json(
        {"default": thresholds.default, "per_entity": thresholds.per_entity}
    )


@dataclass(frozen=True)
class CacheKey:
    """The five normalised components of a consensus cache key.

    ``digest`` is the content address: the SHA-256 of the canonical JSON of
    all five fields, used as the memory-tier key and the disk blob filename.
    """

    profile: str
    schema: str
    method: str
    strategy: str | None
    thresholds: str

    @property
    def digest(self) -> str:
        """The combined SHA-256 content address of this key."""
        return _digest(
            canonical_json(
                {
                    "profile": self.profile,
                    "schema": self.schema,
                    "method": self.method,
                    "strategy": self.strategy,
                    "thresholds": self.thresholds,
                }
            ).encode()
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-safe view of the key components (served next to cached payloads)."""
        return {
            "profile": self.profile,
            "schema": self.schema,
            "method": self.method,
            "strategy": self.strategy,
            "thresholds": self.thresholds,
            "digest": self.digest,
        }


def cache_key(
    rankings: RankingSet,
    table: CandidateTable,
    method: str = "fair-borda",
    strategy: str | None = None,
    delta: FairnessThresholds | float | Mapping[str, float] = 0.1,
) -> CacheKey:
    """Build the content-addressed key of one consensus query.

    Raises
    ------
    AggregationError
        If ``method`` or ``strategy`` does not resolve through its registry.
    """
    canonical_strategy: str | None = None
    if strategy is not None:
        from repro.aggregation.search import get_strategy

        canonical_strategy = get_strategy(strategy).name
    return CacheKey(
        profile=fingerprint_ranking_set(rankings),
        schema=fingerprint_candidate_table(table),
        method=canonical_fair_method_name(method),
        strategy=canonical_strategy,
        thresholds=fingerprint_thresholds(delta),
    )
