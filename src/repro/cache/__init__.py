"""Content-addressed consensus cache and the ``mani-rank serve`` front-end.

Every ``aggregate``/fairness query used to recompute from scratch even though
the Mallows-grid and case-study workloads replay identical (profile, method,
strategy, Δ) queries constantly.  This package closes that gap with three
layers:

:mod:`repro.cache.fingerprint`
    Content-addressed cache keys: SHA-256 fingerprints of the ranking-set
    content (order-insensitive across construction orders), the candidate
    table's group schema, and the normalised (method, strategy, Δ) triple.

:mod:`repro.cache.store` / :mod:`repro.cache.eviction`
    A policy-managed memory tier over an optional disk tier (JSON blobs
    written through :mod:`repro.io.serialization`) with hit/miss/eviction/
    expiry counters reported as a :class:`~repro.cache.store.CacheStats`
    snapshot.  Replacement is pluggable (``lru``, ``cost-aware``, ``clock``)
    and opt-in TTL expiry covers both tiers through an injectable clock.

:mod:`repro.cache.resilience`
    The failure-containment primitives the serving stack runs on: retry with
    backoff around the disk tier, a circuit breaker that degrades the cache
    to memory-only service under persistent disk faults, admission control
    with load shedding, latency recording, and the injectable clock behind
    every HTTP deadline.

:mod:`repro.cache.service` / :mod:`repro.cache.http`
    :class:`~repro.cache.service.ConsensusCacheService` computes or replays
    full consensus payloads through the aggregation registry (every
    registered method is servable), and the asyncio HTTP front-end exposes
    it as ``mani-rank serve`` with ``/aggregate``, ``/fairness`` and
    ``/stats`` endpoints.

Cached results are bit-identical to cold computation — enforced by
``benchmarks/test_perf_cache.py``, which also commits hit-rate and
latency-percentile baselines under a Zipf query popularity distribution.
"""

from __future__ import annotations

from repro.cache.eviction import (
    ClockPolicy,
    CostAwarePolicy,
    EvictionPolicy,
    LRUPolicy,
    available_policies,
    create_policy,
)
from repro.cache.fingerprint import (
    CacheKey,
    cache_key,
    fingerprint_candidate_table,
    fingerprint_ranking_set,
)
from repro.cache.http import ConsensusHTTPServer, run_server
from repro.cache.resilience import (
    AdmissionController,
    AsyncClock,
    CircuitBreaker,
    LatencyRecorder,
    RetryPolicy,
    ServerLimits,
)
from repro.cache.service import ConsensusCacheService, compute_consensus_payload
from repro.cache.store import CacheStats, DiskTier, LocalFilesystem, ResultCache

__all__ = [
    "AdmissionController",
    "AsyncClock",
    "CacheKey",
    "CacheStats",
    "CircuitBreaker",
    "ClockPolicy",
    "ConsensusCacheService",
    "ConsensusHTTPServer",
    "CostAwarePolicy",
    "DiskTier",
    "EvictionPolicy",
    "LRUPolicy",
    "LatencyRecorder",
    "LocalFilesystem",
    "ResultCache",
    "RetryPolicy",
    "ServerLimits",
    "available_policies",
    "cache_key",
    "compute_consensus_payload",
    "create_policy",
    "fingerprint_candidate_table",
    "fingerprint_ranking_set",
    "run_server",
]
