"""Cached consensus computation wired through the aggregation registry.

:func:`compute_consensus_payload` is the single compute path: it resolves any
registered method (``fair-borda``, ``fair-borda-insertion``, paper labels
A1–B4, ...), optionally appends a local-repair strategy, and assembles the
full JSON-safe response — consensus order and names, PD loss, parity scores,
the paper-style fairness row, and the method diagnostics.  The CLI
``aggregate`` command and the HTTP endpoints both print/serve projections of
this one payload, so cached and cold responses can be compared bit-for-bit.

:class:`ConsensusCacheService` wraps the compute path with the
content-addressed :class:`~repro.cache.store.ResultCache`: equal queries
(under the invariances of :mod:`repro.cache.fingerprint`) are served from
cache, and every response carries its key digest plus a ``cached`` flag.
"""

from __future__ import annotations

import json
import time
from collections.abc import Mapping

from repro.cache.fingerprint import cache_key
from repro.cache.store import ResultCache
from repro.core.candidates import CandidateTable
from repro.core.ranking_set import RankingSet
from repro.exceptions import AggregationError
from repro.fair.registry import canonical_fair_method_name, get_fair_method
from repro.fair.seeded import SeededFairAggregator
from repro.fairness.parity import parity_scores
from repro.fairness.pd_loss import pd_loss
from repro.fairness.report import fairness_row
from repro.fairness.thresholds import FairnessThresholds
from repro.io.serialization import canonical_json

__all__ = ["ConsensusCacheService", "compute_consensus_payload", "resolve_method"]


def resolve_method(method: str, strategy: str | None = None):
    """Instantiate a registered method, optionally with a local-repair strategy.

    Mirrors the CLI contract: ``strategy`` requires a seeded method (the
    baselines and Fair-Kemeny do not run the local-search repair).
    """
    aggregator = get_fair_method(method)
    if strategy is not None:
        if not isinstance(aggregator, SeededFairAggregator):
            raise AggregationError(
                f"a local-repair strategy requires a seeded method (Fair-Borda, "
                f"Fair-Copeland, ...); {aggregator.name!r} does not run the "
                "local-search repair"
            )
        aggregator = aggregator.with_local_repair(strategy)
    return aggregator


def compute_consensus_payload(
    rankings: RankingSet,
    table: CandidateTable,
    method: str = "fair-borda",
    strategy: str | None = None,
    delta: FairnessThresholds | float | Mapping[str, float] = 0.1,
) -> dict:
    """Compute one consensus query end-to-end and return the JSON-safe payload.

    The payload is normalised through a canonical-JSON round trip before it is
    returned, so a freshly computed payload, its memory-cached copy, and its
    disk-round-tripped copy compare equal with ``==`` — the bit-identity
    contract the cache benchmarks assert.
    """
    thresholds = FairnessThresholds.coerce(delta)
    aggregator = resolve_method(method, strategy)
    result = aggregator.aggregate_with_diagnostics(rankings, table, thresholds)
    consensus = result.ranking
    payload = {
        "method": canonical_fair_method_name(method),
        "method_label": aggregator.name,
        "strategy": strategy,
        "delta": {
            "default": thresholds.default,
            "per_entity": thresholds.per_entity,
        },
        "consensus": {
            "order": consensus.to_list(),
            "names": [table.name_of(candidate) for candidate in consensus],
        },
        "unaware_order": (
            result.unaware_ranking.to_list() if result.unaware_ranking else None
        ),
        "pd_loss": pd_loss(rankings, consensus),
        "parity": parity_scores(consensus, table),
        "fairness": fairness_row(consensus, table),
        "diagnostics": result.diagnostics,
    }
    return json.loads(canonical_json(payload))


class ConsensusCacheService:
    """Content-addressed consensus serving: compute once, replay from cache.

    Parameters
    ----------
    cache:
        The two-tier result store; defaults to a memory-only LRU so the
        service works without any configuration.
    """

    def __init__(self, cache: ResultCache | None = None) -> None:
        """See the class docstring for the parameter contract."""
        self._cache = cache if cache is not None else ResultCache()

    @property
    def cache(self) -> ResultCache:
        """The underlying result cache."""
        return self._cache

    def aggregate(
        self,
        rankings: RankingSet,
        table: CandidateTable,
        method: str = "fair-borda",
        strategy: str | None = None,
        delta: FairnessThresholds | float | Mapping[str, float] = 0.1,
    ) -> dict:
        """Serve one consensus query, computing it only on a cache miss.

        Returns ``{"key": <digest>, "cached": <bool>, "result": <payload>}``
        where ``result`` is exactly the :func:`compute_consensus_payload`
        value — byte-identical whether it was computed now or replayed.
        """
        key = cache_key(rankings, table, method=method, strategy=strategy, delta=delta)
        digest = key.digest
        payload = self._cache.get(digest)
        if payload is not None:
            return {"key": digest, "cached": True, "result": payload}
        # The strategy is canonicalised inside the key; compute with the same
        # normalised name so equivalent spellings produce identical payloads.
        started = time.perf_counter()
        payload = compute_consensus_payload(
            rankings,
            table,
            method=key.method,
            strategy=key.strategy,
            delta=delta,
        )
        elapsed = time.perf_counter() - started
        # The observed compute cost is the cost-aware policy's replacement
        # signal; it rides in the entry's metadata across tiers.
        self._cache.put(digest, payload, compute_seconds=elapsed)
        return {"key": digest, "cached": False, "result": payload}

    def stats(self) -> dict:
        """JSON-safe snapshot of the cache counters."""
        return self._cache.stats().to_dict()

    def health(self) -> dict:
        """Liveness view for ``/healthz``: overall status plus disk degradation.

        The service stays *live* (and bit-identical: compute always works,
        memory tier always admits) even when the disk tier is broken — the
        breaker merely degrades persistence, so health reports ``degraded``
        rather than failing.
        """
        stats = self._cache.stats()
        return {
            "disk_degraded": stats.disk_degraded,
            "breaker_state": stats.breaker_state,
            "disk_errors": stats.disk_errors,
        }
