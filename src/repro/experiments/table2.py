"""Table II — Fair-Borda runtime as the number of base rankings grows.

The paper pushes Fair-Borda (its fastest MFCR method) to tens of millions of
base rankings on the Figure 6 dataset and reports execution times (1k rankings
→ 4.8 s, 10M rankings → 50.75 s on the authors' machine).  Absolute times
depend on the machine; the property to reproduce is that the runtime grows
mildly (roughly linearly in |R| with a large constant offset from the
per-candidate work) and stays practical at large |R|.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from functools import partial

from repro.aggregation.borda import BordaAggregator
from repro.core.ranking_set import RankingSet
from repro.experiments.figure6 import SCALABILITY_MODAL_TARGETS
from repro.experiments.harness import ScenarioData, ScenarioGrid, require_scale
from repro.experiments.reporting import ExperimentResult
from repro.fair.make_mr_fair import make_mr_fair
from repro.fairness.thresholds import FairnessThresholds

__all__ = ["run"]

#: Paper-reported runtimes (seconds) for reference in EXPERIMENTS.md.
PAPER_RUNTIMES = {
    1_000: 4.8,
    10_000: 4.81,
    100_000: 5.21,
    1_000_000: 9.36,
    10_000_000: 50.75,
}

_SCALE_PARAMETERS = {
    "paper": {"n_candidates": 100, "ranking_counts": (1_000, 10_000, 100_000, 1_000_000)},
    "ci": {"n_candidates": 40, "ranking_counts": (200, 1_000, 5_000)},
}


def _measure_tier(data: ScenarioData, delta: float) -> dict[str, object]:
    """Replicate the base sample to one tier size and time Fair-Borda on it.

    Module-level (and parameterised through :func:`functools.partial`) so the
    parallel sweep can pickle it.  The returned ``n_rankings`` is the tier's
    replicated count, overriding the record's base-sample axis value.
    """
    count = int(data.cell.extras["count"])
    base = data.rankings
    repetitions, remainder = divmod(count, base.n_rankings)
    rankings = list(base.rankings) * repetitions + list(base.rankings[:remainder])
    ranking_set = RankingSet(rankings)
    start = time.perf_counter()
    seed_ranking = BordaAggregator().aggregate(ranking_set)
    corrected = make_mr_fair(seed_ranking, data.table, FairnessThresholds(delta))
    elapsed = time.perf_counter() - start
    return {
        "n_rankings": count,
        "runtime_s": elapsed,
        "n_swaps": corrected.n_swaps,
        "paper_runtime_s": PAPER_RUNTIMES.get(count, float("nan")),
    }


def run(
    scale: str = "ci",
    delta: float = 0.1,
    theta: float = 0.6,
    seed: int = 2022,
    ranking_counts: Sequence[int] | None = None,
    n_workers: int | None = 1,
    in_group_threads: int | None = 1,
) -> ExperimentResult:
    """Reproduce Table II: Fair-Borda execution time vs number of base rankings.

    Because materialising tens of millions of sampled rankings is memory
    bound, the base rankings for each tier are sampled once at the smallest
    tier size and *replicated* to the requested count before aggregation —
    Borda's cost depends only on the number of rankings processed, not their
    diversity, so replication preserves the runtime behaviour being measured.

    The tiers run as one :class:`ScenarioGrid` sweep over a single shared
    workload (the base sample) with the tier size as a cell parameter; the
    ``n_workers`` option is accepted for driver uniformity, but because every
    tier shares that one workload the sweep forms a single workload group and
    executes serially — which is also what keeps the timing measurements
    honest.
    """
    scale = require_scale(scale)
    parameters = _SCALE_PARAMETERS[scale]
    counts = tuple(ranking_counts) if ranking_counts is not None else parameters["ranking_counts"]
    base_count = min(min(counts), 1_000)
    # The grid materialises the shared kernels (table, calibrated modal, the
    # batched base sample) once; each tier cell replicates that base sample.
    grid = ScenarioGrid.product(
        candidate_counts=(parameters["n_candidates"],),
        ranking_counts=(base_count,),
        thetas=(theta,),
        modal_targets=SCALABILITY_MODAL_TARGETS,
        param_grid={"count": counts},
        seed=seed,
    )
    result = ExperimentResult(
        experiment="table2",
        title="Table II: Fair-Borda scalability in the number of base rankings",
        parameters={
            "scale": scale,
            "n_candidates": parameters["n_candidates"],
            "theta": theta,
            "delta": delta,
            "seed": seed,
            "base_n_rankings": base_count,
        },
    )
    records = grid.run(
        partial(_measure_tier, delta=delta),
        n_workers=n_workers,
        in_group_threads=in_group_threads,
    )
    for record in records:
        # The tier size rides in as the cell extra "count" and is reported as
        # the record's n_rankings; drop the duplicate column.
        record.pop("count", None)
    result.extend(records)
    result.notes.append(
        "Base rankings are replicated to reach each tier size (Borda cost "
        "depends only on the number of rankings processed); absolute times "
        "are machine dependent, the growth shape is the reproduced quantity."
    )
    return result
