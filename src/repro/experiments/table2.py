"""Table II — Fair-Borda runtime as the number of base rankings grows.

The paper pushes Fair-Borda (its fastest MFCR method) to tens of millions of
base rankings on the Figure 6 dataset and reports execution times (1k rankings
→ 4.8 s, 10M rankings → 50.75 s on the authors' machine).  Absolute times
depend on the machine; the property to reproduce is that the runtime grows
mildly (roughly linearly in |R| with a large constant offset from the
per-candidate work) and stays practical at large |R|.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.aggregation.borda import BordaAggregator
from repro.core.ranking_set import RankingSet
from repro.experiments.figure6 import SCALABILITY_MODAL_TARGETS
from repro.experiments.harness import ScenarioCell, ScenarioGrid, require_scale
from repro.experiments.reporting import ExperimentResult
from repro.fair.make_mr_fair import make_mr_fair
from repro.fairness.thresholds import FairnessThresholds

__all__ = ["run"]

#: Paper-reported runtimes (seconds) for reference in EXPERIMENTS.md.
PAPER_RUNTIMES = {
    1_000: 4.8,
    10_000: 4.81,
    100_000: 5.21,
    1_000_000: 9.36,
    10_000_000: 50.75,
}

_SCALE_PARAMETERS = {
    "paper": {"n_candidates": 100, "ranking_counts": (1_000, 10_000, 100_000, 1_000_000)},
    "ci": {"n_candidates": 40, "ranking_counts": (200, 1_000, 5_000)},
}


def run(
    scale: str = "ci",
    delta: float = 0.1,
    theta: float = 0.6,
    seed: int = 2022,
    ranking_counts: Sequence[int] | None = None,
) -> ExperimentResult:
    """Reproduce Table II: Fair-Borda execution time vs number of base rankings.

    Because materialising tens of millions of sampled rankings is memory
    bound, the base rankings for each tier are sampled once at the smallest
    tier size and *replicated* to the requested count before aggregation —
    Borda's cost depends only on the number of rankings processed, not their
    diversity, so replication preserves the runtime behaviour being measured.
    """
    scale = require_scale(scale)
    parameters = _SCALE_PARAMETERS[scale]
    counts = tuple(ranking_counts) if ranking_counts is not None else parameters["ranking_counts"]
    base_count = min(min(counts), 1_000)
    # The grid materialises the shared kernels (table, calibrated modal, the
    # batched base sample) once; the per-tier sets below are replications of
    # that base cell.
    grid = ScenarioGrid(
        [
            ScenarioCell.build(
                parameters["n_candidates"], base_count, theta, SCALABILITY_MODAL_TARGETS
            )
        ],
        seed=seed,
    )
    base_data = grid.materialize(grid.cells[0])
    table, base = base_data.table, base_data.rankings
    thresholds = FairnessThresholds(delta)
    borda = BordaAggregator()
    result = ExperimentResult(
        experiment="table2",
        title="Table II: Fair-Borda scalability in the number of base rankings",
        parameters={
            "scale": scale,
            "n_candidates": table.n_candidates,
            "theta": theta,
            "delta": delta,
            "seed": seed,
        },
    )
    result.parameters["base_datagen_s"] = base_data.datagen_seconds
    for count in counts:
        repetitions, remainder = divmod(count, base.n_rankings)
        rankings = list(base.rankings) * repetitions + list(base.rankings[:remainder])
        ranking_set = RankingSet(rankings)
        start = time.perf_counter()
        seed_ranking = borda.aggregate(ranking_set)
        corrected = make_mr_fair(seed_ranking, table, thresholds)
        elapsed = time.perf_counter() - start
        result.add(
            n_rankings=count,
            runtime_s=elapsed,
            n_swaps=corrected.n_swaps,
            paper_runtime_s=PAPER_RUNTIMES.get(count, float("nan")),
        )
    result.notes.append(
        "Base rankings are replicated to reach each tier size (Borda cost "
        "depends only on the number of rankings processed); absolute times "
        "are machine dependent, the growth shape is the reproduced quantity."
    )
    return result
