"""Figure 5 — Price of Fairness analysis.

Two panels (Section IV-C):

* **Left**: PoF of Fair-Kemeny as a function of θ for the Low/Medium/High-Fair
  datasets at Δ = 0.1.  Expected shape: the Low-Fair modal ranking costs the
  most; with an unfair modal ranking PoF *increases* with consensus strength,
  while for fairer modal rankings θ matters little.
* **Right**: PoF as a function of Δ (0.1 … 0.5) on the Low-Fair dataset at
  θ = 0.6 for the four MFCR methods plus Correct-Fairest-Perm.  Expected
  shape: a steep inverse relationship — looser Δ, lower PoF.

PoF for a seeded method is the PD-loss gap to its own fairness-unaware seed;
for Fair-Kemeny it is the gap to the unconstrained Kemeny consensus of the
same base rankings.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.datagen.attributes import paper_mallows_table, small_mallows_table
from repro.experiments.harness import (
    DEFAULT_THETAS,
    evaluate_method,
    require_scale,
    theta_sweep_datasets,
)
from repro.experiments.reporting import ExperimentResult
from repro.fair.baselines import UnawareKemenyBaseline
from repro.fair.registry import PAPER_LABELS, get_fair_method

__all__ = ["run"]

#: Δ sweep of the right panel.
DEFAULT_DELTAS = (0.1, 0.2, 0.3, 0.4, 0.5)

_SCALE_PARAMETERS = {
    "paper": {
        "table": lambda: paper_mallows_table(group_size=6),
        "n_rankings": 150,
        "profiles": ("low", "medium", "high"),
        "delta_methods": ("A1", "A2", "A3", "A4", "B4"),
    },
    "ci": {
        "table": lambda: small_mallows_table(group_size=2),
        "n_rankings": 25,
        "profiles": ("low", "medium"),
        "delta_methods": ("A1", "A3", "B4"),
    },
}


def run(
    scale: str = "ci",
    delta: float = 0.1,
    thetas: Sequence[float] | None = None,
    deltas: Sequence[float] | None = None,
    theta_for_delta_sweep: float = 0.6,
    seed: int = 2022,
) -> ExperimentResult:
    """Reproduce Figure 5: PoF vs θ (left panel) and PoF vs Δ (right panel)."""
    scale = require_scale(scale)
    parameters = _SCALE_PARAMETERS[scale]
    thetas = tuple(thetas) if thetas is not None else DEFAULT_THETAS
    deltas = tuple(deltas) if deltas is not None else DEFAULT_DELTAS
    table = parameters["table"]()
    result = ExperimentResult(
        experiment="figure5",
        title="Figure 5: Price of Fairness vs theta (Fair-Kemeny) and vs delta (all methods)",
        parameters={
            "scale": scale,
            "n_candidates": table.n_candidates,
            "n_rankings": parameters["n_rankings"],
            "delta": delta,
            "thetas": list(thetas),
            "deltas": list(deltas),
            "theta_for_delta_sweep": theta_for_delta_sweep,
            "seed": seed,
        },
    )

    # Left panel: Fair-Kemeny PoF vs theta per dataset profile.
    unaware = UnawareKemenyBaseline()
    for profile in parameters["profiles"]:
        datasets = theta_sweep_datasets(
            table, profile, thetas, parameters["n_rankings"], seed=seed
        )
        for dataset in datasets:
            reference = unaware.aggregate(dataset.rankings, table, delta)
            evaluation = evaluate_method(
                get_fair_method("A1"),
                dataset.rankings,
                table,
                delta,
                reference_unaware=reference,
            )
            result.add(
                panel="theta-sweep",
                dataset=f"{profile.capitalize()}-Fair",
                theta=dataset.theta,
                method="(A1) Fair-Kemeny",
                PoF=evaluation.price_of_fairness,
                pd_loss=evaluation.pd_loss,
            )

    # Right panel: PoF vs delta on the Low-Fair dataset at fixed theta.
    low_datasets = theta_sweep_datasets(
        table, "low", (theta_for_delta_sweep,), parameters["n_rankings"], seed=seed
    )
    low = low_datasets[0]
    kemeny_reference = unaware.aggregate(low.rankings, table, delta)
    for sweep_delta in deltas:
        for label in parameters["delta_methods"]:
            method = get_fair_method(label)
            reference = kemeny_reference if label.upper() == "A1" else None
            evaluation = evaluate_method(
                method, low.rankings, table, sweep_delta, reference_unaware=reference
            )
            result.add(
                panel="delta-sweep",
                dataset="Low-Fair",
                theta=theta_for_delta_sweep,
                delta=sweep_delta,
                method=f"({label}) {PAPER_LABELS.get(label.upper(), evaluation.method)}",
                PoF=evaluation.price_of_fairness,
                pd_loss=evaluation.pd_loss,
            )
    result.notes.append(
        "PoF is measured against each method's own fairness-unaware seed "
        "consensus (unconstrained Kemeny for Fair-Kemeny)."
    )
    return result
