"""Figure 6 — scalability in the number of base rankings.

Section IV-D measures the runtime of every method as the number of base
rankings ``|R|`` grows, on a Mallows dataset with a binary Race / binary
Gender modal ranking (ARP Race = 0.15, ARP Gender = 0.7, IRP = 0.55),
``n = 100`` candidates, θ = 0.6, and Δ = 0.1.

Expected shape: three runtime tiers — (fastest) Fair-Borda, Pick-Fairest-Perm
and Correct-Fairest-Perm; (middle) Fair-Schulze, Fair-Copeland, Fair-Kemeny
and Kemeny; (slowest) Kemeny-Weighted.  The proposed methods are no slower
than plain Kemeny.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.harness import (
    ScenarioGrid,
    evaluate_labelled_cell,
    require_scale,
)
from repro.experiments.reporting import ExperimentResult
from repro.fairness.parity import parity_scores

__all__ = ["run", "SCALABILITY_MODAL_TARGETS"]

#: Modal-ranking fairness targets of the Figure 6 dataset.
SCALABILITY_MODAL_TARGETS = {"Race": 0.15, "Gender": 0.70}

_SCALE_PARAMETERS = {
    "paper": {
        "n_candidates": 100,
        "ranking_counts": (1_000, 5_000, 10_000, 20_000),
        "labels": ("A1", "A2", "A3", "A4", "B1", "B2", "B3", "B4"),
    },
    "ci": {
        "n_candidates": 40,
        "ranking_counts": (50, 150, 400),
        "labels": ("A2", "A3", "A4", "B3", "B4"),
    },
}


def run(
    scale: str = "ci",
    delta: float = 0.1,
    theta: float = 0.6,
    seed: int = 2022,
    ranking_counts: Sequence[int] | None = None,
    method_labels: Sequence[str] | None = None,
    n_workers: int | None = 1,
    in_group_threads: int | None = 1,
) -> ExperimentResult:
    """Reproduce Figure 6: runtime of every method vs the number of base rankings.

    ``n_workers > 1`` distributes the sweep's workload groups over a process
    pool (see :meth:`ScenarioGrid.run`); the records are bit-identical to the
    serial sweep apart from the wall-clock timing fields — note the reported
    ``runtime_s`` values are then measured on shared cores.
    """
    scale = require_scale(scale)
    parameters = _SCALE_PARAMETERS[scale]
    counts = tuple(ranking_counts) if ranking_counts is not None else parameters["ranking_counts"]
    labels = tuple(method_labels) if method_labels is not None else parameters["labels"]
    grid = ScenarioGrid.product(
        candidate_counts=(parameters["n_candidates"],),
        ranking_counts=counts,
        thetas=(theta,),
        modal_targets=SCALABILITY_MODAL_TARGETS,
        param_grid={"label": labels, "delta": (delta,)},
        seed=seed,
    )
    table = grid.table_for(parameters["n_candidates"])
    modal = grid.modal_for(parameters["n_candidates"], SCALABILITY_MODAL_TARGETS)
    result = ExperimentResult(
        experiment="figure6",
        title="Figure 6: scalability with an increasing number of base rankings",
        parameters={
            "scale": scale,
            "n_candidates": table.n_candidates,
            "ranking_counts": list(counts),
            "theta": theta,
            "delta": delta,
            "seed": seed,
            "modal_parity": {
                key: round(value, 3) for key, value in parity_scores(modal, table).items()
            },
            "methods": list(labels),
        },
    )

    result.extend(
        grid.run(
            evaluate_labelled_cell,
            n_workers=n_workers,
            in_group_threads=in_group_threads,
        )
    )
    if scale == "ci":
        result.notes.append(
            "ci scale shrinks both the candidate count and the ranking counts "
            "and skips the ILP-based methods so the sweep completes quickly; "
            "the method tiers are still visible.  Use scale='paper' for the "
            "full configuration."
        )
    return result
