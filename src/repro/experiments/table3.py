"""Table III — Fair-Borda runtime as the candidate count grows.

The paper scales Fair-Borda to 100 000 candidates at Δ = 0.33 on the Figure 7
dataset and reports execution times (1k candidates → 0.37 s, 100k → 3007 s on
the authors' machine).  The reproduced quantity is the super-linear growth in
the candidate count (the Make-MR-Fair correction dominates as n grows) while
remaining practical for tens of thousands of candidates.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from functools import partial

from repro.aggregation.borda import BordaAggregator
from repro.experiments.figure7 import FIGURE7_MODAL_TARGETS
from repro.experiments.harness import ScenarioData, ScenarioGrid, require_scale
from repro.experiments.reporting import ExperimentResult
from repro.fair.make_mr_fair import make_mr_fair
from repro.fairness.thresholds import FairnessThresholds

__all__ = ["run"]

#: Paper-reported runtimes (seconds) for reference in EXPERIMENTS.md.
PAPER_RUNTIMES = {
    1_000: 0.37,
    10_000: 30.83,
    20_000: 121.49,
    30_000: 273.24,
    40_000: 482.29,
    50_000: 749.00,
    100_000: 3_007.19,
}

_SCALE_PARAMETERS = {
    "paper": {"candidate_counts": (1_000, 5_000, 10_000, 20_000), "n_rankings": 100},
    "ci": {"candidate_counts": (200, 500, 1_000), "n_rankings": 20},
}


def _measure_cell(data: ScenarioData, delta: float) -> dict[str, object]:
    """Time one Fair-Borda run on a materialised cell (module-level so the
    parallel sweep can pickle it)."""
    start = time.perf_counter()
    seed_ranking = BordaAggregator().aggregate(data.rankings)
    corrected = make_mr_fair(seed_ranking, data.table, FairnessThresholds(delta))
    elapsed = time.perf_counter() - start
    return {
        "runtime_s": elapsed,
        "n_swaps": corrected.n_swaps,
        "paper_runtime_s": PAPER_RUNTIMES.get(data.cell.n_candidates, float("nan")),
    }


def run(
    scale: str = "ci",
    delta: float = 0.33,
    theta: float = 0.6,
    seed: int = 2022,
    candidate_counts: Sequence[int] | None = None,
    n_workers: int | None = 1,
    in_group_threads: int | None = 1,
) -> ExperimentResult:
    """Reproduce Table III: Fair-Borda execution time vs candidate count (Δ = 0.33).

    ``n_workers > 1`` runs the per-``n`` workload groups on a process pool
    (identical measurements apart from wall-clock noise on shared cores).
    """
    scale = require_scale(scale)
    parameters = _SCALE_PARAMETERS[scale]
    counts = (
        tuple(candidate_counts)
        if candidate_counts is not None
        else parameters["candidate_counts"]
    )
    result = ExperimentResult(
        experiment="table3",
        title="Table III: Fair-Borda scalability in the number of candidates",
        parameters={
            "scale": scale,
            "candidate_counts": list(counts),
            "n_rankings": parameters["n_rankings"],
            "theta": theta,
            "delta": delta,
            "seed": seed,
        },
    )
    grid = ScenarioGrid.product(
        candidate_counts=counts,
        ranking_counts=(parameters["n_rankings"],),
        thetas=(theta,),
        modal_targets=FIGURE7_MODAL_TARGETS,
        seed=seed,
    )

    result.extend(
        grid.run(
            partial(_measure_cell, delta=delta),
            n_workers=n_workers,
            in_group_threads=in_group_threads,
        )
    )
    result.notes.append(
        "Runtime excludes dataset generation (the paper also times only the "
        "aggregation); absolute times are machine dependent, the growth shape "
        "is the reproduced quantity."
    )
    return result
