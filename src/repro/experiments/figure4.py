"""Figure 4 — MFCR methods vs baselines on the Low-Fair dataset (Δ = 0.1).

For a sweep over the consensus strength θ, every proposed method (A1
Fair-Kemeny, A2 Fair-Schulze, A3 Fair-Borda, A4 Fair-Copeland) and every
baseline (B1 Kemeny, B2 Kemeny-Weighted, B3 Pick-Fairest-Perm, B4
Correct-Fairest-Perm) produces a consensus ranking of the Low-Fair Mallows
dataset; the experiment reports the four panels of Figure 4: PD loss,
ARP Gender, ARP Race, and IRP.

Expected shape (paper Section IV-B): the A methods and B4 satisfy the
threshold on every fairness panel; B1–B3 do not.  Kemeny-based methods have
the lowest PD loss, Fair-Kemeny the lowest among the fair ones, and B4 the
highest PD loss among the threshold-satisfying methods.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.datagen.attributes import paper_mallows_table, small_mallows_table
from repro.experiments.harness import (
    DEFAULT_THETAS,
    evaluate_method,
    record_from_evaluation,
    require_scale,
    theta_sweep_datasets,
)
from repro.experiments.reporting import ExperimentResult
from repro.fair.registry import PAPER_LABELS, get_fair_method

__all__ = ["run", "DEFAULT_METHOD_LABELS"]

#: Method labels evaluated by the full experiment.
DEFAULT_METHOD_LABELS = ("A1", "A2", "A3", "A4", "B1", "B2", "B3", "B4")

_SCALE_PARAMETERS = {
    "paper": {"table": lambda: paper_mallows_table(group_size=6), "n_rankings": 150, "labels": DEFAULT_METHOD_LABELS},
    "ci": {"table": lambda: small_mallows_table(group_size=2), "n_rankings": 25, "labels": DEFAULT_METHOD_LABELS},
}


def run(
    scale: str = "ci",
    delta: float = 0.1,
    thetas: Sequence[float] | None = None,
    seed: int = 2022,
    method_labels: Sequence[str] | None = None,
) -> ExperimentResult:
    """Reproduce Figure 4: PD loss and parity of every method over the θ sweep."""
    scale = require_scale(scale)
    parameters = _SCALE_PARAMETERS[scale]
    thetas = tuple(thetas) if thetas is not None else DEFAULT_THETAS
    labels = tuple(method_labels) if method_labels is not None else parameters["labels"]
    table = parameters["table"]()
    result = ExperimentResult(
        experiment="figure4",
        title="Figure 4: MFCR methods vs baselines on the Low-Fair dataset",
        parameters={
            "scale": scale,
            "n_candidates": table.n_candidates,
            "n_rankings": parameters["n_rankings"],
            "delta": delta,
            "thetas": list(thetas),
            "seed": seed,
            "methods": list(labels),
        },
    )
    datasets = theta_sweep_datasets(
        table, "low", thetas, parameters["n_rankings"], seed=seed
    )
    for dataset in datasets:
        for label in labels:
            method = get_fair_method(label)
            evaluation = evaluate_method(method, dataset.rankings, table, delta)
            record = record_from_evaluation(
                evaluation,
                table,
                label=label,
                theta=dataset.theta,
            )
            record["method"] = f"({label}) {PAPER_LABELS.get(label.upper(), evaluation.method)}"
            result.add(**record)
    result.notes.append(
        "Satisfying methods (A1-A4, B4) should show every parity column "
        f"<= {delta}; B1-B3 should exceed it, most strongly at high theta."
    )
    return result
