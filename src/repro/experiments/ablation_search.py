"""Ablation — local-search neighbourhood strategies on the Mallows grid.

The paper post-processes consensus rankings with adjacent-swap local
Kemenization only.  :mod:`repro.aggregation.search` generalises that step to
pluggable neighbourhoods on the incremental Kemeny-delta engine, so this
experiment adds the missing ablation axis: for every cell of a Mallows
(n, m, θ) grid it seeds with the Borda consensus and runs each strategy —
``adjacent-swap``, ``insertion``, ``combined`` — recording the reached Kemeny
objective, the strategy's own wall-clock time, and its pass/move counts.

Expected shape: ``insertion`` is never worse in objective than
``adjacent-swap`` on any cell (a structural guarantee of its
variable-neighbourhood schedule, not a statistical observation — see
:class:`repro.aggregation.search.InsertionStrategy`), and the gap widens as
θ shrinks (noisier profiles leave more non-adjacent disorder for block moves
to fix).  ``combined`` explores the large neighbourhood first and carries no
such guarantee; the ablation measures how the two schedules compare.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.aggregation.borda import BordaAggregator
from repro.aggregation.incremental import KemenyDeltaEngine
from repro.aggregation.search import available_strategies, get_strategy
from repro.core.ranking import Ranking
from repro.experiments.figure6 import SCALABILITY_MODAL_TARGETS
from repro.experiments.harness import ScenarioData, ScenarioGrid, require_scale
from repro.experiments.reporting import ExperimentResult

__all__ = ["run", "evaluate_strategy_cell"]

_SCALE_PARAMETERS = {
    "paper": {
        "candidate_counts": (100, 200),
        "ranking_counts": (500,),
        "thetas": (0.1, 0.3, 0.6),
    },
    "ci": {
        "candidate_counts": (30,),
        "ranking_counts": (40, 80),
        "thetas": (0.2, 0.6),
    },
}

#: Generous budget so every strategy runs to convergence on grid workloads.
_MAX_PASSES = 1000

#: Search seeds measured per cell: the Borda consensus (the aggregator's own
#: near-optimal seed) and its reversal (an adversarially bad upstream
#: ranking, the cold seed of the perf benchmarks).
SEED_KINDS = ("borda", "cold")


def evaluate_strategy_cell(data: ScenarioData) -> dict[str, object]:
    """:meth:`ScenarioGrid.run` callback timing one strategy on one cell.

    Module-level (picklable) so the sweep can run under ``n_workers > 1``.
    The Borda seed is recomputed per strategy cell; it is cheap next to the
    search and keeps every strategy's input bit-identical by construction.
    """
    strategy = get_strategy(str(data.cell.extras["strategy"]))
    seed = BordaAggregator().aggregate(data.rankings)
    if data.cell.extras["seed_ranking"] == "cold":
        seed = Ranking(seed.order[::-1].copy(), validate=False)
    engine = KemenyDeltaEngine(data.rankings, seed)
    start = time.perf_counter()
    stats = strategy.search(engine, max_passes=_MAX_PASSES)
    search_seconds = time.perf_counter() - start
    record: dict[str, object] = {
        "objective": engine.objective,
        "search_s": search_seconds,
        "n_passes": stats.n_passes,
    }
    if stats.n_moves is not None:
        record["n_moves"] = stats.n_moves
    return record


def run(
    scale: str = "ci",
    theta: float | None = None,
    seed: int = 2022,
    strategies: Sequence[str] | None = None,
    n_workers: int | None = 1,
    in_group_threads: int | None = 1,
) -> ExperimentResult:
    """Compare the local-search strategies' objective/time on a Mallows grid.

    Every record carries the cell's data axes plus ``seed_ranking`` (the
    Borda consensus or its reversal), ``strategy``, ``objective``,
    ``search_s`` (the strategy run alone, excluding the seed computation),
    ``n_passes``, and — for the block-move strategies — ``n_moves``.
    ``theta`` restricts the sweep to a single spread value; ``n_workers > 1``
    distributes the sweep as in the scalability experiments.
    """
    scale = require_scale(scale)
    parameters = _SCALE_PARAMETERS[scale]
    thetas = (float(theta),) if theta is not None else parameters["thetas"]
    names = tuple(strategies) if strategies is not None else available_strategies()
    grid = ScenarioGrid.product(
        candidate_counts=parameters["candidate_counts"],
        ranking_counts=parameters["ranking_counts"],
        thetas=thetas,
        modal_targets=SCALABILITY_MODAL_TARGETS,
        param_grid={"seed_ranking": SEED_KINDS, "strategy": names},
        seed=seed,
    )
    result = ExperimentResult(
        experiment="ablation-search",
        title="Ablation: local-search neighbourhood strategies (Borda seed)",
        parameters={
            "scale": scale,
            "candidate_counts": list(parameters["candidate_counts"]),
            "ranking_counts": list(parameters["ranking_counts"]),
            "thetas": list(thetas),
            "strategies": list(names),
            "max_passes": _MAX_PASSES,
            "seed": seed,
        },
    )
    result.extend(
        grid.run(
            evaluate_strategy_cell,
            n_workers=n_workers,
            in_group_threads=in_group_threads,
        )
    )
    result.notes.append(
        "insertion is structurally never worse in objective than "
        "adjacent-swap on the same cell; combined carries no such guarantee "
        "(see repro.aggregation.search)."
    )
    return result
