"""Result containers and ASCII reporting for the experiment harness.

Every experiment module returns an :class:`ExperimentResult`: a named list of
row dictionaries plus the parameters the experiment ran with.  The container
renders itself as an aligned text table (the reproduction's substitute for the
paper's plots — each figure becomes the printed data series behind it) and can
be written to JSON for archival.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.io.serialization import dump_json, to_jsonable

__all__ = ["ExperimentResult", "format_cell", "render_table"]


def format_cell(value: object, digits: int = 3) -> str:
    """Format one table cell: floats get fixed decimals, everything else ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def render_table(
    records: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    digits: int = 3,
) -> str:
    """Render a list of row dictionaries as an aligned ASCII table."""
    if not records:
        return "(no rows)"
    if columns is None:
        seen: dict[str, None] = {}
        for record in records:
            for key in record:
                seen.setdefault(key, None)
        columns = list(seen)
    rows = [[format_cell(record.get(column, ""), digits) for column in columns] for record in records]
    widths = [
        max(len(str(column)), *(len(row[i]) for row in rows))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "-" * len(header)
    body = [
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)) for row in rows
    ]
    return "\n".join([header, separator, *body])


@dataclass
class ExperimentResult:
    """Outcome of one experiment (one paper table or figure).

    Attributes
    ----------
    experiment:
        Experiment identifier, e.g. ``"figure4"``.
    title:
        Human-readable title matching the paper's caption.
    parameters:
        The workload parameters the experiment ran with (θ values, Δ, sizes,
        scale preset, seed, ...).
    records:
        One dictionary per reported row / data point.
    notes:
        Free-form remarks, e.g. documented deviations from the paper's setup.
    """

    experiment: str
    title: str
    parameters: dict[str, object] = field(default_factory=dict)
    records: list[dict[str, object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **record: object) -> None:
        """Append one result row."""
        self.records.append(dict(record))

    def extend(self, records: Iterable[Mapping[str, object]]) -> None:
        """Append many result rows."""
        for record in records:
            self.records.append(dict(record))

    def columns(self) -> list[str]:
        """Union of record keys, in first-seen order."""
        seen: dict[str, None] = {}
        for record in self.records:
            for key in record:
                seen.setdefault(key, None)
        return list(seen)

    def filtered(self, **criteria: object) -> list[dict[str, object]]:
        """Return the records whose fields equal every given criterion."""
        return [
            record
            for record in self.records
            if all(record.get(key) == value for key, value in criteria.items())
        ]

    def series(self, x: str, y: str, **criteria: object) -> list[tuple[object, object]]:
        """Extract an (x, y) data series from the records matching ``criteria``."""
        return [(record[x], record[y]) for record in self.filtered(**criteria)]

    def to_text(self, digits: int = 3) -> str:
        """Render the full result (title, parameters, rows, notes) as text."""
        lines = [self.title, "=" * len(self.title)]
        if self.parameters:
            lines.append(
                "parameters: "
                + ", ".join(f"{key}={value}" for key, value in self.parameters.items())
            )
        lines.append("")
        lines.append(render_table(self.records, self.columns(), digits=digits))
        if self.notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """JSON-safe dictionary representation."""
        return to_jsonable(
            {
                "experiment": self.experiment,
                "title": self.title,
                "parameters": self.parameters,
                "records": self.records,
                "notes": self.notes,
            }
        )

    def save(self, path: str | Path) -> None:
        """Write the result to ``path`` as JSON."""
        dump_json(self.to_dict(), path)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()
