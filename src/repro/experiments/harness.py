"""Shared machinery for the paper-reproduction experiments.

The experiment modules (one per paper table / figure) share four things:

* a *scale* preset — ``"ci"`` for the sizes exercised by the automated
  benchmark suite, ``"paper"`` for sizes matching the publication (larger and
  slower, in particular for the exact-ILP methods where the paper used
  CPLEX); every module documents its own per-scale parameters;
* :func:`evaluate_method` — run one fair method on one dataset and collect
  fairness, representation, and runtime measurements in a flat record;
* :func:`theta_sweep_datasets` — build the Mallows datasets for a θ sweep
  with a fairness-controlled modal ranking (the Section IV-A methodology);
* :class:`ScenarioGrid` — the batched scenario sweep the scalability
  experiments (Figures 6–7, Tables II–III) run on: every experiment cell is a
  ``(n_candidates, n_rankings, θ, group-composition)`` tuple, the grid
  materialises each cell's candidate table / calibrated modal ranking /
  batched Mallows sample once, shares them across cells via caches, and wraps
  every cell callback with timing so each record carries both the data
  generation and the evaluation cost.

The runtimes :func:`evaluate_method` reports for the fair methods are those
of Make-MR-Fair on the incremental fairness engine
(:mod:`repro.fairness.incremental`): the scalability experiments (Figures 6–7,
Tables II–III) exercise the engine's O(n_groups)-per-swap hot path rather
than from-scratch parity recomputation, which is what makes the larger
candidate/ranker regimes tractable at CI time.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.core.candidates import CandidateTable
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.datagen.fair_modal import MallowsFairnessDataset, generate_mallows_dataset
from repro.exceptions import ExperimentError
from repro.fair.base import FairRankAggregator
from repro.fairness.parity import parity_scores
from repro.fairness.pd_loss import pd_loss, price_of_fairness
from repro.fairness.thresholds import FairnessThresholds

__all__ = [
    "SCALES",
    "require_scale",
    "MethodEvaluation",
    "evaluate_method",
    "theta_sweep_datasets",
    "DEFAULT_THETAS",
    "ScenarioCell",
    "ScenarioData",
    "ScenarioGrid",
    "evaluate_labelled_cell",
]

#: Supported scale presets.
SCALES = ("ci", "paper")

#: θ values swept by the synthetic experiments (Figures 3–5).
DEFAULT_THETAS = (0.2, 0.4, 0.6, 0.8)


def require_scale(scale: str) -> str:
    """Validate a scale preset name and return it normalised."""
    key = scale.strip().lower()
    if key not in SCALES:
        raise ExperimentError(
            f"unknown scale {scale!r}; expected one of {', '.join(SCALES)}"
        )
    return key


@dataclass(frozen=True)
class MethodEvaluation:
    """Measurements of one fair method on one dataset."""

    method: str
    ranking: Ranking
    parity: dict[str, float]
    pd_loss: float
    price_of_fairness: float | None
    runtime_seconds: float


def evaluate_method(
    method: FairRankAggregator,
    rankings: RankingSet,
    table: CandidateTable,
    delta: FairnessThresholds | float | Mapping[str, float],
    reference_unaware: Ranking | None = None,
) -> MethodEvaluation:
    """Run ``method`` and measure fairness, PD loss, PoF, and wall-clock runtime.

    Parameters
    ----------
    reference_unaware:
        Fairness-unaware consensus used for the Price of Fairness.  When
        omitted, the method's own seed consensus (if it reports one) is used;
        methods without a seed report ``None``.
    """
    start = time.perf_counter()
    result = method.aggregate_with_diagnostics(rankings, table, delta)
    elapsed = time.perf_counter() - start
    baseline = reference_unaware if reference_unaware is not None else result.unaware_ranking
    pof = (
        price_of_fairness(rankings, result.ranking, baseline)
        if baseline is not None
        else None
    )
    return MethodEvaluation(
        method=method.name,
        ranking=result.ranking,
        parity=parity_scores(result.ranking, table),
        pd_loss=pd_loss(rankings, result.ranking),
        price_of_fairness=pof,
        runtime_seconds=elapsed,
    )


def theta_sweep_datasets(
    table: CandidateTable,
    profile: str | Mapping[str, float],
    thetas: Sequence[float],
    n_rankings: int,
    seed: int,
    name: str | None = None,
) -> list[MallowsFairnessDataset]:
    """One Mallows dataset per θ value, all sharing the same modal ranking.

    The modal ranking is built once (from ``seed``) so the sweep isolates the
    effect of consensus strength; each θ gets an independent sampling stream
    derived from the same seed sequence.
    """
    datasets: list[MallowsFairnessDataset] = []
    seed_sequence = np.random.SeedSequence(seed)
    children = seed_sequence.spawn(len(thetas) + 1)
    modal_rng = np.random.default_rng(children[0])
    base = generate_mallows_dataset(
        table, profile, theta=float(thetas[0]), n_rankings=n_rankings,
        rng=modal_rng, name=name,
    )
    datasets.append(base)
    for index, theta in enumerate(thetas[1:], start=1):
        rng = np.random.default_rng(children[index])
        from repro.datagen.mallows import sample_mallows  # local import to avoid cycle

        rankings = sample_mallows(base.modal, float(theta), n_rankings, rng=rng)
        datasets.append(
            MallowsFairnessDataset(
                name=base.name,
                table=table,
                modal=base.modal,
                theta=float(theta),
                rankings=rankings,
                modal_parity=base.modal_parity,
            )
        )
    return datasets


def _canonical_targets(
    modal_targets: Mapping[str, float] | tuple[tuple[str, float], ...],
) -> tuple[tuple[str, float], ...]:
    """Canonical (sorted, typed) tuple form of per-attribute parity targets.

    Shared by :meth:`ScenarioCell.build` and the grid caches so keys built
    from either a mapping or an existing tuple always match.
    """
    if isinstance(modal_targets, Mapping):
        items = modal_targets.items()
    else:
        items = modal_targets
    return tuple(sorted((str(key), float(value)) for key, value in items))


@dataclass(frozen=True)
class ScenarioCell:
    """One cell of a scenario sweep: a workload the experiments measure once.

    A cell fixes the synthetic-data axes of Section IV — candidate count,
    ranking count, Mallows spread ``θ``, and the group composition via the
    modal ranking's per-attribute parity targets — plus any experiment-local
    parameters (method label, Δ, ...) that do not change the generated data.
    Cells are hashable so the grid can key its kernel caches on them.
    """

    n_candidates: int
    n_rankings: int
    theta: float
    modal_targets: tuple[tuple[str, float], ...]
    params: tuple[tuple[str, object], ...] = ()

    @classmethod
    def build(
        cls,
        n_candidates: int,
        n_rankings: int,
        theta: float,
        modal_targets: Mapping[str, float],
        **params: object,
    ) -> "ScenarioCell":
        """Build a cell from plain mappings (sorted into canonical tuples)."""
        return cls(
            n_candidates=int(n_candidates),
            n_rankings=int(n_rankings),
            theta=float(theta),
            modal_targets=_canonical_targets(modal_targets),
            params=tuple(sorted(params.items())),
        )

    @property
    def extras(self) -> dict[str, object]:
        """The experiment-local parameters as a plain dictionary."""
        return dict(self.params)


@dataclass(frozen=True)
class ScenarioData:
    """Materialised inputs of one :class:`ScenarioCell`.

    ``datagen_seconds`` is the wall-clock time spent building *this* cell's
    inputs; cells served entirely from the grid caches report (close to) 0.
    """

    cell: ScenarioCell
    table: CandidateTable
    modal: Ranking
    rankings: RankingSet
    datagen_seconds: float


class ScenarioGrid:
    """Batched (n, m, θ, group-composition) sweep with shared cached kernels.

    The scalability experiments all walk a grid of workload cells and run
    some measurement on each.  Materialising a cell costs three kernels —
    the candidate table, the calibrated modal ranking (a bisection over
    parity evaluations), and the batched Mallows sample — and consecutive
    cells typically share most of them (Figure 6 sweeps ``m`` at fixed
    ``n``; Figure 7 sweeps Δ at fixed data).  The grid caches each kernel
    by its defining axes so every distinct (table, modal, sample) is built
    exactly once per sweep, and stamps each record with per-cell timing.

    Determinism: the table and modal ranking derive from ``seed`` alone
    (matching the former per-module idiom), while each distinct
    ``(n_candidates, n_rankings, θ, group-composition)`` workload gets its
    own sampling stream via a :class:`numpy.random.SeedSequence` spawned
    from ``seed`` plus the full cache key, so cells are reproducible
    independently of sweep order and no two distinct workloads share a
    uniform stream (sharing would make e.g. a θ sweep's datasets comonotone
    instead of independent).
    """

    def __init__(
        self,
        cells: Sequence[ScenarioCell],
        seed: int = 2022,
        table_factory: Callable[..., CandidateTable] | None = None,
    ) -> None:
        self.cells = list(cells)
        if not self.cells:
            raise ExperimentError("a scenario grid needs at least one cell")
        self.seed = int(seed)
        if table_factory is None:
            from repro.datagen.attributes import scalability_table

            table_factory = scalability_table
        self._table_factory = table_factory
        self._tables: dict[int, CandidateTable] = {}
        self._modals: dict[tuple, Ranking] = {}
        self._rankings: dict[tuple, RankingSet] = {}

    @classmethod
    def product(
        cls,
        candidate_counts: Sequence[int],
        ranking_counts: Sequence[int],
        thetas: Sequence[float],
        modal_targets: Mapping[str, float],
        param_grid: Mapping[str, Sequence[object]] | None = None,
        seed: int = 2022,
        table_factory: Callable[..., CandidateTable] | None = None,
    ) -> "ScenarioGrid":
        """Cartesian-product grid over the data axes and extra parameter axes.

        Cells are ordered with the data axes outermost (candidates, then
        rankings, then θ) and the ``param_grid`` axes innermost, so parameter
        variations of one workload run back-to-back on fully cached data.
        """
        names = list(param_grid) if param_grid else []
        value_lists = [list(param_grid[name]) for name in names] if param_grid else []
        cells = [
            ScenarioCell.build(
                n, m, theta, modal_targets,
                **dict(zip(names, combination)),
            )
            for n in candidate_counts
            for m in ranking_counts
            for theta in thetas
            for combination in (product(*value_lists) if names else ((),))
        ]
        return cls(cells, seed=seed, table_factory=table_factory)

    # ------------------------------------------------------------------
    # cached kernels
    # ------------------------------------------------------------------
    def table_for(self, n_candidates: int) -> CandidateTable:
        """The (cached) candidate table for an ``n_candidates`` workload."""
        if n_candidates not in self._tables:
            self._tables[n_candidates] = self._table_factory(n_candidates, rng=self.seed)
        return self._tables[n_candidates]

    def modal_for(
        self,
        n_candidates: int,
        modal_targets: Mapping[str, float] | tuple[tuple[str, float], ...],
    ) -> Ranking:
        """The (cached) calibrated modal ranking for one group composition."""
        from repro.datagen.fair_modal import calibrated_modal_ranking

        modal_targets = _canonical_targets(modal_targets)
        key = (n_candidates, modal_targets)
        if key not in self._modals:
            self._modals[key] = calibrated_modal_ranking(
                self.table_for(n_candidates), dict(modal_targets), rng=self.seed
            )
        return self._modals[key]

    @staticmethod
    def _rankings_key(cell: ScenarioCell) -> tuple:
        return (cell.n_candidates, cell.n_rankings, cell.theta, cell.modal_targets)

    def _cell_rng(self, cell: ScenarioCell) -> np.random.Generator:
        """An independent, sweep-order-free sampling stream for one workload.

        The SeedSequence entropy is the grid seed plus every data axis
        (θ mapped through its exact IEEE-754 bits, the group composition
        through a stable digest), so distinct workloads never share a
        stream and the same cell always reproduces the same sample.
        """
        import struct
        import zlib

        theta_bits = int.from_bytes(struct.pack("<d", cell.theta), "little")
        target_bits = zlib.crc32(repr(cell.modal_targets).encode("utf-8"))
        entropy = [
            self.seed,
            cell.n_candidates,
            cell.n_rankings,
            theta_bits,
            target_bits,
        ]
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def rankings_for(self, cell: ScenarioCell) -> RankingSet:
        """The (cached) batched Mallows sample for one cell's data axes."""
        from repro.datagen.mallows import sample_mallows

        key = self._rankings_key(cell)
        if key not in self._rankings:
            modal = self.modal_for(cell.n_candidates, cell.modal_targets)
            self._rankings[key] = sample_mallows(
                modal, cell.theta, cell.n_rankings, rng=self._cell_rng(cell)
            )
        return self._rankings[key]

    def materialize(self, cell: ScenarioCell) -> ScenarioData:
        """Materialise one cell's inputs, reusing every cached kernel."""
        start = time.perf_counter()
        table = self.table_for(cell.n_candidates)
        modal = self.modal_for(cell.n_candidates, cell.modal_targets)
        rankings = self.rankings_for(cell)
        return ScenarioData(
            cell=cell,
            table=table,
            modal=modal,
            rankings=rankings,
            datagen_seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    # sweep
    # ------------------------------------------------------------------
    def run(
        self,
        cell_function: Callable[[ScenarioData], Mapping[str, object]],
        n_workers: int | None = 1,
        in_group_threads: int | None = 1,
    ) -> list[dict[str, object]]:
        """Run ``cell_function`` on every cell and collect per-cell records.

        Each record carries the cell's data axes, its extra parameters, the
        callback's measurements, and two timings: ``datagen_s`` (building
        this cell's inputs — 0 when fully cache-served) and ``cell_s`` (the
        callback itself).

        Peak memory stays at one workload's sample: because cells are
        ordered data-axes-outermost, each workload's (potentially large)
        :class:`RankingSet` is evicted from the cache as soon as the sweep
        moves past it.  The small table/modal caches are kept; a cell order
        that revisits a workload simply regenerates the identical sample.

        Parameters
        ----------
        n_workers:
            ``1`` (or ``None``) runs the sweep serially in-process.  With
            ``n_workers > 1`` the sweep's *workload groups* (maximal runs of
            consecutive cells sharing one (n, m, theta, group-composition)
            sample) are distributed over a process pool.  Every cached kernel
            is immutable and every workload's sampling stream derives from
            the grid seed plus the cell's own data axes — never from sweep
            order — so the records are **bit-identical** to the serial sweep
            regardless of worker count, except for the two wall-clock timing
            fields (``datagen_s``/``cell_s``; workers rebuild the shared
            table/modal kernels per group, which also only shows up there).
            Requires ``cell_function`` (and a custom ``table_factory``, if
            any) to be picklable, e.g. a module-level function or a
            :func:`functools.partial` over one.
        in_group_threads:
            Opt-in thread-level parallelism *inside* one workload group, for
            grids dominated by a single large workload (where the process
            pool has nothing to split).  With ``in_group_threads > 1`` each
            group's cells are materialised first (all cache-served from one
            sample) and their callbacks then run on a thread pool,
            order-stable.  The callbacks run on shared immutable data, so the
            records are bit-identical to the serial sweep except for the
            wall-clock timing fields.  Requires ``cell_function`` to be
            thread-safe; actual speed-up needs the callback to release the
            GIL (large numpy kernels, or the ``nogil`` numba kernel backend
            of :mod:`repro.kernels`).  Composes with ``n_workers``: each
            pool worker threads its own groups.
        """
        workers = 1 if n_workers is None else int(n_workers)
        threads = 1 if in_group_threads is None else int(in_group_threads)
        if workers < 1:
            raise ExperimentError(f"n_workers must be >= 1, got {n_workers}")
        if threads < 1:
            raise ExperimentError(
                f"in_group_threads must be >= 1, got {in_group_threads}"
            )
        if workers == 1:
            return self._run_serial(cell_function, threads)
        return self._run_parallel(cell_function, workers, threads)

    def _record_cell(
        self,
        cell: ScenarioCell,
        data: ScenarioData,
        cell_function: Callable[[ScenarioData], Mapping[str, object]],
    ) -> dict[str, object]:
        """Run one cell's callback on materialised data and build its record."""
        start = time.perf_counter()
        payload = cell_function(data)
        cell_seconds = time.perf_counter() - start
        record: dict[str, object] = {
            "n_candidates": cell.n_candidates,
            "n_rankings": cell.n_rankings,
            "theta": cell.theta,
        }
        record.update(cell.extras)
        record.update(payload)
        record["datagen_s"] = data.datagen_seconds
        record["cell_s"] = cell_seconds
        return record

    def _run_serial(
        self,
        cell_function: Callable[[ScenarioData], Mapping[str, object]],
        in_group_threads: int = 1,
    ) -> list[dict[str, object]]:
        """In-process sweep (see :meth:`run` for the record contract).

        Walks the workload groups in order; within a group the callbacks run
        serially or, with ``in_group_threads > 1``, on a thread pool over the
        group's shared materialised sample.
        """
        records: list[dict[str, object]] = []
        previous_key: tuple | None = None
        for group in self.workload_groups():
            key = self._rankings_key(group[0])
            if previous_key is not None and key != previous_key:
                self._rankings.pop(previous_key, None)
            previous_key = key
            # Materialise serially: the first cell builds the group's shared
            # sample, the rest are cache hits (their datagen_s reports ~0
            # exactly as in the fully serial sweep).
            datas = [self.materialize(cell) for cell in group]
            if in_group_threads > 1 and len(group) > 1:
                from concurrent.futures import ThreadPoolExecutor

                with ThreadPoolExecutor(
                    max_workers=min(in_group_threads, len(group))
                ) as pool:
                    records.extend(
                        pool.map(
                            self._record_cell,
                            group,
                            datas,
                            [cell_function] * len(group),
                        )
                    )
            else:
                records.extend(
                    self._record_cell(cell, data, cell_function)
                    for cell, data in zip(group, datas)
                )
        return records

    def workload_groups(self) -> list[list[ScenarioCell]]:
        """Maximal runs of consecutive cells sharing one materialised sample.

        This is the parallel sweep's unit of work: cells inside a group share
        the (potentially large) Mallows sample, so splitting a group across
        workers would regenerate it once per worker for no extra parallelism
        at the sweep's memory-bound bottleneck.
        """
        groups: list[list[ScenarioCell]] = []
        previous_key: tuple | None = None
        for cell in self.cells:
            key = self._rankings_key(cell)
            if previous_key is None or key != previous_key:
                groups.append([])
            groups[-1].append(cell)
            previous_key = key
        return groups

    def _run_parallel(
        self,
        cell_function: Callable[[ScenarioData], Mapping[str, object]],
        n_workers: int,
        in_group_threads: int = 1,
    ) -> list[dict[str, object]]:
        """Distribute the workload groups over a process pool, order-stable."""
        from concurrent.futures import ProcessPoolExecutor

        groups = self.workload_groups()
        if len(groups) == 1:
            # A single workload group cannot be split (its cells share one
            # materialised sample), so a pool would add fork/pickle overhead
            # for zero parallelism — and skew any timing measurements.
            return self._run_serial(cell_function, in_group_threads)
        records: list[dict[str, object]] = []
        with ProcessPoolExecutor(max_workers=min(n_workers, len(groups))) as pool:
            for group_records in pool.map(
                _run_cell_group,
                (
                    (
                        self.seed,
                        self._table_factory,
                        group,
                        cell_function,
                        in_group_threads,
                    )
                    for group in groups
                ),
            ):
                records.extend(group_records)
        return records


def _run_cell_group(
    task: tuple[
        int,
        Callable[..., CandidateTable],
        list[ScenarioCell],
        Callable[[ScenarioData], Mapping[str, object]],
        int,
    ],
) -> list[dict[str, object]]:
    """Worker entry point of the parallel sweep: one workload group, serially.

    Module-level so it pickles under every multiprocessing start method.  The
    worker rebuilds its shared kernels from the grid seed (deterministic, so
    only the timing fields can differ from a serial sweep).
    """
    seed, table_factory, cells, cell_function, in_group_threads = task
    grid = ScenarioGrid(cells, seed=seed, table_factory=table_factory)
    return grid._run_serial(cell_function, in_group_threads)


def evaluate_labelled_cell(data: ScenarioData) -> dict[str, object]:
    """Shared :meth:`ScenarioGrid.run` callback for method-comparison sweeps.

    Expects the cell's extra parameters to carry a paper method ``label``
    (A1–B4 or a method name) and a fairness threshold ``delta``; returns the
    per-method record shape the runtime figures (6–7) report.
    """
    from repro.fair.registry import PAPER_LABELS, get_fair_method

    label = str(data.cell.extras["label"])
    method = get_fair_method(label)
    evaluation = evaluate_method(
        method, data.rankings, data.table, data.cell.extras["delta"]
    )
    return {
        "method": f"({label}) {PAPER_LABELS.get(label.upper(), evaluation.method)}",
        "runtime_s": evaluation.runtime_seconds,
        "pd_loss": evaluation.pd_loss,
    }


def record_from_evaluation(
    evaluation: MethodEvaluation,
    table: CandidateTable,
    **extra: object,
) -> dict[str, object]:
    """Flatten a :class:`MethodEvaluation` into an experiment record."""
    record: dict[str, object] = dict(extra)
    record["method"] = evaluation.method
    record["pd_loss"] = evaluation.pd_loss
    for entity, score in evaluation.parity.items():
        label = "IRP" if entity == table.INTERSECTION else f"ARP {entity}"
        record[label] = score
    if evaluation.price_of_fairness is not None:
        record["PoF"] = evaluation.price_of_fairness
    record["runtime_s"] = evaluation.runtime_seconds
    return record


def methods_by_label(labels: Iterable[str]) -> dict[str, FairRankAggregator]:
    """Instantiate fair methods for the given paper labels (A1–B4) or names."""
    from repro.fair.registry import get_fair_method  # local import to avoid cycle

    return {label: get_fair_method(label) for label in labels}
