"""Shared machinery for the paper-reproduction experiments.

The experiment modules (one per paper table / figure) share three things:

* a *scale* preset — ``"ci"`` for the sizes exercised by the automated
  benchmark suite, ``"paper"`` for sizes matching the publication (larger and
  slower, in particular for the exact-ILP methods where the paper used
  CPLEX); every module documents its own per-scale parameters;
* :func:`evaluate_method` — run one fair method on one dataset and collect
  fairness, representation, and runtime measurements in a flat record;
* :func:`theta_sweep_datasets` — build the Mallows datasets for a θ sweep
  with a fairness-controlled modal ranking (the Section IV-A methodology).

The runtimes :func:`evaluate_method` reports for the fair methods are those
of Make-MR-Fair on the incremental fairness engine
(:mod:`repro.fairness.incremental`): the scalability experiments (Figures 6–7,
Tables II–III) exercise the engine's O(n_groups)-per-swap hot path rather
than from-scratch parity recomputation, which is what makes the larger
candidate/ranker regimes tractable at CI time.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.candidates import CandidateTable
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.datagen.fair_modal import MallowsFairnessDataset, generate_mallows_dataset
from repro.exceptions import ExperimentError
from repro.fair.base import FairRankAggregator
from repro.fairness.parity import parity_scores
from repro.fairness.pd_loss import pd_loss, price_of_fairness
from repro.fairness.thresholds import FairnessThresholds

__all__ = [
    "SCALES",
    "require_scale",
    "MethodEvaluation",
    "evaluate_method",
    "theta_sweep_datasets",
    "DEFAULT_THETAS",
]

#: Supported scale presets.
SCALES = ("ci", "paper")

#: θ values swept by the synthetic experiments (Figures 3–5).
DEFAULT_THETAS = (0.2, 0.4, 0.6, 0.8)


def require_scale(scale: str) -> str:
    """Validate a scale preset name and return it normalised."""
    key = scale.strip().lower()
    if key not in SCALES:
        raise ExperimentError(
            f"unknown scale {scale!r}; expected one of {', '.join(SCALES)}"
        )
    return key


@dataclass(frozen=True)
class MethodEvaluation:
    """Measurements of one fair method on one dataset."""

    method: str
    ranking: Ranking
    parity: dict[str, float]
    pd_loss: float
    price_of_fairness: float | None
    runtime_seconds: float


def evaluate_method(
    method: FairRankAggregator,
    rankings: RankingSet,
    table: CandidateTable,
    delta: FairnessThresholds | float | Mapping[str, float],
    reference_unaware: Ranking | None = None,
) -> MethodEvaluation:
    """Run ``method`` and measure fairness, PD loss, PoF, and wall-clock runtime.

    Parameters
    ----------
    reference_unaware:
        Fairness-unaware consensus used for the Price of Fairness.  When
        omitted, the method's own seed consensus (if it reports one) is used;
        methods without a seed report ``None``.
    """
    start = time.perf_counter()
    result = method.aggregate_with_diagnostics(rankings, table, delta)
    elapsed = time.perf_counter() - start
    baseline = reference_unaware if reference_unaware is not None else result.unaware_ranking
    pof = (
        price_of_fairness(rankings, result.ranking, baseline)
        if baseline is not None
        else None
    )
    return MethodEvaluation(
        method=method.name,
        ranking=result.ranking,
        parity=parity_scores(result.ranking, table),
        pd_loss=pd_loss(rankings, result.ranking),
        price_of_fairness=pof,
        runtime_seconds=elapsed,
    )


def theta_sweep_datasets(
    table: CandidateTable,
    profile: str | Mapping[str, float],
    thetas: Sequence[float],
    n_rankings: int,
    seed: int,
    name: str | None = None,
) -> list[MallowsFairnessDataset]:
    """One Mallows dataset per θ value, all sharing the same modal ranking.

    The modal ranking is built once (from ``seed``) so the sweep isolates the
    effect of consensus strength; each θ gets an independent sampling stream
    derived from the same seed sequence.
    """
    datasets: list[MallowsFairnessDataset] = []
    seed_sequence = np.random.SeedSequence(seed)
    children = seed_sequence.spawn(len(thetas) + 1)
    modal_rng = np.random.default_rng(children[0])
    base = generate_mallows_dataset(
        table, profile, theta=float(thetas[0]), n_rankings=n_rankings,
        rng=modal_rng, name=name,
    )
    datasets.append(base)
    for index, theta in enumerate(thetas[1:], start=1):
        rng = np.random.default_rng(children[index])
        from repro.datagen.mallows import sample_mallows  # local import to avoid cycle

        rankings = sample_mallows(base.modal, float(theta), n_rankings, rng=rng)
        datasets.append(
            MallowsFairnessDataset(
                name=base.name,
                table=table,
                modal=base.modal,
                theta=float(theta),
                rankings=rankings,
                modal_parity=base.modal_parity,
            )
        )
    return datasets


def record_from_evaluation(
    evaluation: MethodEvaluation,
    table: CandidateTable,
    **extra: object,
) -> dict[str, object]:
    """Flatten a :class:`MethodEvaluation` into an experiment record."""
    record: dict[str, object] = dict(extra)
    record["method"] = evaluation.method
    record["pd_loss"] = evaluation.pd_loss
    for entity, score in evaluation.parity.items():
        label = "IRP" if entity == table.INTERSECTION else f"ARP {entity}"
        record[label] = score
    if evaluation.price_of_fairness is not None:
        record["PoF"] = evaluation.price_of_fairness
    record["runtime_s"] = evaluation.runtime_seconds
    return record


def methods_by_label(labels: Iterable[str]) -> dict[str, FairRankAggregator]:
    """Instantiate fair methods for the given paper labels (A1–B4) or names."""
    from repro.fair.registry import get_fair_method  # local import to avoid cycle

    return {label: get_fair_method(label) for label in labels}
