"""Figure 3 — comparing group-fairness constraint formulations.

Section IV-A compares four formulations on the Low/Medium/High-Fair Mallows
datasets for a sweep over the consensus strength θ, with Δ = 0.1:

* plain Kemeny (fairness-unaware),
* Fair-Kemeny constraining only the protected attributes (Equation 12 removed),
* Fair-Kemeny constraining only the intersection (Equation 11 removed),
* full MANI-Rank Fair-Kemeny.

The paper's finding: only the full MANI-Rank formulation brings *both* the
attribute ARPs and the IRP below the threshold — an entity must be constrained
explicitly to be protected.  The experiment reports ARP Gender, ARP Race, and
IRP of each formulation's consensus at every (dataset, θ) combination.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.candidates import CandidateTable
from repro.datagen.attributes import paper_mallows_table, small_mallows_table
from repro.experiments.harness import DEFAULT_THETAS, require_scale, theta_sweep_datasets
from repro.experiments.reporting import ExperimentResult
from repro.fair.fair_kemeny import FairKemenyAggregator
from repro.fair.baselines import UnawareKemenyBaseline
from repro.fairness.parity import parity_scores

__all__ = ["run"]

_SCALE_PARAMETERS = {
    "paper": {"table": lambda: paper_mallows_table(group_size=6), "n_rankings": 150, "profiles": ("low", "medium", "high")},
    "ci": {"table": lambda: small_mallows_table(group_size=2), "n_rankings": 25, "profiles": ("low",)},
}


def _approaches() -> list[tuple[str, object]]:
    return [
        ("Kemeny (unaware)", UnawareKemenyBaseline()),
        ("Attributes only", FairKemenyAggregator(constraint_mode="attributes-only")),
        ("Intersection only", FairKemenyAggregator(constraint_mode="intersection-only")),
        ("MANI-Rank", FairKemenyAggregator(constraint_mode="mani-rank")),
    ]


def run(
    scale: str = "ci",
    delta: float = 0.1,
    thetas: Sequence[float] | None = None,
    seed: int = 2022,
) -> ExperimentResult:
    """Reproduce Figure 3: parity scores per constraint formulation over the θ sweep."""
    scale = require_scale(scale)
    parameters = _SCALE_PARAMETERS[scale]
    thetas = tuple(thetas) if thetas is not None else DEFAULT_THETAS
    table = parameters["table"]()
    result = ExperimentResult(
        experiment="figure3",
        title="Figure 3: group-fairness constraint formulations (ARP/IRP vs theta)",
        parameters={
            "scale": scale,
            "n_candidates": table.n_candidates,
            "n_rankings": parameters["n_rankings"],
            "delta": delta,
            "thetas": list(thetas),
            "seed": seed,
        },
    )
    for profile in parameters["profiles"]:
        datasets = theta_sweep_datasets(
            table, profile, thetas, parameters["n_rankings"], seed=seed
        )
        for dataset in datasets:
            for approach_name, method in _approaches():
                ranking = method.aggregate(dataset.rankings, table, delta)
                parity = parity_scores(ranking, table)
                result.add(
                    dataset=f"{profile.capitalize()}-Fair",
                    theta=dataset.theta,
                    approach=approach_name,
                    **{
                        "ARP Gender": parity["Gender"],
                        "ARP Race": parity["Race"],
                        "IRP": parity[CandidateTable.INTERSECTION],
                    },
                )
    result.notes.append(
        f"delta = {delta}: the MANI-Rank rows are the only ones where every "
        "column is at or below the threshold."
    )
    if scale == "ci":
        result.notes.append(
            "ci scale uses a 12-candidate Gender(2) x Race(3) universe so the "
            "exact-ILP variants run quickly with HiGHS; use scale='paper' for "
            "the 90-candidate setup (slow without CPLEX)."
        )
    return result
