"""Figure 7 — scalability in the number of candidates.

Section IV-D measures the runtime of every method as the candidate count
grows (100–500 in the paper) for two fairness thresholds: a tight Δ = 0.1 and
a looser Δ = 0.33, on a Mallows dataset with binary Race / binary Gender
(modal ranking ARP Race = 0.31, ARP Gender = 0.44, IRP = 0.45), |R| = 100,
θ = 0.6.

Expected shape: the ILP-based methods (Kemeny, Kemeny-Weighted, Fair-Kemeny)
are the slowest and bound the polynomial methods from above; Fair-Borda is the
fastest fair method; a looser Δ reduces every fair method's runtime because
Make-MR-Fair needs fewer swaps.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.harness import (
    ScenarioGrid,
    evaluate_labelled_cell,
    require_scale,
)
from repro.experiments.reporting import ExperimentResult

__all__ = ["run", "FIGURE7_MODAL_TARGETS"]

#: Modal-ranking fairness targets of the Figure 7 dataset.
FIGURE7_MODAL_TARGETS = {"Race": 0.31, "Gender": 0.44}

_SCALE_PARAMETERS = {
    "paper": {
        "candidate_counts": (100, 200, 300, 400, 500),
        "n_rankings": 100,
        "deltas": (0.1, 0.33),
        "labels": ("A1", "A2", "A3", "A4", "B1", "B2", "B3", "B4"),
    },
    "ci": {
        "candidate_counts": (30, 60, 100),
        "n_rankings": 30,
        "deltas": (0.1, 0.33),
        "labels": ("A2", "A3", "A4", "B3", "B4"),
    },
}


def run(
    scale: str = "ci",
    theta: float = 0.6,
    seed: int = 2022,
    candidate_counts: Sequence[int] | None = None,
    deltas: Sequence[float] | None = None,
    method_labels: Sequence[str] | None = None,
    n_workers: int | None = 1,
    in_group_threads: int | None = 1,
) -> ExperimentResult:
    """Reproduce Figure 7: runtime of every method vs candidate count, per Δ.

    ``n_workers > 1`` parallelises the sweep across its per-``n`` workload
    groups (bit-identical records apart from the timing fields; see
    :meth:`ScenarioGrid.run`).
    """
    scale = require_scale(scale)
    parameters = _SCALE_PARAMETERS[scale]
    counts = (
        tuple(candidate_counts)
        if candidate_counts is not None
        else parameters["candidate_counts"]
    )
    deltas = tuple(deltas) if deltas is not None else parameters["deltas"]
    labels = tuple(method_labels) if method_labels is not None else parameters["labels"]
    result = ExperimentResult(
        experiment="figure7",
        title="Figure 7: scalability with an increasing number of candidates",
        parameters={
            "scale": scale,
            "candidate_counts": list(counts),
            "n_rankings": parameters["n_rankings"],
            "theta": theta,
            "deltas": list(deltas),
            "seed": seed,
            "methods": list(labels),
        },
    )
    grid = ScenarioGrid.product(
        candidate_counts=counts,
        ranking_counts=(parameters["n_rankings"],),
        thetas=(theta,),
        modal_targets=FIGURE7_MODAL_TARGETS,
        param_grid={"delta": deltas, "label": labels},
        seed=seed,
    )

    result.extend(
        grid.run(
            evaluate_labelled_cell,
            n_workers=n_workers,
            in_group_threads=in_group_threads,
        )
    )
    if scale == "ci":
        result.notes.append(
            "ci scale restricts the sweep to polynomial-time methods and "
            "smaller candidate counts; use scale='paper' to include the "
            "ILP-based methods."
        )
    return result
