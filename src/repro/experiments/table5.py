"""Table V — CSRankings 20-year consensus case study (paper appendix).

The appendix aggregates 21 yearly rankings (2000–2020) of 65 US computer
science departments described by Location (Northeast / Midwest / West /
South) and Type (Private / Public).  The yearly rankings favour Northeast and
Private departments; Kemeny amplifies the bias (Location ARP ≈ 0.48,
IRP ≈ 0.57) and the fair methods at Δ = 0.05 remove it.

This experiment reports the per-group FPR, per-attribute ARP and IRP of every
yearly base ranking, the Kemeny consensus, and each fair method, in the exact
layout of Table V.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.datagen.csrankings import generate_csrankings_dataset
from repro.experiments.harness import require_scale
from repro.experiments.reporting import ExperimentResult
from repro.fair.registry import get_fair_method
from repro.fairness.report import fairness_row

__all__ = ["run"]

_SCALE_PARAMETERS = {
    "paper": {
        "n_departments": 65,
        "first_year": 2000,
        "last_year": 2020,
        "methods": ("B1", "A1", "A2", "A3", "A4"),
    },
    "ci": {
        "n_departments": 40,
        "first_year": 2010,
        "last_year": 2020,
        "methods": ("B1", "A2", "A3", "A4"),
    },
}


def run(
    scale: str = "ci",
    delta: float = 0.05,
    seed: int = 41,
    methods: Sequence[str] | None = None,
) -> ExperimentResult:
    """Reproduce Table V: group FPR / ARP / IRP for yearly rankings, Kemeny, and fair methods."""
    scale = require_scale(scale)
    parameters = _SCALE_PARAMETERS[scale]
    labels = tuple(methods) if methods is not None else parameters["methods"]
    dataset = generate_csrankings_dataset(
        n_departments=parameters["n_departments"],
        first_year=parameters["first_year"],
        last_year=parameters["last_year"],
        seed=seed,
    )
    result = ExperimentResult(
        experiment="table5",
        title="Table V: CSRankings 20-year consensus case study",
        parameters={
            "scale": scale,
            "n_departments": parameters["n_departments"],
            "years": f"{parameters['first_year']}-{parameters['last_year']}",
            "delta": delta,
            "seed": seed,
            "methods": list(labels),
        },
    )
    for label, ranking in zip(dataset.rankings.labels, dataset.rankings):
        result.add(ranking=label, **fairness_row(ranking, dataset.table))
    for label in labels:
        method = get_fair_method(label)
        consensus = method.aggregate(dataset.rankings, dataset.table, delta)
        result.add(ranking=method.name, **fairness_row(consensus, dataset.table))
    result.notes.append(
        "The department data is a synthetic re-creation of the CSRankings "
        "scrape (see DESIGN.md) with a persistent Northeast / Private "
        "advantage; the bias profile of the base rankings matches Table V."
    )
    if scale == "ci":
        result.notes.append(
            "ci scale uses 40 departments over 2010-2020 and skips "
            "Fair-Kemeny; scale='paper' runs the full 65-department study."
        )
    return result
