"""Table I — Mallows dataset fairness profiles (Low / Medium / High-Fair).

The paper's Table I describes the three synthetic datasets used by Figures
3–5: ``|R| = 150`` base rankings over 90 candidates (15 intersectional groups
of 6, ``dom(Race) = 5``, ``dom(Gender) = 3``) whose modal rankings have the
fairness profiles::

    Low-Fair     ARP_Gender = 0.70   ARP_Race = 0.70   IRP = 1.00
    Medium-Fair  ARP_Gender = 0.50   ARP_Race = 0.50   IRP = 0.75
    High-Fair    ARP_Gender = 0.30   ARP_Race = 0.30   IRP = 0.54

This experiment regenerates the three modal rankings and reports the paper's
target values next to the achieved values of the synthetic generator.
"""

from __future__ import annotations

from repro.core.candidates import CandidateTable
from repro.datagen.attributes import paper_mallows_table
from repro.datagen.fair_modal import FAIRNESS_PROFILES, generate_mallows_dataset
from repro.experiments.harness import require_scale
from repro.experiments.reporting import ExperimentResult

__all__ = ["run"]

#: Paper values of Table I, keyed by profile name.
PAPER_TARGETS = {
    "low": {"ARP Gender": 0.70, "ARP Race": 0.70, "IRP": 1.00},
    "medium": {"ARP Gender": 0.50, "ARP Race": 0.50, "IRP": 0.75},
    "high": {"ARP Gender": 0.30, "ARP Race": 0.30, "IRP": 0.54},
}

_SCALE_PARAMETERS = {
    # group_size 6 -> 90 candidates as in the paper; 150 rankings.
    "paper": {"group_size": 6, "n_rankings": 150},
    # group_size 2 -> 30 candidates; enough to exercise every code path fast.
    "ci": {"group_size": 2, "n_rankings": 30},
}


def run(scale: str = "ci", theta: float = 0.6, seed: int = 2022) -> ExperimentResult:
    """Regenerate the Table I datasets and report target vs achieved fairness."""
    scale = require_scale(scale)
    parameters = _SCALE_PARAMETERS[scale]
    table = paper_mallows_table(group_size=parameters["group_size"])
    result = ExperimentResult(
        experiment="table1",
        title="Table I: Mallows dataset fairness profiles (modal ranking ARP/IRP)",
        parameters={
            "scale": scale,
            "n_candidates": table.n_candidates,
            "n_rankings": parameters["n_rankings"],
            "theta": theta,
            "seed": seed,
        },
    )
    for profile in FAIRNESS_PROFILES:
        dataset = generate_mallows_dataset(
            table,
            profile,
            theta=theta,
            n_rankings=parameters["n_rankings"],
            rng=seed,
        )
        achieved = dataset.modal_parity
        targets = PAPER_TARGETS[profile]
        result.add(
            dataset=f"{profile.capitalize()}-Fair",
            **{
                "ARP Gender (paper)": targets["ARP Gender"],
                "ARP Gender": achieved["Gender"],
                "ARP Race (paper)": targets["ARP Race"],
                "ARP Race": achieved["Race"],
                "IRP (paper)": targets["IRP"],
                "IRP": achieved[CandidateTable.INTERSECTION],
            },
        )
    result.notes.append(
        "Achieved values come from the synthetic calibrated modal-ranking "
        "generator; the IRP is not directly controllable and emerges from the "
        "per-attribute biases (see DESIGN.md)."
    )
    return result
