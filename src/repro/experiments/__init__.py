"""Experiment harness: one module per table / figure of the MANI-Rank paper.

Each module exposes ``run(scale="ci" | "paper", ...) -> ExperimentResult``.
The registry below maps experiment identifiers (as used by the CLI and the
benchmark suite) to those ``run`` functions.
"""

from collections.abc import Callable

from repro.exceptions import ExperimentError
from repro.experiments import (
    ablation_search,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.harness import (
    DEFAULT_THETAS,
    SCALES,
    evaluate_method,
    theta_sweep_datasets,
)
from repro.experiments.reporting import ExperimentResult, render_table

__all__ = [
    "ExperimentResult",
    "render_table",
    "evaluate_method",
    "theta_sweep_datasets",
    "DEFAULT_THETAS",
    "SCALES",
    "EXPERIMENTS",
    "available_experiments",
    "run_experiment",
]

#: Registry of experiment identifiers -> (run function, one-line description).
EXPERIMENTS: dict[str, tuple[Callable[..., ExperimentResult], str]] = {
    "table1": (table1.run, "Mallows dataset fairness profiles (Table I)"),
    "figure3": (figure3.run, "Group-fairness constraint formulations (Figure 3)"),
    "figure4": (figure4.run, "MFCR methods vs baselines on Low-Fair (Figure 4)"),
    "figure5": (figure5.run, "Price of Fairness analysis (Figure 5)"),
    "figure6": (figure6.run, "Scalability in number of base rankings (Figure 6)"),
    "table2": (table2.run, "Fair-Borda ranker scalability (Table II)"),
    "figure7": (figure7.run, "Scalability in number of candidates (Figure 7)"),
    "table3": (table3.run, "Fair-Borda candidate scalability (Table III)"),
    "table4": (table4.run, "Exam merit-scholarship case study (Table IV)"),
    "table5": (table5.run, "CSRankings case study (Table V, appendix)"),
    "ablation-search": (
        ablation_search.run,
        "Local-search neighbourhood strategy ablation (extension)",
    ),
}


def available_experiments() -> dict[str, str]:
    """Mapping of experiment id -> description."""
    return {name: description for name, (_, description) in EXPERIMENTS.items()}


def run_experiment(name: str, **kwargs: object) -> ExperimentResult:
    """Run one registered experiment by id (e.g. ``run_experiment("figure4")``)."""
    key = name.strip().lower()
    if key not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {name!r}; available: {', '.join(EXPERIMENTS)}"
        )
    runner, _ = EXPERIMENTS[key]
    return runner(**kwargs)  # type: ignore[arg-type]
