"""Table IV — student merit-scholarship case study.

Section IV-F builds three base rankings of 200 students (one per exam subject:
math, reading, writing) over a candidate table with Gender (2 values), Race
(5 values) and Lunch (2 values; whether the student receives subsidised
lunch).  The paper reports, for each base ranking, the Kemeny consensus, and
each fair method at Δ = 0.05: the FPR of every group, the ARP of every
attribute, and the IRP.

Reproduced shape: the base rankings and Kemeny consensus are far from parity
(Lunch ARP ≈ 0.2–0.45, large NatHawaii disadvantage, IRP ≈ 0.5), while every
fair method brings all ARP and IRP at or below 0.05.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.datagen.exams import generate_exam_dataset
from repro.experiments.harness import require_scale
from repro.experiments.reporting import ExperimentResult
from repro.fair.registry import get_fair_method
from repro.fairness.report import fairness_row

__all__ = ["run"]

_SCALE_PARAMETERS = {
    "paper": {
        "n_students": 200,
        "methods": ("B1", "A1", "A2", "A3", "A4"),
    },
    "ci": {
        "n_students": 80,
        "methods": ("B1", "A2", "A3", "A4"),
    },
}


def run(
    scale: str = "ci",
    delta: float = 0.05,
    seed: int = 2022,
    methods: Sequence[str] | None = None,
) -> ExperimentResult:
    """Reproduce Table IV: group FPR / ARP / IRP for base rankings, Kemeny, and fair methods."""
    scale = require_scale(scale)
    parameters = _SCALE_PARAMETERS[scale]
    labels = tuple(methods) if methods is not None else parameters["methods"]
    dataset = generate_exam_dataset(parameters["n_students"], seed=seed)
    result = ExperimentResult(
        experiment="table4",
        title="Table IV: exam case study (merit scholarships)",
        parameters={
            "scale": scale,
            "n_students": parameters["n_students"],
            "delta": delta,
            "seed": seed,
            "methods": list(labels),
        },
    )
    # Base rankings (one per exam subject).
    for label, ranking in zip(dataset.rankings.labels, dataset.rankings):
        result.add(ranking=label, **fairness_row(ranking, dataset.table))
    # Consensus methods.
    for label in labels:
        method = get_fair_method(label)
        consensus = method.aggregate(dataset.rankings, dataset.table, delta)
        result.add(ranking=method.name, **fairness_row(consensus, dataset.table))
    result.notes.append(
        "The exam dataset is a synthetic re-creation of the public generator "
        "used by the paper (see DESIGN.md); the group-bias structure (Lunch "
        "dominant, NatHawaii disadvantaged, subject-dependent gender gaps) "
        "matches Table IV."
    )
    if scale == "ci":
        result.notes.append(
            "ci scale uses 80 students and skips Fair-Kemeny; scale='paper' "
            "runs the full 200-student study with every method."
        )
    return result
