"""Abstract interface for fair (MFCR) consensus ranking methods.

A fair aggregator consumes the base rankings *and* the candidate table with
its protected attributes, plus the desired fairness threshold ``Δ``, and
produces a consensus ranking satisfying the MANI-Rank criteria (Definition 7)
while keeping PD loss low (Definition 10, the MFCR problem).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.core.candidates import CandidateTable
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import AggregationError
from repro.fairness.parity import mani_rank_violations
from repro.fairness.thresholds import FairnessThresholds

__all__ = ["FairRankAggregator", "FairAggregationResult"]


@dataclass(frozen=True)
class FairAggregationResult:
    """A fair consensus ranking together with method metadata.

    Attributes
    ----------
    ranking:
        The fair consensus ranking ``πC*``.
    method:
        Name of the method that produced it.
    unaware_ranking:
        The fairness-unaware consensus the method started from (when the
        method has such a seed); used to compute the Price of Fairness.
    diagnostics:
        Method statistics such as number of Make-MR-Fair swaps or ILP rounds.
    """

    ranking: Ranking
    method: str
    unaware_ranking: Ranking | None = None
    diagnostics: dict[str, object] = field(default_factory=dict)


class FairRankAggregator(ABC):
    """Base class for MFCR solutions and fairness-aware baselines."""

    #: Human-readable method name; subclasses override.
    name: str = "fair-aggregator"

    #: Whether the method guarantees the MANI-Rank criteria for any delta.
    guarantees_mani_rank: bool = True

    def aggregate(
        self,
        rankings: RankingSet,
        table: CandidateTable,
        delta: FairnessThresholds | float | Mapping[str, float],
    ) -> Ranking:
        """Return the fair consensus ranking."""
        return self.aggregate_with_diagnostics(rankings, table, delta).ranking

    def aggregate_with_diagnostics(
        self,
        rankings: RankingSet,
        table: CandidateTable,
        delta: FairnessThresholds | float | Mapping[str, float],
    ) -> FairAggregationResult:
        """Return the fair consensus ranking plus diagnostics."""
        if not isinstance(rankings, RankingSet):
            raise AggregationError(
                f"{self.name} expects a RankingSet, got {type(rankings).__name__}"
            )
        if not isinstance(table, CandidateTable):
            raise AggregationError(
                f"{self.name} expects a CandidateTable, got {type(table).__name__}"
            )
        if rankings.n_candidates != table.n_candidates:
            raise AggregationError(
                "base rankings and candidate table cover different universes: "
                f"{rankings.n_candidates} vs {table.n_candidates} candidates"
            )
        thresholds = FairnessThresholds.coerce(delta)
        result = self._aggregate(rankings, table, thresholds)
        if self.guarantees_mani_rank:
            violations = mani_rank_violations(result.ranking, table, thresholds)
            if violations:
                raise AggregationError(
                    f"{self.name} produced a ranking violating MANI-Rank for "
                    f"entities {sorted(violations)} at delta="
                    f"{thresholds.as_mapping(table)}"
                )
        return result

    @abstractmethod
    def _aggregate(
        self,
        rankings: RankingSet,
        table: CandidateTable,
        delta: FairnessThresholds,
    ) -> FairAggregationResult:
        """Produce the fair consensus ranking (implemented by subclasses)."""

    def __call__(
        self,
        rankings: RankingSet,
        table: CandidateTable,
        delta: FairnessThresholds | float | Mapping[str, float],
    ) -> Ranking:
        return self.aggregate(rankings, table, delta)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
