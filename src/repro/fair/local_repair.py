"""Fairness-preserving local Kemeny repair (post-correction PD-loss recovery).

Make-MR-Fair moves candidates to satisfy the MANI-Rank criteria, but its swap
rule optimises parity only — the corrected consensus can leave *free* Kemeny
improvements on the table: adjacent transpositions that reduce the pairwise
disagreement with the base rankings while keeping every ARP/IRP score within
its threshold.  :func:`fair_local_kemenization` harvests exactly those: a
local-Kemenization bubble pass where a swap is accepted only when

1. it strictly reduces the Kemeny objective (the classic Dwork et al. rule),
   *and*
2. the swapped ranking still satisfies every MANI-Rank threshold.

The result is MANI-Rank feasible by construction, never worse in PD loss than
the corrected input, and locally optimal among fairness-feasible adjacent
transpositions.

**Performance.**  The main implementation is a client of both incremental
engines: the Kemeny condition is an O(1) read of
:class:`repro.aggregation.incremental.KemenyDeltaEngine`'s cached margin
matrix, and the feasibility condition is an O(sum of group counts) query of
:class:`repro.fairness.incremental.FairnessState` — no ranking is
materialised and no parity score recomputed from scratch.  The original
from-scratch evaluation is retained as
:func:`fair_local_kemenization_reference`; the property tests assert both
produce the identical swap sequence and final ranking.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.aggregation.incremental import KemenyDeltaEngine
from repro.core.candidates import CandidateTable
from repro.core.distances import kemeny_objective
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import AggregationError
from repro.fairness.incremental import FairnessState
from repro.fairness.parity import parity_scores
from repro.fairness.thresholds import FairnessThresholds

__all__ = [
    "FairLocalRepairResult",
    "fair_local_kemenization",
    "fair_local_kemenization_reference",
]

#: Feasibility tolerance, matching ``mani_rank_satisfied`` / Make-MR-Fair.
_FEASIBILITY_TOLERANCE = 1e-9


@dataclass(frozen=True)
class FairLocalRepairResult:
    """Outcome of a fairness-preserving local Kemeny repair."""

    ranking: Ranking
    n_swaps: int
    n_passes: int
    objective: float


def _check_universe(ranking: Ranking, table: CandidateTable) -> None:
    if ranking.n_candidates != table.n_candidates:
        raise AggregationError(
            "ranking and candidate table cover different universes: "
            f"{ranking.n_candidates} vs {table.n_candidates} candidates"
        )


def fair_local_kemenization(
    rankings: RankingSet,
    ranking: Ranking,
    table: CandidateTable,
    delta: FairnessThresholds | float | Mapping[str, float],
    max_passes: int = 50,
) -> FairLocalRepairResult:
    """Locally improve the Kemeny objective without leaving the fair region.

    Bubble passes over the ranking accept an adjacent swap only when it both
    strictly reduces the Kemeny objective and keeps every MANI-Rank parity
    score within its threshold (same tolerance as ``mani_rank_satisfied``).
    Identical swap decisions to :func:`fair_local_kemenization_reference`.

    The input is typically a Make-MR-Fair correction; an infeasible input is
    allowed (the repair simply has no feasible swaps to accept unless a swap
    lands inside the fair region).
    """
    _check_universe(ranking, table)
    thresholds = FairnessThresholds.coerce(delta)
    engine = KemenyDeltaEngine(rankings, ranking)
    fairness = FairnessState(ranking, table)
    order = engine.order_list
    n = engine.n_candidates
    n_swaps = 0
    n_passes = 0
    for _ in range(max_passes):
        improved = False
        for position in range(n - 1):
            upper = order[position]
            lower = order[position + 1]
            if engine.margin(upper, lower) <= 0.0:
                continue
            after = fairness.parity_after_swap(upper, lower)
            if any(
                score > thresholds.threshold_for(entity) + _FEASIBILITY_TOLERANCE
                for entity, score in after.items()
            ):
                continue
            engine.apply_adjacent_swap(position)
            fairness.apply_swap(upper, lower)
            improved = True
            n_swaps += 1
        if not improved:
            break
        n_passes += 1
    return FairLocalRepairResult(
        ranking=engine.to_ranking(),
        n_swaps=n_swaps,
        n_passes=n_passes,
        objective=engine.objective,
    )


def fair_local_kemenization_reference(
    rankings: RankingSet,
    ranking: Ranking,
    table: CandidateTable,
    delta: FairnessThresholds | float | Mapping[str, float],
    max_passes: int = 50,
) -> FairLocalRepairResult:
    """From-scratch fairness-preserving repair, retained as ground truth.

    Every candidate swap materialises the swapped :class:`Ranking`, rescores
    it with :func:`repro.fairness.parity.parity_scores`, and the final
    objective is recomputed with :func:`kemeny_objective` — one evaluated
    swap costs O(n * sum of group counts) instead of the engines' O(1) +
    O(sum of group counts).  :func:`fair_local_kemenization` must produce the
    identical swap sequence and final ranking (enforced by the test suite).
    """
    _check_universe(ranking, table)
    thresholds = FairnessThresholds.coerce(delta)
    precedence = rankings.precedence_matrix()
    current = ranking
    n = ranking.n_candidates
    n_swaps = 0
    n_passes = 0
    for _ in range(max_passes):
        improved = False
        for position in range(n - 1):
            upper = current.candidate_at(position)
            lower = current.candidate_at(position + 1)
            if precedence[lower, upper] >= precedence[upper, lower]:
                continue
            swapped = current.swap(upper, lower)
            after = parity_scores(swapped, table)
            if any(
                score > thresholds.threshold_for(entity) + _FEASIBILITY_TOLERANCE
                for entity, score in after.items()
            ):
                continue
            current = swapped
            improved = True
            n_swaps += 1
        if not improved:
            break
        n_passes += 1
    return FairLocalRepairResult(
        ranking=current,
        n_swaps=n_swaps,
        n_passes=n_passes,
        objective=kemeny_objective(current, rankings),
    )
