"""Fairness-preserving local Kemeny repair (post-correction PD-loss recovery).

Make-MR-Fair moves candidates to satisfy the MANI-Rank criteria, but its swap
rule optimises parity only — the corrected consensus can leave *free* Kemeny
improvements on the table: adjacent transpositions that reduce the pairwise
disagreement with the base rankings while keeping every ARP/IRP score within
its threshold.  :func:`fair_local_kemenization` harvests exactly those: a
local-Kemenization bubble pass where a swap is accepted only when

1. it strictly reduces the Kemeny objective (the classic Dwork et al. rule),
   *and*
2. the swapped ranking still satisfies every MANI-Rank threshold.

The result is MANI-Rank feasible by construction, never worse in PD loss than
the corrected input, and locally optimal among fairness-feasible adjacent
transpositions.

**Performance.**  The main implementation is a client of both incremental
engines: the Kemeny condition is an O(1) read of
:class:`repro.aggregation.incremental.KemenyDeltaEngine`'s cached margin
matrix, and the feasibility condition is an O(sum of group counts) query of
:class:`repro.fairness.incremental.FairnessState` — no ranking is
materialised and no parity score recomputed from scratch.  The original
from-scratch evaluation is retained as
:func:`fair_local_kemenization_reference`; the property tests assert both
produce the identical swap sequence and final ranking.

**Neighbourhoods.**  The repair mirrors the strategy family of
:mod:`repro.aggregation.search`: :func:`fair_insertion_kemenization` runs the
fairness-filtered variable-neighbourhood descent — fair adjacent passes to
convergence, then best-improvement block moves whose targets are filtered by
:meth:`FairnessState.parity_after_move
<repro.fairness.incremental.FairnessState.parity_after_move>` feasibility,
looping — so its result is never worse in Kemeny objective than the plain
adjacent repair on the same input; :func:`fair_local_search` dispatches a
strategy name (``adjacent-swap`` / ``insertion`` / ``combined``) the same way
the unconstrained search does.  ``fair-borda-insertion`` in the method
registry is Fair-Borda post-processed with the insertion repair.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.aggregation.incremental import KemenyDeltaEngine
from repro.aggregation.search import get_strategy
from repro.core.candidates import CandidateTable
from repro.core.distances import kemeny_objective
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import AggregationError
from repro.fairness.incremental import FairnessState
from repro.fairness.parity import parity_scores
from repro.fairness.thresholds import FairnessThresholds

__all__ = [
    "FairLocalRepairResult",
    "fair_local_kemenization",
    "fair_local_kemenization_reference",
    "fair_insertion_kemenization",
    "fair_insertion_kemenization_reference",
    "fair_local_search",
]

#: Feasibility tolerance, matching ``mani_rank_satisfied`` / Make-MR-Fair.
_FEASIBILITY_TOLERANCE = 1e-9


@dataclass(frozen=True)
class FairLocalRepairResult:
    """Outcome of a fairness-preserving local Kemeny repair.

    ``n_moves`` counts the accepted block (insertion) moves for the
    neighbourhoods that use them; the adjacent-only repair reports ``None``.
    """

    ranking: Ranking
    n_swaps: int
    n_passes: int
    objective: float
    n_moves: int | None = None


def _check_universe(ranking: Ranking, table: CandidateTable) -> None:
    if ranking.n_candidates != table.n_candidates:
        raise AggregationError(
            "ranking and candidate table cover different universes: "
            f"{ranking.n_candidates} vs {table.n_candidates} candidates"
        )


def _feasible(
    after: Mapping[str, float], thresholds: FairnessThresholds
) -> bool:
    """Every hypothetical parity score within its threshold (plus tolerance)."""
    return all(
        score <= thresholds.threshold_for(entity) + _FEASIBILITY_TOLERANCE
        for entity, score in after.items()
    )


def _fair_adjacent_pass(
    engine: KemenyDeltaEngine,
    fairness: FairnessState,
    thresholds: FairnessThresholds,
) -> int:
    """One fairness-filtered bubble pass; returns the number of accepted swaps."""
    order = engine.order_list
    accepted = 0
    for position in range(engine.n_candidates - 1):
        upper = order[position]
        lower = order[position + 1]
        if engine.margin(upper, lower) <= 0.0:
            continue
        if not _feasible(fairness.parity_after_swap(upper, lower), thresholds):
            continue
        engine.apply_adjacent_swap(position)
        fairness.apply_swap(upper, lower)
        accepted += 1
    return accepted


def _fair_insertion_pass(
    engine: KemenyDeltaEngine,
    fairness: FairnessState,
    thresholds: FairnessThresholds,
) -> int:
    """One fairness-filtered best-improvement insertion pass.

    For each candidate (id order) the engine scores every target position in
    one vectorised gather; the improving targets are tried best-first (ties
    towards the smallest position) and the first MANI-Rank-feasible one is
    applied.  Returns the number of applied block moves.
    """
    moved = 0
    for candidate in range(engine.n_candidates):
        deltas = engine.move_deltas(candidate)
        improving = np.flatnonzero(deltas < 0.0)
        if improving.size == 0:
            continue
        ranked = improving[np.lexsort((improving, deltas[improving]))]
        for target in ranked:
            target = int(target)
            if not _feasible(fairness.parity_after_move(candidate, target), thresholds):
                continue
            engine.apply_move(candidate, target)
            fairness.apply_move(candidate, target)
            moved += 1
            break
    return moved


def fair_local_kemenization(
    rankings: RankingSet,
    ranking: Ranking,
    table: CandidateTable,
    delta: FairnessThresholds | float | Mapping[str, float],
    max_passes: int = 50,
) -> FairLocalRepairResult:
    """Locally improve the Kemeny objective without leaving the fair region.

    Bubble passes over the ranking accept an adjacent swap only when it both
    strictly reduces the Kemeny objective and keeps every MANI-Rank parity
    score within its threshold (same tolerance as ``mani_rank_satisfied``).
    Identical swap decisions to :func:`fair_local_kemenization_reference`.

    The input is typically a Make-MR-Fair correction; an infeasible input is
    allowed (the repair simply has no feasible swaps to accept unless a swap
    lands inside the fair region).
    """
    _check_universe(ranking, table)
    thresholds = FairnessThresholds.coerce(delta)
    engine = KemenyDeltaEngine(rankings, ranking)
    fairness = FairnessState(ranking, table)
    n_swaps = 0
    n_passes = 0
    for _ in range(max_passes):
        accepted = _fair_adjacent_pass(engine, fairness, thresholds)
        if accepted == 0:
            break
        n_swaps += accepted
        n_passes += 1
    return FairLocalRepairResult(
        ranking=engine.to_ranking(),
        n_swaps=n_swaps,
        n_passes=n_passes,
        objective=engine.objective,
    )


def fair_insertion_kemenization(
    rankings: RankingSet,
    ranking: Ranking,
    table: CandidateTable,
    delta: FairnessThresholds | float | Mapping[str, float],
    max_passes: int = 50,
) -> FairLocalRepairResult:
    """Fairness-constrained insertion (block-move) local Kemeny repair.

    The fairness-filtered mirror of
    :class:`repro.aggregation.search.InsertionStrategy`'s variable-
    neighbourhood descent, with the same pass accounting: fair adjacent
    passes until converged, then one best-improvement insertion pass whose
    moves must keep every MANI-Rank parity score within its threshold
    (infeasible targets are skipped in favour of the next-best improving
    one), looping until no feasible insertion move remains or the budget
    runs out.  Because the first phase is exactly
    :func:`fair_local_kemenization` and every later move strictly improves
    the objective, the result is never worse in Kemeny objective (and hence
    PD loss against the base rankings) than the adjacent-only repair —
    while staying MANI-Rank feasible by construction for feasible inputs.

    Identical move decisions to
    :func:`fair_insertion_kemenization_reference` (enforced by the property
    tests).
    """
    _check_universe(ranking, table)
    thresholds = FairnessThresholds.coerce(delta)
    engine = KemenyDeltaEngine(rankings, ranking)
    fairness = FairnessState(ranking, table)
    n_swaps = 0
    n_moves = 0
    n_passes = 0
    while True:
        while n_passes < max_passes:
            accepted = _fair_adjacent_pass(engine, fairness, thresholds)
            if accepted == 0:
                break
            n_swaps += accepted
            n_passes += 1
        if n_passes >= max_passes:
            break
        moved = _fair_insertion_pass(engine, fairness, thresholds)
        if moved == 0:
            break
        n_moves += moved
        n_passes += 1
    return FairLocalRepairResult(
        ranking=engine.to_ranking(),
        n_swaps=n_swaps,
        n_passes=n_passes,
        objective=engine.objective,
        n_moves=n_moves,
    )


def fair_local_search(
    rankings: RankingSet,
    ranking: Ranking,
    table: CandidateTable,
    delta: FairnessThresholds | float | Mapping[str, float],
    strategy: str = "adjacent-swap",
    max_passes: int = 50,
) -> FairLocalRepairResult:
    """Fairness-preserving repair with a pluggable neighbourhood strategy.

    Accepts the same strategy names as
    :func:`repro.aggregation.search.get_strategy`: ``adjacent-swap`` runs
    :func:`fair_local_kemenization`, ``insertion`` runs
    :func:`fair_insertion_kemenization`, and ``combined`` runs greedy
    fairness-filtered insertion passes from the raw input followed by a
    final adjacent polish (the mirror of
    :class:`repro.aggregation.search.CombinedStrategy`).
    """
    name = get_strategy(strategy).name
    if name == "adjacent-swap":
        return fair_local_kemenization(
            rankings, ranking, table, delta, max_passes=max_passes
        )
    if name == "insertion":
        return fair_insertion_kemenization(
            rankings, ranking, table, delta, max_passes=max_passes
        )
    _check_universe(ranking, table)
    thresholds = FairnessThresholds.coerce(delta)
    engine = KemenyDeltaEngine(rankings, ranking)
    fairness = FairnessState(ranking, table)
    n_moves = 0
    n_passes = 0
    for _ in range(max_passes):
        moved = _fair_insertion_pass(engine, fairness, thresholds)
        if moved == 0:
            break
        n_moves += moved
        n_passes += 1
    n_swaps = 0
    for _ in range(max_passes):
        accepted = _fair_adjacent_pass(engine, fairness, thresholds)
        if accepted == 0:
            break
        n_swaps += accepted
        n_passes += 1
    return FairLocalRepairResult(
        ranking=engine.to_ranking(),
        n_swaps=n_swaps,
        n_passes=n_passes,
        objective=engine.objective,
        n_moves=n_moves,
    )


def fair_local_kemenization_reference(
    rankings: RankingSet,
    ranking: Ranking,
    table: CandidateTable,
    delta: FairnessThresholds | float | Mapping[str, float],
    max_passes: int = 50,
) -> FairLocalRepairResult:
    """From-scratch fairness-preserving repair, retained as ground truth.

    Every candidate swap materialises the swapped :class:`Ranking`, rescores
    it with :func:`repro.fairness.parity.parity_scores`, and the final
    objective is recomputed with :func:`kemeny_objective` — one evaluated
    swap costs O(n * sum of group counts) instead of the engines' O(1) +
    O(sum of group counts).  :func:`fair_local_kemenization` must produce the
    identical swap sequence and final ranking (enforced by the test suite).
    """
    _check_universe(ranking, table)
    thresholds = FairnessThresholds.coerce(delta)
    precedence = rankings.precedence_matrix()
    current = ranking
    n = ranking.n_candidates
    n_swaps = 0
    n_passes = 0
    for _ in range(max_passes):
        improved = False
        for position in range(n - 1):
            upper = current.candidate_at(position)
            lower = current.candidate_at(position + 1)
            if precedence[lower, upper] >= precedence[upper, lower]:
                continue
            swapped = current.swap(upper, lower)
            after = parity_scores(swapped, table)
            if any(
                score > thresholds.threshold_for(entity) + _FEASIBILITY_TOLERANCE
                for entity, score in after.items()
            ):
                continue
            current = swapped
            improved = True
            n_swaps += 1
        if not improved:
            break
        n_passes += 1
    return FairLocalRepairResult(
        ranking=current,
        n_swaps=n_swaps,
        n_passes=n_passes,
        objective=kemeny_objective(current, rankings),
    )


def _reference_moved(ranking: Ranking, candidate: int, target: int) -> Ranking:
    """Materialise the block move of ``candidate`` to position ``target``."""
    order = ranking.to_list()
    order.remove(candidate)
    order.insert(target, candidate)
    return Ranking(np.asarray(order, dtype=np.int64), validate=False)


def fair_insertion_kemenization_reference(
    rankings: RankingSet,
    ranking: Ranking,
    table: CandidateTable,
    delta: FairnessThresholds | float | Mapping[str, float],
    max_passes: int = 50,
) -> FairLocalRepairResult:
    """From-scratch fairness-constrained insertion repair (ground truth).

    The same variable-neighbourhood descent as
    :func:`fair_insertion_kemenization` with every quantity recomputed from
    scratch: adjacent passes materialise each swapped ranking and rescore it
    with :func:`repro.fairness.parity.parity_scores`; insertion passes score
    every target of a candidate by materialising the moved ranking and
    recomputing :func:`kemeny_objective`, sort the improving targets by
    ``(delta, position)`` — matching the engine's best-first ``argmin``
    tie-breaking — and accept the first whose rescored parity stays within
    the thresholds.  One evaluated insertion pass costs O(n^4); the function
    exists purely as the test suite's semantic ground truth on small inputs.
    """
    _check_universe(ranking, table)
    thresholds = FairnessThresholds.coerce(delta)
    precedence = rankings.precedence_matrix()
    current = ranking
    n = ranking.n_candidates
    n_swaps = 0
    n_moves = 0
    n_passes = 0
    while True:
        while n_passes < max_passes:
            accepted = 0
            for position in range(n - 1):
                upper = current.candidate_at(position)
                lower = current.candidate_at(position + 1)
                if precedence[lower, upper] >= precedence[upper, lower]:
                    continue
                swapped = current.swap(upper, lower)
                if not _feasible(parity_scores(swapped, table), thresholds):
                    continue
                current = swapped
                accepted += 1
            if accepted == 0:
                break
            n_swaps += accepted
            n_passes += 1
        if n_passes >= max_passes:
            break
        moved = 0
        for candidate in range(n):
            objective = kemeny_objective(current, rankings)
            position = current.position_of(candidate)
            scored: list[tuple[float, int]] = []
            for target in range(n):
                if target == position:
                    continue
                delta_objective = (
                    kemeny_objective(
                        _reference_moved(current, candidate, target), rankings
                    )
                    - objective
                )
                if delta_objective < 0.0:
                    scored.append((delta_objective, target))
            for _, target in sorted(scored):
                candidate_moved = _reference_moved(current, candidate, target)
                if _feasible(parity_scores(candidate_moved, table), thresholds):
                    current = candidate_moved
                    moved += 1
                    break
        if moved == 0:
            break
        n_moves += moved
        n_passes += 1
    return FairLocalRepairResult(
        ranking=current,
        n_swaps=n_swaps,
        n_passes=n_passes,
        objective=kemeny_objective(current, rankings),
        n_moves=n_moves,
    )
