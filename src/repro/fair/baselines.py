"""Fairness-aware baseline methods compared against the MFCR solutions.

Section IV-B of the paper evaluates the proposed methods (A1–A4) against four
baselines (B1–B4):

* **B1 Kemeny** — plain fairness-unaware Kemeny (lives in
  :mod:`repro.aggregation.kemeny`; wrapped here so it exposes the fair-method
  interface used by the experiment harness).
* **B2 Kemeny-Weighted** — orders the base rankings from least to most fair
  and runs weighted Kemeny with the fairest ranking weighted ``|R|`` and the
  least fair weighted ``1``.
* **B3 Pick-Fairest-Perm** — returns the fairest base ranking (a fairness
  variant of Pick-A-Perm).
* **B4 Correct-Fairest-Perm** — corrects the fairest base ranking with
  Make-MR-Fair so it meets ``Δ``.

Only B4 guarantees the MANI-Rank criteria; B1–B3 are included to show why a
desired level of fairness has to be enforced explicitly.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.kemeny import KemenyAggregator
from repro.core.candidates import CandidateTable
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.fair.base import FairAggregationResult, FairRankAggregator
from repro.fair.make_mr_fair import make_mr_fair
from repro.fairness.parity import parity_scores
from repro.fairness.thresholds import FairnessThresholds

__all__ = [
    "unfairness_score",
    "rank_base_rankings_by_fairness",
    "UnawareKemenyBaseline",
    "KemenyWeightedBaseline",
    "PickFairestPermBaseline",
    "CorrectFairestPermBaseline",
]


def unfairness_score(ranking: Ranking, table: CandidateTable) -> float:
    """Scalar unfairness of a ranking: the worst ARP/IRP over all entities.

    Used to order base rankings from least to most fair for the
    Kemeny-Weighted and Pick-Fairest-Perm baselines.
    """
    return max(parity_scores(ranking, table).values())


def rank_base_rankings_by_fairness(
    rankings: RankingSet, table: CandidateTable
) -> list[int]:
    """Indexes of the base rankings ordered from least fair to most fair."""
    scores = [unfairness_score(ranking, table) for ranking in rankings]
    return sorted(range(len(scores)), key=lambda index: (-scores[index], index))


class UnawareKemenyBaseline(FairRankAggregator):
    """B1: plain Kemeny, ignoring fairness entirely (reference point)."""

    name = "Kemeny"
    guarantees_mani_rank = False

    def __init__(self, **kemeny_kwargs: object) -> None:
        self._aggregator = KemenyAggregator(**kemeny_kwargs)  # type: ignore[arg-type]

    def _aggregate(
        self,
        rankings: RankingSet,
        table: CandidateTable,
        delta: FairnessThresholds,
    ) -> FairAggregationResult:
        result = self._aggregator.aggregate_with_diagnostics(rankings)
        return FairAggregationResult(
            ranking=result.ranking,
            method=self.name,
            unaware_ranking=result.ranking,
            diagnostics=dict(result.diagnostics),
        )


class KemenyWeightedBaseline(FairRankAggregator):
    """B2: weighted Kemeny with weights increasing from the least to the most fair ranking.

    The least fair base ranking receives weight 1 and the fairest receives
    weight ``|R|``; intermediate rankings receive the intermediate integer
    weights.  Fairness of the output is *not* guaranteed.
    """

    name = "Kemeny-Weighted"
    guarantees_mani_rank = False

    def __init__(self, **kemeny_kwargs: object) -> None:
        self._kemeny_kwargs = dict(kemeny_kwargs)

    def _aggregate(
        self,
        rankings: RankingSet,
        table: CandidateTable,
        delta: FairnessThresholds,
    ) -> FairAggregationResult:
        order = rank_base_rankings_by_fairness(rankings, table)
        weights = np.empty(rankings.n_rankings, dtype=float)
        # order[0] is the least fair -> weight 1; order[-1] the fairest -> |R|.
        for weight, index in enumerate(order, start=1):
            weights[index] = float(weight)
        weighted = rankings.with_weights(weights)
        aggregator = KemenyAggregator(weighted=True, **self._kemeny_kwargs)  # type: ignore[arg-type]
        result = aggregator.aggregate_with_diagnostics(weighted)
        return FairAggregationResult(
            ranking=result.ranking,
            method=self.name,
            unaware_ranking=result.ranking,
            diagnostics={**result.diagnostics, "weights": weights},
        )


class PickFairestPermBaseline(FairRankAggregator):
    """B3: return the fairest base ranking as the consensus."""

    name = "Pick-Fairest-Perm"
    guarantees_mani_rank = False

    def _aggregate(
        self,
        rankings: RankingSet,
        table: CandidateTable,
        delta: FairnessThresholds,
    ) -> FairAggregationResult:
        order = rank_base_rankings_by_fairness(rankings, table)
        fairest_index = order[-1]
        ranking = rankings[fairest_index]
        return FairAggregationResult(
            ranking=ranking,
            method=self.name,
            unaware_ranking=ranking,
            diagnostics={
                "selected_index": fairest_index,
                "selected_label": rankings.label_of(fairest_index),
                "unfairness": unfairness_score(ranking, table),
            },
        )


class CorrectFairestPermBaseline(FairRankAggregator):
    """B4: correct the fairest base ranking with Make-MR-Fair until it meets ``Δ``."""

    name = "Correct-Fairest-Perm"
    guarantees_mani_rank = True

    def _aggregate(
        self,
        rankings: RankingSet,
        table: CandidateTable,
        delta: FairnessThresholds,
    ) -> FairAggregationResult:
        order = rank_base_rankings_by_fairness(rankings, table)
        fairest_index = order[-1]
        seed = rankings[fairest_index]
        correction = make_mr_fair(seed, table, delta)
        return FairAggregationResult(
            ranking=correction.ranking,
            method=self.name,
            unaware_ranking=seed,
            diagnostics={
                "selected_index": fairest_index,
                "selected_label": rankings.label_of(fairest_index),
                "n_swaps": correction.n_swaps,
            },
        )
