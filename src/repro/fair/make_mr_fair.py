"""Make-MR-Fair: pairwise bias-mitigation post-processing (Algorithm 2).

Make-MR-Fair takes a consensus ranking and repeatedly swaps one pair of
candidates until the ranking satisfies the MANI-Rank criteria for the desired
``Δ``.  Each iteration of the paper's Algorithm 2:

1. computes the ARP of every protected attribute and the IRP;
2. if every score is within its threshold, stops;
3. otherwise picks the *least fair* entity (largest ARP/IRP), and within it
   the group with the highest FPR (``G_highest``) and the lowest FPR
   (``G_lowest``);
4. finds the best-positioned member of ``G_lowest`` (``x_Gl``) and the
   worst-positioned member of ``G_highest`` still ranked above it (``x_Gh``),
   and swaps the two.

Swapping the *lowest* advantaged candidate that still sits above the *highest*
disadvantaged candidate moves the disadvantaged candidate far up the ranking
in one swap — few, impactful swaps — which is how the algorithm keeps the
PD-loss increase small (the design rationale given in Section III-B).

**Termination.**  The paper's swap rule alone can fail to terminate on
difficult group structures: a large jump can overshoot the parity band for
small groups, and corrections for one entity can undo corrections for another
(attribute vs intersection ping-pong).  This implementation therefore wraps
the paper's swap choice in a *global progress* rule: a move is accepted only
if it strictly decreases the total violation

    potential(π) = Σ_entities max(0, parity(entity, π) − Δ_entity).

When the paper's swap would not make progress, small single-step moves
(promoting the most disadvantaged group's best candidate, or demoting the most
advantaged group's worst candidate, for any violating entity) are considered
instead; if no candidate move makes progress the threshold is reported as
unreachable.  Because the potential is non-negative and strictly decreases by
a positive amount on every accepted move, the procedure always terminates.

**Performance.**  The main implementation runs on the incremental fairness
engine (:class:`repro.fairness.incremental.FairnessState`): evaluating a
candidate move costs O(Σ n_groups) instead of a full O(n · n_groups) parity
recomputation plus an O(n) :class:`Ranking` copy, and move selection works
directly on the engine's position array.  The original from-scratch evaluator
is retained verbatim as :func:`make_mr_fair_reference`; the test suite
asserts both produce the identical swap sequence, ``n_swaps``, and final
ranking on every exercised input.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.core.candidates import CandidateTable
from repro.core.pairwise import total_pairs
from repro.core.ranking import Ranking
from repro.exceptions import AggregationError
from repro.fairness.fpr import fpr_vector
from repro.fairness.incremental import FairnessState
from repro.fairness.parity import parity_scores
from repro.fairness.thresholds import FairnessThresholds

__all__ = ["MakeMRFairResult", "make_mr_fair", "make_mr_fair_reference"]

#: Minimum potential decrease a move must achieve to be accepted.
_PROGRESS_TOLERANCE = 1e-12


@dataclass
class MakeMRFairResult:
    """Outcome of a Make-MR-Fair run."""

    ranking: Ranking
    n_swaps: int
    corrected_entities: list[str] = field(default_factory=list)
    converged: bool = True


def _violation_potential(
    scores: Mapping[str, float], thresholds: FairnessThresholds
) -> float:
    """Total amount by which the parity scores exceed their thresholds."""
    return sum(
        max(0.0, score - thresholds.threshold_for(entity))
        for entity, score in scores.items()
    )


# ----------------------------------------------------------------------
# Incremental move generation (operates on FairnessState, O(group) per move)
# ----------------------------------------------------------------------
def _paper_swap_pair(state: FairnessState, entity: str) -> tuple[int, int] | None:
    """The swap Algorithm 2 prescribes for ``entity``, or ``None`` if unavailable.

    The advantaged candidate ``x_Gh`` is the worst-positioned member of the
    highest-FPR group that still has a member of the lowest-FPR group ranked
    below it, and ``x_Gl`` is the best-positioned such member.  Selection runs
    on the engine's position array; no ranking is materialised.
    """
    highest_index, lowest_index = state.extreme_groups(entity)
    highest_members = state.group_members(entity, highest_index)
    lowest_members = state.group_members(entity, lowest_index)

    positions = state.positions
    lowest_positions = positions[lowest_members]
    highest_positions = positions[highest_members]
    # Iterating highest members by decreasing position, the first one with a
    # lowest-group member below it is the worst-positioned member ranked
    # above *any* lowest-group member (positions are unique).
    eligible = highest_positions < lowest_positions.max()
    if not eligible.any():
        return None
    eligible_positions = highest_positions[eligible]
    x_gh = int(highest_members[eligible][np.argmax(eligible_positions)])
    candidates_below = lowest_members[lowest_positions > positions[x_gh]]
    x_gl = int(candidates_below[np.argmin(positions[candidates_below])])
    return x_gh, x_gl


def _promotion_pair(
    state: FairnessState, member: int, group_mask: np.ndarray
) -> tuple[int, int] | None:
    """Pair swapping ``member`` with the nearest non-member ranked above it.

    Early-exit backward scan: groups are interleaved in practice, so the
    nearest non-member is almost always within a couple of positions.
    """
    order = state.order_list
    for position in range(state.positions_list[member] - 1, -1, -1):
        neighbour = order[position]
        if not group_mask[neighbour]:
            return neighbour, member
    return None


def _demotion_pair(
    state: FairnessState, member: int, group_mask: np.ndarray
) -> tuple[int, int] | None:
    """Pair swapping ``member`` with the nearest non-member ranked below it."""
    order = state.order_list
    for position in range(state.positions_list[member] + 1, state.n_candidates):
        neighbour = order[position]
        if not group_mask[neighbour]:
            return member, neighbour
    return None


def _single_step_pairs(
    state: FairnessState,
    entity: str,
    exhaustive: bool = False,
) -> list[tuple[int, int]]:
    """Minimal corrective moves for ``entity`` as candidate-id swap pairs.

    Mirrors the reference :func:`_single_step_moves` exactly — same move set
    in the same order — but selects candidates on the engine's position array
    instead of building a :class:`Ranking` per move.
    """
    highest_index, lowest_index = state.extreme_groups(entity)
    positions = state.positions
    pairs: list[tuple[int, int]] = []

    lowest_members = state.group_members(entity, lowest_index)
    lowest_mask = state.group_mask(entity, lowest_index)
    promotion_candidates = (
        lowest_members[np.argsort(positions[lowest_members])]
        if exhaustive
        else lowest_members[[np.argmin(positions[lowest_members])]]
    )
    for member in promotion_candidates:
        pair = _promotion_pair(state, int(member), lowest_mask)
        if pair is not None:
            pairs.append(pair)

    highest_members = state.group_members(entity, highest_index)
    highest_mask = state.group_mask(entity, highest_index)
    demotion_candidates = (
        highest_members[np.argsort(-positions[highest_members])]
        if exhaustive
        else highest_members[[np.argmax(positions[highest_members])]]
    )
    for member in demotion_candidates:
        pair = _demotion_pair(state, int(member), highest_mask)
        if pair is not None:
            pairs.append(pair)

    return pairs


def make_mr_fair(
    ranking: Ranking,
    table: CandidateTable,
    delta: FairnessThresholds | float | Mapping[str, float],
    max_swaps: int | None = None,
    backend: object | None = None,
) -> MakeMRFairResult:
    """Correct ``ranking`` until it satisfies MANI-Rank fairness at ``delta``.

    Runs on the incremental fairness engine — every evaluated move costs
    O(Σ n_groups) rather than a from-scratch O(n · n_groups) parity pass —
    while reproducing the exact accept/reject decisions and swap sequence of
    :func:`make_mr_fair_reference`.

    Parameters
    ----------
    ranking:
        The consensus ranking to correct (it is not modified; a new ranking is
        returned).
    table:
        Candidate table defining the protected attributes and intersection.
    delta:
        Fairness threshold(s); see :class:`FairnessThresholds`.
    max_swaps:
        Safety cap; defaults to ``ω(X) * (#fairness entities + 1)``.
    backend:
        Compute-kernel backend for the incremental engine
        (:mod:`repro.kernels`): ``None`` (the process default), a registered
        backend name, or a backend instance.

    Raises
    ------
    AggregationError
        If no pairwise move can make further progress toward the requested
        thresholds, or the swap budget is exhausted — both indicate the
        threshold is unreachable for the group structure (e.g. singleton
        intersectional groups force ``IRP = 1`` in any strict ranking).
    """
    if ranking.n_candidates != table.n_candidates:
        raise AggregationError(
            "ranking and candidate table cover different universes: "
            f"{ranking.n_candidates} vs {table.n_candidates} candidates"
        )
    thresholds = FairnessThresholds.coerce(delta)
    entities = table.all_fairness_entities()
    if max_swaps is None:
        max_swaps = total_pairs(table.n_candidates) * (len(entities) + 1)

    state = FairnessState(ranking, table, backend=backend)
    corrected_entities: list[str] = []
    tolerance = 1e-9
    n_swaps = 0
    best_potential_seen = float("inf")
    stalled_iterations = 0
    stall_limit = max(25, table.n_candidates)
    while True:
        scores = state.parity_scores()
        violating = {
            entity: score
            for entity, score in scores.items()
            if score > thresholds.threshold_for(entity) + tolerance
        }
        if not violating:
            return MakeMRFairResult(
                ranking=state.to_ranking(),
                n_swaps=n_swaps,
                corrected_entities=corrected_entities,
                converged=True,
            )
        if n_swaps >= max_swaps:
            raise AggregationError(
                f"Make-MR-Fair did not reach delta within {max_swaps} swaps; "
                f"remaining violations: {violating}. The requested threshold "
                "may be infeasible for this group structure."
            )
        potential = _violation_potential(scores, thresholds)

        # Entity to correct: the least fair one among the violators (the
        # paper's choice).  Its Algorithm-2 swap is tried first; if that does
        # not make global progress, small single-step moves for every
        # violating entity are considered.  Moves are generated lazily: the
        # paper swap is accepted on the vast majority of iterations, so the
        # single-step pools are usually never built.
        def _candidate_moves():
            worst_entity = max(violating, key=violating.get)
            paper_pair = _paper_swap_pair(state, worst_entity)
            if paper_pair is not None:
                yield worst_entity, paper_pair
            for entity in sorted(violating, key=violating.get, reverse=True):
                for pair in _single_step_pairs(state, entity):
                    yield entity, pair

        # Accept the first move (paper swap preferred, then single steps in
        # decreasing order of entity violation) that makes global progress.
        accepted: tuple[str, tuple[int, int]] | None = None
        accepted_potential = potential
        for entity, pair in _candidate_moves():
            move_potential = state.potential_after_swap(*pair, thresholds)
            if move_potential < potential - _PROGRESS_TOLERANCE:
                accepted = (entity, pair)
                accepted_potential = move_potential
                break
        if accepted is None:
            # The cheap pool stalled (typically right at a threshold boundary
            # where the obvious swap for one entity would push another over).
            # Fall back to the best move in the exhaustive per-member pool —
            # even a non-improving one, because escaping such boundary states
            # can require temporarily trading one entity's violation for
            # another's.  A stall counter bounds how long the search may go
            # without setting a new best potential.
            best_move_potential = float("inf")
            for entity in sorted(violating, key=violating.get, reverse=True):
                for pair in _single_step_pairs(state, entity, exhaustive=True):
                    move_potential = state.potential_after_swap(*pair, thresholds)
                    if move_potential < best_move_potential:
                        accepted = (entity, pair)
                        best_move_potential = move_potential
            accepted_potential = best_move_potential
        if accepted is None:
            raise AggregationError(
                f"Make-MR-Fair cannot make further progress (remaining "
                f"violations: {violating}); the requested threshold appears "
                "infeasible for this group structure"
            )

        if accepted_potential < best_potential_seen - _PROGRESS_TOLERANCE:
            best_potential_seen = accepted_potential
            stalled_iterations = 0
        else:
            stalled_iterations += 1
            if stalled_iterations > stall_limit:
                raise AggregationError(
                    f"Make-MR-Fair made no progress for {stall_limit} "
                    f"consecutive swaps (remaining violations: {violating}); "
                    "the requested threshold appears infeasible for this "
                    "group structure"
                )

        entity, pair = accepted
        state.apply_swap(*pair)
        corrected_entities.append(entity)
        n_swaps += 1


# ----------------------------------------------------------------------
# From-scratch reference evaluator (the original implementation, retained
# verbatim for equivalence tests and as the perf baseline)
# ----------------------------------------------------------------------
def _paper_swap(
    ranking: Ranking,
    table: CandidateTable,
    entity: str,
) -> Ranking | None:
    """Reference move rule of :func:`_paper_swap_pair` on a concrete ranking."""
    groups = table.groups(entity)
    scores = fpr_vector(ranking, table, entity)
    highest_group = groups[int(np.argmax(scores))]
    lowest_group = groups[int(np.argmin(scores))]

    positions = ranking.positions
    lowest_members = np.asarray(lowest_group.members, dtype=np.int64)
    lowest_positions = positions[lowest_members]
    highest_members = np.asarray(highest_group.members, dtype=np.int64)
    for x_gh in highest_members[np.argsort(-positions[highest_members])]:
        below_mask = lowest_positions > positions[x_gh]
        if below_mask.any():
            candidates_below = lowest_members[below_mask]
            x_gl = int(candidates_below[np.argmin(positions[candidates_below])])
            return ranking.swap(int(x_gh), x_gl)
    return None


def _promotion_move(
    ranking: Ranking, member: int, member_set: frozenset[int]
) -> Ranking | None:
    """Swap ``member`` with the nearest candidate above it outside its group."""
    for position in range(ranking.position_of(member) - 1, -1, -1):
        neighbour = ranking.candidate_at(position)
        if neighbour not in member_set:
            return ranking.swap(neighbour, member)
    return None


def _demotion_move(
    ranking: Ranking, member: int, member_set: frozenset[int]
) -> Ranking | None:
    """Swap ``member`` with the nearest candidate below it outside its group."""
    for position in range(ranking.position_of(member) + 1, ranking.n_candidates):
        neighbour = ranking.candidate_at(position)
        if neighbour not in member_set:
            return ranking.swap(member, neighbour)
    return None


def _single_step_moves(
    ranking: Ranking,
    table: CandidateTable,
    entity: str,
    exhaustive: bool = False,
) -> list[Ranking]:
    """Reference move pool of :func:`_single_step_pairs` on a concrete ranking.

    By default two candidate moves are produced: promote the best-placed
    member of the lowest-FPR group above the nearest non-member, and demote
    the worst-placed member of the highest-FPR group below the nearest
    non-member.  With ``exhaustive=True`` the same promotion/demotion step is
    generated for *every* member of the lowest/highest group — used only when
    the cheap move pool stalls, to escape boundary situations where one entity
    can no longer improve without nudging a different pair of candidates.
    """
    groups = table.groups(entity)
    scores = fpr_vector(ranking, table, entity)
    lowest_group = groups[int(np.argmin(scores))]
    highest_group = groups[int(np.argmax(scores))]
    positions = ranking.positions
    moves: list[Ranking] = []

    lowest_members = np.asarray(lowest_group.members, dtype=np.int64)
    lowest_set = lowest_group.member_set()
    promotion_candidates = (
        lowest_members[np.argsort(positions[lowest_members])]
        if exhaustive
        else lowest_members[[np.argmin(positions[lowest_members])]]
    )
    for member in promotion_candidates:
        move = _promotion_move(ranking, int(member), lowest_set)
        if move is not None:
            moves.append(move)

    highest_members = np.asarray(highest_group.members, dtype=np.int64)
    highest_set = highest_group.member_set()
    demotion_candidates = (
        highest_members[np.argsort(-positions[highest_members])]
        if exhaustive
        else highest_members[[np.argmax(positions[highest_members])]]
    )
    for member in demotion_candidates:
        move = _demotion_move(ranking, int(member), highest_set)
        if move is not None:
            moves.append(move)

    return moves


def make_mr_fair_reference(
    ranking: Ranking,
    table: CandidateTable,
    delta: FairnessThresholds | float | Mapping[str, float],
    max_swaps: int | None = None,
) -> MakeMRFairResult:
    """From-scratch Make-MR-Fair: every move evaluated by full recomputation.

    This is the original implementation, kept as the semantic ground truth:
    each candidate move materialises a swapped :class:`Ranking` and rescores
    it with :func:`repro.fairness.parity.parity_scores`, so one evaluated
    move costs O(n · Σ n_groups).  :func:`make_mr_fair` must return the
    identical swap sequence, ``n_swaps``, and final ranking; the equivalence
    is enforced by the test suite and the perf benchmark.
    """
    if ranking.n_candidates != table.n_candidates:
        raise AggregationError(
            "ranking and candidate table cover different universes: "
            f"{ranking.n_candidates} vs {table.n_candidates} candidates"
        )
    thresholds = FairnessThresholds.coerce(delta)
    entities = table.all_fairness_entities()
    if max_swaps is None:
        max_swaps = total_pairs(table.n_candidates) * (len(entities) + 1)

    current = ranking
    corrected_entities: list[str] = []
    tolerance = 1e-9
    n_swaps = 0
    best_potential_seen = float("inf")
    stalled_iterations = 0
    stall_limit = max(25, table.n_candidates)
    while True:
        scores = parity_scores(current, table)
        violating = {
            entity: score
            for entity, score in scores.items()
            if score > thresholds.threshold_for(entity) + tolerance
        }
        if not violating:
            return MakeMRFairResult(
                ranking=current,
                n_swaps=n_swaps,
                corrected_entities=corrected_entities,
                converged=True,
            )
        if n_swaps >= max_swaps:
            raise AggregationError(
                f"Make-MR-Fair did not reach delta within {max_swaps} swaps; "
                f"remaining violations: {violating}. The requested threshold "
                "may be infeasible for this group structure."
            )
        potential = _violation_potential(scores, thresholds)

        worst_entity = max(violating, key=violating.get)
        candidate_moves: list[tuple[str, Ranking]] = []
        paper_move = _paper_swap(current, table, worst_entity)
        if paper_move is not None:
            candidate_moves.append((worst_entity, paper_move))
        for entity in sorted(violating, key=violating.get, reverse=True):
            for move in _single_step_moves(current, table, entity):
                candidate_moves.append((entity, move))

        accepted: tuple[str, Ranking] | None = None
        accepted_potential = potential
        for entity, move in candidate_moves:
            move_potential = _violation_potential(
                parity_scores(move, table), thresholds
            )
            if move_potential < potential - _PROGRESS_TOLERANCE:
                accepted = (entity, move)
                accepted_potential = move_potential
                break
        if accepted is None:
            best_move_potential = float("inf")
            for entity in sorted(violating, key=violating.get, reverse=True):
                for move in _single_step_moves(current, table, entity, exhaustive=True):
                    move_potential = _violation_potential(
                        parity_scores(move, table), thresholds
                    )
                    if move_potential < best_move_potential:
                        accepted = (entity, move)
                        best_move_potential = move_potential
            accepted_potential = best_move_potential
        if accepted is None:
            raise AggregationError(
                f"Make-MR-Fair cannot make further progress (remaining "
                f"violations: {violating}); the requested threshold appears "
                "infeasible for this group structure"
            )

        if accepted_potential < best_potential_seen - _PROGRESS_TOLERANCE:
            best_potential_seen = accepted_potential
            stalled_iterations = 0
        else:
            stalled_iterations += 1
            if stalled_iterations > stall_limit:
                raise AggregationError(
                    f"Make-MR-Fair made no progress for {stall_limit} "
                    f"consecutive swaps (remaining violations: {violating}); "
                    "the requested threshold appears infeasible for this "
                    "group structure"
                )

        entity, current = accepted
        corrected_entities.append(entity)
        n_swaps += 1
