"""Fair-Kemeny: exact Kemeny with MANI-Rank constraints (Algorithm 1).

Fair-Kemeny augments the exact Kemeny integer program (Equations 7–10) with
the MANI-Rank fairness constraints:

* Equation (11): for every protected attribute ``pk`` and every pair of its
  groups ``(G_i, G_j)``, the absolute difference of their pairwise-win shares
  must be at most ``Δ``;
* Equation (12): the same constraint over every pair of intersectional groups.

The pairwise-win share of a group in the ILP is exactly its FPR expressed in
the ``Y`` variables, so a feasible solution satisfies Definition 7 by
construction, and the objective keeps the solution Kemeny-optimal among all
fair rankings (the MFCR-optimal solution).

The ``constraint_mode`` switch reproduces the two ablated variants of
Figure 3: constraining only the protected attributes (Equation 12 removed) or
only the intersection (Equation 11 removed).
"""

from __future__ import annotations

import numpy as np

from repro.core.candidates import CandidateTable, Group
from repro.core.ranking_set import RankingSet
from repro.exceptions import AggregationError
from repro.fair.base import FairAggregationResult, FairRankAggregator
from repro.fairness.thresholds import FairnessThresholds
from repro.optimize.milp_backend import solve_linear_ordering
from repro.optimize.model import LinearOrderingModel

__all__ = [
    "FairKemenyAggregator",
    "add_parity_constraints",
    "CONSTRAINT_MODES",
    "PARITY_FORMULATIONS",
]

#: Which fairness entities to constrain: the full MANI-Rank criteria, only the
#: individual protected attributes (Figure 3a), or only the intersection
#: (Figure 3b).
CONSTRAINT_MODES = ("mani-rank", "attributes-only", "intersection-only")


def _group_share_coefficients(
    group: Group, n_candidates: int
) -> dict[tuple[int, int], float]:
    """Coefficients of a group's FPR written over the directed Y variables."""
    weight = 1.0 / (group.size * (n_candidates - group.size))
    member_set = group.member_set()
    coefficients: dict[tuple[int, int], float] = {}
    for member in group.members:
        for other in range(n_candidates):
            if other == member or other in member_set:
                continue
            coefficients[(member, other)] = weight
    return coefficients


#: Available encodings of the MANI-Rank constraints in the ILP.
PARITY_FORMULATIONS = ("minmax", "pairwise")


def add_parity_constraints(
    model: LinearOrderingModel,
    table: CandidateTable,
    entity: str,
    delta: float,
    formulation: str = "minmax",
) -> int:
    """Add the FPR-gap constraints for one fairness entity to ``model``.

    Two equivalent encodings are supported:

    * ``"minmax"`` (default, compact): two auxiliary continuous variables
      ``f_min <= FPR(G) <= f_max`` for every group plus ``f_max - f_min <= Δ``
      — ``2k + 1`` constraints for ``k`` groups.  This is what makes the
      fairness-constrained ILP tractable for the open-source HiGHS solver.
    * ``"pairwise"`` (the paper's Equations 11–12 verbatim): one two-sided
      constraint ``|FPR(G_i) - FPR(G_j)| <= Δ`` per unordered group pair —
      ``k (k - 1) / 2`` constraints.  Kept for the formulation ablation
      benchmark.

    Returns the number of constraints added.
    """
    if formulation not in PARITY_FORMULATIONS:
        raise AggregationError(
            f"unknown parity formulation {formulation!r}; "
            f"expected one of {PARITY_FORMULATIONS}"
        )
    groups = table.groups(entity)
    if len(groups) < 2:
        return 0
    n = table.n_candidates
    shares = [_group_share_coefficients(group, n) for group in groups]
    added = 0
    if formulation == "pairwise":
        for i in range(len(groups)):
            for j in range(i + 1, len(groups)):
                coefficients: dict[tuple[int, int], float] = dict(shares[i])
                for pair, value in shares[j].items():
                    coefficients[pair] = coefficients.get(pair, 0.0) - value
                model.add_constraint(
                    coefficients,
                    lower=-delta,
                    upper=delta,
                    label=f"parity[{entity}:{groups[i].label} vs {groups[j].label}]",
                )
                added += 1
        return added

    f_min = model.add_auxiliary_variable(0.0, 1.0)
    f_max = model.add_auxiliary_variable(0.0, 1.0)
    for group, share in zip(groups, shares):
        # FPR(G) - f_max <= 0
        model.add_constraint(
            share,
            lower=-np.inf,
            upper=0.0,
            label=f"parity-upper[{entity}:{group.label}]",
            auxiliary_coefficients={f_max: -1.0},
        )
        # FPR(G) - f_min >= 0
        model.add_constraint(
            share,
            lower=0.0,
            upper=np.inf,
            label=f"parity-lower[{entity}:{group.label}]",
            auxiliary_coefficients={f_min: -1.0},
        )
        added += 2
    # f_max - f_min <= delta
    model.add_constraint(
        {},
        lower=-np.inf,
        upper=delta,
        label=f"parity-gap[{entity}]",
        auxiliary_coefficients={f_max: 1.0, f_min: -1.0},
    )
    return added + 1


class FairKemenyAggregator(FairRankAggregator):
    """MFCR-optimal consensus: exact Kemeny subject to MANI-Rank constraints.

    Parameters
    ----------
    constraint_mode:
        ``"mani-rank"`` (default) constrains every protected attribute *and*
        the intersection; ``"attributes-only"`` and ``"intersection-only"``
        reproduce the ablated criteria compared in Figure 3.
    weighted:
        Use the ranking-set weights in the Kemeny objective.
    formulation:
        Encoding of the MANI-Rank constraints: ``"minmax"`` (compact,
        default) or ``"pairwise"`` (the paper's Equations 11–12 verbatim).
    lazy_triangles / time_limit / mip_rel_gap:
        Passed to the MILP backend (see
        :func:`repro.optimize.milp_backend.solve_linear_ordering`).  A small
        ``mip_rel_gap`` (default ``1e-3``) keeps the hard fairness-constrained
        instances tractable for HiGHS while staying within a fraction of a
        pairwise disagreement of the optimum.  The default ``time_limit`` of
        300 seconds makes the method *anytime* on instances HiGHS cannot prove
        optimal: the returned ranking is still MANI-Rank feasible, only
        PD-loss optimality may be lost (``diagnostics["optimal"]`` reports
        which case occurred).  Pass ``time_limit=None`` for a fully exact
        solve regardless of runtime.
    """

    name = "Fair-Kemeny"

    def __init__(
        self,
        constraint_mode: str = "mani-rank",
        weighted: bool = False,
        formulation: str = "minmax",
        lazy_triangles: bool | None = None,
        time_limit: float | None = 300.0,
        mip_rel_gap: float | None = 1e-3,
    ) -> None:
        if constraint_mode not in CONSTRAINT_MODES:
            raise AggregationError(
                f"unknown constraint mode {constraint_mode!r}; "
                f"expected one of {CONSTRAINT_MODES}"
            )
        if formulation not in PARITY_FORMULATIONS:
            raise AggregationError(
                f"unknown parity formulation {formulation!r}; "
                f"expected one of {PARITY_FORMULATIONS}"
            )
        self._constraint_mode = constraint_mode
        self._weighted = weighted
        self._formulation = formulation
        self._lazy_triangles = lazy_triangles
        self._time_limit = time_limit
        self._mip_rel_gap = mip_rel_gap
        # The ablated variants intentionally do not guarantee the full
        # MANI-Rank criteria (that is the point of Figure 3).
        self.guarantees_mani_rank = constraint_mode == "mani-rank"
        if constraint_mode == "attributes-only":
            self.name = "Fair-Kemeny (attributes only)"
        elif constraint_mode == "intersection-only":
            self.name = "Fair-Kemeny (intersection only)"

    def constrained_entities(self, table: CandidateTable) -> tuple[str, ...]:
        """The fairness entities this variant adds constraints for."""
        attributes = table.attribute_names
        has_intersection = len(attributes) > 1
        if self._constraint_mode == "attributes-only" or not has_intersection:
            return attributes
        if self._constraint_mode == "intersection-only":
            return (table.INTERSECTION,)
        return (*attributes, table.INTERSECTION)

    def _aggregate(
        self,
        rankings: RankingSet,
        table: CandidateTable,
        delta: FairnessThresholds,
    ) -> FairAggregationResult:
        precedence = rankings.precedence_matrix(weighted=self._weighted)
        model = LinearOrderingModel.from_precedence(precedence)
        n_constraints = 0
        for entity in self.constrained_entities(table):
            n_constraints += add_parity_constraints(
                model,
                table,
                entity,
                delta.threshold_for(entity),
                formulation=self._formulation,
            )
        solution = solve_linear_ordering(
            model,
            lazy=self._lazy_triangles,
            time_limit=self._time_limit,
            mip_rel_gap=self._mip_rel_gap,
        )
        ranking = model.assignment_to_ranking(solution.assignment)
        return FairAggregationResult(
            ranking=ranking,
            method=self.name,
            unaware_ranking=None,
            diagnostics={
                "objective": solution.objective,
                "rounds": solution.rounds,
                "n_lazy_constraints": solution.n_lazy_constraints,
                "n_parity_constraints": n_constraints,
                "formulation": self._formulation,
                "optimal": solution.optimal,
            },
        )
