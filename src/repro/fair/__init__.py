"""MFCR solutions: Fair-Kemeny, Fair-Copeland, Fair-Schulze, Fair-Borda, and baselines."""

from repro.fair.base import FairAggregationResult, FairRankAggregator
from repro.fair.baselines import (
    CorrectFairestPermBaseline,
    KemenyWeightedBaseline,
    PickFairestPermBaseline,
    UnawareKemenyBaseline,
    rank_base_rankings_by_fairness,
    unfairness_score,
)
from repro.fair.fair_kemeny import CONSTRAINT_MODES, FairKemenyAggregator, add_parity_constraints
from repro.fair.local_repair import (
    FairLocalRepairResult,
    fair_insertion_kemenization,
    fair_insertion_kemenization_reference,
    fair_local_kemenization,
    fair_local_kemenization_reference,
    fair_local_search,
)
from repro.fair.make_mr_fair import MakeMRFairResult, make_mr_fair
from repro.fair.sharding import default_shard_count, make_mr_fair_sharded
from repro.fair.registry import (
    PAPER_LABELS,
    available_fair_methods,
    baseline_methods,
    get_fair_method,
    proposed_methods,
)
from repro.fair.seeded import (
    FairBordaAggregator,
    FairCopelandAggregator,
    FairFootruleAggregator,
    FairMarkovChainAggregator,
    FairRankedPairsAggregator,
    FairSchulzeAggregator,
    SeededFairAggregator,
)

__all__ = [
    "FairRankAggregator",
    "FairAggregationResult",
    "make_mr_fair",
    "MakeMRFairResult",
    "make_mr_fair_sharded",
    "default_shard_count",
    "fair_local_kemenization",
    "fair_local_kemenization_reference",
    "fair_insertion_kemenization",
    "fair_insertion_kemenization_reference",
    "fair_local_search",
    "FairLocalRepairResult",
    "FairKemenyAggregator",
    "add_parity_constraints",
    "CONSTRAINT_MODES",
    "SeededFairAggregator",
    "FairBordaAggregator",
    "FairCopelandAggregator",
    "FairSchulzeAggregator",
    "FairFootruleAggregator",
    "FairMarkovChainAggregator",
    "FairRankedPairsAggregator",
    "UnawareKemenyBaseline",
    "KemenyWeightedBaseline",
    "PickFairestPermBaseline",
    "CorrectFairestPermBaseline",
    "unfairness_score",
    "rank_base_rankings_by_fairness",
    "PAPER_LABELS",
    "available_fair_methods",
    "get_fair_method",
    "proposed_methods",
    "baseline_methods",
]
