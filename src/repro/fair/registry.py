"""Registry of MFCR methods and baselines under the paper's labels.

The experimental section labels the methods A1–A4 (the proposed MFCR
solutions) and B1–B4 (baselines).  The registry lets the experiment harness,
CLI, and examples instantiate any method from its paper label or plain name.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.exceptions import AggregationError
from repro.fair.base import FairRankAggregator
from repro.fair.baselines import (
    CorrectFairestPermBaseline,
    KemenyWeightedBaseline,
    PickFairestPermBaseline,
    UnawareKemenyBaseline,
)
from repro.fair.fair_kemeny import FairKemenyAggregator
from repro.fair.seeded import (
    FairBordaAggregator,
    FairCopelandAggregator,
    FairFootruleAggregator,
    FairMarkovChainAggregator,
    FairRankedPairsAggregator,
    FairSchulzeAggregator,
)

__all__ = [
    "PAPER_LABELS",
    "available_fair_methods",
    "canonical_fair_method_name",
    "describe_fair_methods",
    "get_fair_method",
    "proposed_methods",
    "baseline_methods",
]

#: Mapping from the paper's experiment labels to method display names.
PAPER_LABELS: dict[str, str] = {
    "A1": "Fair-Kemeny",
    "A2": "Fair-Schulze",
    "A3": "Fair-Borda",
    "A4": "Fair-Copeland",
    "B1": "Kemeny",
    "B2": "Kemeny-Weighted",
    "B3": "Pick-Fairest-Perm",
    "B4": "Correct-Fairest-Perm",
}

def _fair_borda_repaired() -> FairRankAggregator:
    """Fair-Borda followed by the fairness-preserving local Kemeny repair."""
    method = FairBordaAggregator(local_repair=True)
    method.name = "Fair-Borda+LK"
    return method


def _fair_borda_insertion() -> FairRankAggregator:
    """Fair-Borda followed by the fairness-constrained insertion repair.

    The repair's block moves are filtered by the incremental
    :class:`~repro.fairness.incremental.FairnessState` MANI-Rank feasibility
    check; the result never recovers less Kemeny objective than
    ``fair-borda-repaired``.
    """
    method = FairBordaAggregator(local_repair="insertion")
    method.name = "Fair-Borda+Ins"
    return method


_FACTORIES: dict[str, Callable[[], FairRankAggregator]] = {
    "fair-kemeny": FairKemenyAggregator,
    "fair-schulze": FairSchulzeAggregator,
    "fair-borda": FairBordaAggregator,
    "fair-borda-repaired": _fair_borda_repaired,
    "fair-borda-insertion": _fair_borda_insertion,
    "fair-copeland": FairCopelandAggregator,
    "fair-footrule": FairFootruleAggregator,
    "fair-mc4": FairMarkovChainAggregator,
    "fair-ranked-pairs": FairRankedPairsAggregator,
    "kemeny": UnawareKemenyBaseline,
    "kemeny-weighted": KemenyWeightedBaseline,
    "pick-fairest-perm": PickFairestPermBaseline,
    "correct-fairest-perm": CorrectFairestPermBaseline,
}


def available_fair_methods() -> tuple[str, ...]:
    """Names accepted by :func:`get_fair_method` (paper labels also work)."""
    return tuple(_FACTORIES)


def _normalise(name: str) -> str:
    key = name.strip()
    if key.upper() in PAPER_LABELS:
        key = PAPER_LABELS[key.upper()]
    return key.lower()


def canonical_fair_method_name(name: str) -> str:
    """Return the registry key a method name or paper label resolves to.

    ``"A3"``, ``"Fair-Borda"`` and ``"fair-borda"`` all canonicalise to
    ``"fair-borda"``.  The consensus cache keys every result by this
    canonical name so equivalent spellings share one cache entry.
    """
    key = _normalise(name)
    if key not in _FACTORIES:
        raise AggregationError(
            f"unknown fair consensus method {name!r}; available: "
            f"{', '.join(sorted(_FACTORIES))} or labels {', '.join(PAPER_LABELS)}"
        )
    return key


def get_fair_method(name: str) -> FairRankAggregator:
    """Instantiate an MFCR method or baseline by name or paper label (A1–B4)."""
    return _FACTORIES[canonical_fair_method_name(name)]()


def describe_fair_methods() -> dict[str, str]:
    """Map every registry name to the display label its method reports.

    Used by ``mani-rank list``, the ``/stats`` endpoint of ``mani-rank
    serve``, and the README method-table check in ``docs/check_docs.py`` —
    the table must mention every name returned here.
    """
    return {name: factory().name for name, factory in _FACTORIES.items()}


def proposed_methods() -> dict[str, FairRankAggregator]:
    """The paper's four MFCR solutions keyed by their labels A1–A4."""
    return {label: get_fair_method(label) for label in ("A1", "A2", "A3", "A4")}


def baseline_methods() -> dict[str, FairRankAggregator]:
    """The paper's four baselines keyed by their labels B1–B4."""
    return {label: get_fair_method(label) for label in ("B1", "B2", "B3", "B4")}
