"""Polynomial-time MFCR solutions: Fair-Copeland, Fair-Schulze, Fair-Borda.

Each method (Section III-B of the paper) first produces a fairness-unaware
consensus with a fast aggregation method — Copeland, Schulze, or Borda — and
then corrects it with :func:`repro.fair.make_mr_fair.make_mr_fair` until the
MANI-Rank criteria hold at the requested ``Δ``.

:class:`SeededFairAggregator` is the generic "seed + Make-MR-Fair" template so
that any :class:`~repro.aggregation.base.RankAggregator` (e.g. the footrule or
local-search heuristics) can be made fairness-aware; the three named classes
are the paper's methods.

With ``local_repair=True`` the correction is post-processed by
:func:`repro.fair.local_repair.fair_local_kemenization` — a
fairness-preserving local Kemenization that harvests the adjacent swaps which
reduce the Kemeny objective without leaving the MANI-Rank-feasible region
(an extension beyond the paper; runs on the incremental Kemeny-delta and
fairness engines, so the extra cost is one bubble-pass loop).  Passing a
strategy name instead of ``True`` (``"adjacent-swap"``, ``"insertion"``,
``"combined"``) selects the repair neighbourhood via
:func:`repro.fair.local_repair.fair_local_search`; ``"insertion"`` adds
fairness-filtered block moves and never recovers less Kemeny objective than
the adjacent repair.
"""

from __future__ import annotations

from repro.aggregation.base import RankAggregator
from repro.aggregation.borda import BordaAggregator
from repro.aggregation.copeland import CopelandAggregator
from repro.aggregation.footrule import FootruleAggregator
from repro.aggregation.markov_chain import MarkovChainAggregator
from repro.aggregation.ranked_pairs import RankedPairsAggregator
from repro.aggregation.schulze import SchulzeAggregator
from repro.core.candidates import CandidateTable
from repro.core.ranking_set import RankingSet
from repro.fair.base import FairAggregationResult, FairRankAggregator
from repro.fair.make_mr_fair import make_mr_fair
from repro.fairness.thresholds import FairnessThresholds

__all__ = [
    "SeededFairAggregator",
    "FairBordaAggregator",
    "FairCopelandAggregator",
    "FairSchulzeAggregator",
    "FairFootruleAggregator",
    "FairMarkovChainAggregator",
    "FairRankedPairsAggregator",
]


class SeededFairAggregator(FairRankAggregator):
    """Generic MFCR method: fairness-unaware seed consensus + Make-MR-Fair.

    Parameters
    ----------
    seed_aggregator:
        The fairness-unaware method producing the initial consensus.
    name:
        Display name; defaults to ``Fair-<seed name>``.
    local_repair:
        When ``True``, follow the Make-MR-Fair correction with a
        fairness-preserving local Kemenization
        (:func:`repro.fair.local_repair.fair_local_kemenization`) that
        recovers Kemeny objective (and hence PD loss) without violating the
        thresholds.  A strategy name (``"adjacent-swap"``, ``"insertion"``,
        ``"combined"``) selects the repair neighbourhood instead; ``False``
        disables the repair.
    """

    def __init__(
        self,
        seed_aggregator: RankAggregator,
        name: str | None = None,
        local_repair: bool | str = False,
    ) -> None:
        self._seed = seed_aggregator
        if local_repair is True:
            local_repair = "adjacent-swap"
        if local_repair:
            from repro.aggregation.search import get_strategy

            # Validate (and normalise) the strategy name eagerly so a typo
            # fails at construction, not mid-aggregation.
            local_repair = get_strategy(local_repair).name
        self._local_repair: str | bool = local_repair
        self.name = name if name is not None else f"Fair-{seed_aggregator.name}"

    @property
    def seed_aggregator(self) -> RankAggregator:
        """The fairness-unaware method producing the initial consensus."""
        return self._seed

    @property
    def local_repair(self) -> str | bool:
        """The repair strategy name, or ``False`` when the repair is off."""
        return self._local_repair

    def with_local_repair(self, strategy: bool | str) -> "SeededFairAggregator":
        """A copy of this method with the given repair strategy (CLI plumbing).

        The clone reverts to the default ``Fair-<seed>`` name: a bespoke name
        like ``Fair-Borda+LK`` describes a *specific* repair, so keeping it
        while swapping the strategy would mislabel the result (callers that
        care about the repair read the ``repair_strategy`` diagnostic).
        """
        return SeededFairAggregator(self._seed, local_repair=strategy)

    def _aggregate(
        self,
        rankings: RankingSet,
        table: CandidateTable,
        delta: FairnessThresholds,
    ) -> FairAggregationResult:
        seed_result = self._seed.aggregate_with_diagnostics(rankings)
        correction = make_mr_fair(seed_result.ranking, table, delta)
        ranking = correction.ranking
        diagnostics: dict[str, object] = {
            "seed_method": self._seed.name,
            "n_swaps": correction.n_swaps,
            "corrected_entities": correction.corrected_entities,
        }
        if self._local_repair:
            from repro.fair.local_repair import fair_local_search

            repair = fair_local_search(
                rankings, ranking, table, delta, strategy=str(self._local_repair)
            )
            ranking = repair.ranking
            diagnostics["repair_strategy"] = self._local_repair
            diagnostics["repair_swaps"] = repair.n_swaps
            diagnostics["repair_objective"] = repair.objective
            if repair.n_moves is not None:
                diagnostics["repair_moves"] = repair.n_moves
        return FairAggregationResult(
            ranking=ranking,
            method=self.name,
            unaware_ranking=seed_result.ranking,
            diagnostics=diagnostics,
        )


class FairBordaAggregator(SeededFairAggregator):
    """Fair-Borda: Borda consensus corrected with Make-MR-Fair (fastest MFCR method)."""

    def __init__(self, local_repair: bool | str = False) -> None:
        super().__init__(BordaAggregator(), name="Fair-Borda", local_repair=local_repair)


class FairCopelandAggregator(SeededFairAggregator):
    """Fair-Copeland: Copeland consensus corrected with Make-MR-Fair."""

    def __init__(self, local_repair: bool | str = False) -> None:
        super().__init__(
            CopelandAggregator(), name="Fair-Copeland", local_repair=local_repair
        )


class FairSchulzeAggregator(SeededFairAggregator):
    """Fair-Schulze: Schulze consensus corrected with Make-MR-Fair."""

    def __init__(self, local_repair: bool | str = False) -> None:
        super().__init__(
            SchulzeAggregator(), name="Fair-Schulze", local_repair=local_repair
        )


class FairFootruleAggregator(SeededFairAggregator):
    """Fair-Footrule: footrule-optimal consensus corrected with Make-MR-Fair.

    Not part of the paper's method family; included as an extension and used
    by the ablation benchmarks on the choice of seed method.
    """

    def __init__(self) -> None:
        super().__init__(FootruleAggregator(), name="Fair-Footrule")


class FairMarkovChainAggregator(SeededFairAggregator):
    """Fair-MC4: Markov-chain (MC4) consensus corrected with Make-MR-Fair.

    Not part of the paper's method family; included as an extension because
    MC4 is the strongest heuristic of the web rank-aggregation line of work
    the paper builds on.
    """

    def __init__(self) -> None:
        super().__init__(MarkovChainAggregator(), name="Fair-MC4")


class FairRankedPairsAggregator(SeededFairAggregator):
    """Fair-Ranked-Pairs: Tideman consensus corrected with Make-MR-Fair (extension)."""

    def __init__(self) -> None:
        super().__init__(RankedPairsAggregator(), name="Fair-Ranked-Pairs")
