"""Polynomial-time MFCR solutions: Fair-Copeland, Fair-Schulze, Fair-Borda.

Each method (Section III-B of the paper) first produces a fairness-unaware
consensus with a fast aggregation method — Copeland, Schulze, or Borda — and
then corrects it with :func:`repro.fair.make_mr_fair.make_mr_fair` until the
MANI-Rank criteria hold at the requested ``Δ``.

:class:`SeededFairAggregator` is the generic "seed + Make-MR-Fair" template so
that any :class:`~repro.aggregation.base.RankAggregator` (e.g. the footrule or
local-search heuristics) can be made fairness-aware; the three named classes
are the paper's methods.
"""

from __future__ import annotations

from repro.aggregation.base import RankAggregator
from repro.aggregation.borda import BordaAggregator
from repro.aggregation.copeland import CopelandAggregator
from repro.aggregation.footrule import FootruleAggregator
from repro.aggregation.markov_chain import MarkovChainAggregator
from repro.aggregation.ranked_pairs import RankedPairsAggregator
from repro.aggregation.schulze import SchulzeAggregator
from repro.core.candidates import CandidateTable
from repro.core.ranking_set import RankingSet
from repro.fair.base import FairAggregationResult, FairRankAggregator
from repro.fair.make_mr_fair import make_mr_fair
from repro.fairness.thresholds import FairnessThresholds

__all__ = [
    "SeededFairAggregator",
    "FairBordaAggregator",
    "FairCopelandAggregator",
    "FairSchulzeAggregator",
    "FairFootruleAggregator",
    "FairMarkovChainAggregator",
    "FairRankedPairsAggregator",
]


class SeededFairAggregator(FairRankAggregator):
    """Generic MFCR method: fairness-unaware seed consensus + Make-MR-Fair."""

    def __init__(self, seed_aggregator: RankAggregator, name: str | None = None) -> None:
        self._seed = seed_aggregator
        self.name = name if name is not None else f"Fair-{seed_aggregator.name}"

    @property
    def seed_aggregator(self) -> RankAggregator:
        """The fairness-unaware method producing the initial consensus."""
        return self._seed

    def _aggregate(
        self,
        rankings: RankingSet,
        table: CandidateTable,
        delta: FairnessThresholds,
    ) -> FairAggregationResult:
        seed_result = self._seed.aggregate_with_diagnostics(rankings)
        correction = make_mr_fair(seed_result.ranking, table, delta)
        return FairAggregationResult(
            ranking=correction.ranking,
            method=self.name,
            unaware_ranking=seed_result.ranking,
            diagnostics={
                "seed_method": self._seed.name,
                "n_swaps": correction.n_swaps,
                "corrected_entities": correction.corrected_entities,
            },
        )


class FairBordaAggregator(SeededFairAggregator):
    """Fair-Borda: Borda consensus corrected with Make-MR-Fair (fastest MFCR method)."""

    def __init__(self) -> None:
        super().__init__(BordaAggregator(), name="Fair-Borda")


class FairCopelandAggregator(SeededFairAggregator):
    """Fair-Copeland: Copeland consensus corrected with Make-MR-Fair."""

    def __init__(self) -> None:
        super().__init__(CopelandAggregator(), name="Fair-Copeland")


class FairSchulzeAggregator(SeededFairAggregator):
    """Fair-Schulze: Schulze consensus corrected with Make-MR-Fair."""

    def __init__(self) -> None:
        super().__init__(SchulzeAggregator(), name="Fair-Schulze")


class FairFootruleAggregator(SeededFairAggregator):
    """Fair-Footrule: footrule-optimal consensus corrected with Make-MR-Fair.

    Not part of the paper's method family; included as an extension and used
    by the ablation benchmarks on the choice of seed method.
    """

    def __init__(self) -> None:
        super().__init__(FootruleAggregator(), name="Fair-Footrule")


class FairMarkovChainAggregator(SeededFairAggregator):
    """Fair-MC4: Markov-chain (MC4) consensus corrected with Make-MR-Fair.

    Not part of the paper's method family; included as an extension because
    MC4 is the strongest heuristic of the web rank-aggregation line of work
    the paper builds on.
    """

    def __init__(self) -> None:
        super().__init__(MarkovChainAggregator(), name="Fair-MC4")


class FairRankedPairsAggregator(SeededFairAggregator):
    """Fair-Ranked-Pairs: Tideman consensus corrected with Make-MR-Fair (extension)."""

    def __init__(self) -> None:
        super().__init__(RankedPairsAggregator(), name="Fair-Ranked-Pairs")
