"""Sharded Make-MR-Fair: correct many rankings across a process pool.

Multi-consensus workloads — correcting every base ranking of a profile, a
batch of per-query consensus rankings, or the candidates of a
pick-fairest-style baseline — run Make-MR-Fair (Algorithm 2) once per
ranking.  The corrections are mutually independent (each one reads only its
own ranking plus the shared candidate table), so the batch parallelises
trivially: :func:`make_mr_fair_sharded` splits the rankings into contiguous
shards, repairs each shard in a worker process, and reassembles the results
in input order.

Bit-identity: every shard runs the exact serial
:func:`~repro.fair.make_mr_fair.make_mr_fair` on the same inputs, and no
correction reads another's output, so the result list is **bit-identical** to
the serial loop for every shard count (the property tests in
``tests/fair/test_sharding.py`` replay randomized batches through both
paths).  Workers resolve the kernel backend *by name*, so a batch sharded
under an explicitly selected backend uses that backend in every worker.
"""

from __future__ import annotations

import os
from collections.abc import Mapping, Sequence

from repro.core.candidates import CandidateTable
from repro.core.ranking import Ranking
from repro.exceptions import ValidationError
from repro.fair.make_mr_fair import MakeMRFairResult, make_mr_fair
from repro.fairness.thresholds import FairnessThresholds
from repro.kernels import KernelBackend, resolve_backend

__all__ = ["make_mr_fair_sharded", "default_shard_count"]


def default_shard_count(n_rankings: int) -> int:
    """Default shard count: one per CPU, never more than one per ranking."""
    return max(1, min(n_rankings, os.cpu_count() or 1))


def make_mr_fair_sharded(
    rankings: Sequence[Ranking],
    table: CandidateTable,
    delta: FairnessThresholds | float | Mapping[str, float],
    max_swaps: int | None = None,
    n_shards: int | None = None,
    backend: KernelBackend | str | None = None,
) -> list[MakeMRFairResult]:
    """Run Make-MR-Fair on every ranking, sharded over a process pool.

    Parameters
    ----------
    rankings:
        The rankings to correct (each independently, against the same table).
    table:
        Candidate table defining the protected attributes and intersection.
    delta:
        Fairness threshold(s); see
        :class:`~repro.fairness.thresholds.FairnessThresholds`.
    max_swaps:
        Per-ranking safety cap, forwarded to
        :func:`~repro.fair.make_mr_fair.make_mr_fair`.
    n_shards:
        Number of worker shards.  ``None`` picks
        :func:`default_shard_count`; ``1`` (or a single-ranking batch) runs
        serially in-process with no pool overhead.
    backend:
        Compute-kernel backend (:mod:`repro.kernels`).  Resolved *in this
        process* first (so unknown names fail fast) and re-resolved by name
        inside each worker.

    Returns
    -------
    list[MakeMRFairResult]
        One result per input ranking, in input order — bit-identical to
        ``[make_mr_fair(r, table, delta, max_swaps) for r in rankings]``.
    """
    batch = list(rankings)
    if not batch:
        return []
    for index, ranking in enumerate(batch):
        if not isinstance(ranking, Ranking):
            raise ValidationError(
                f"item {index} is not a Ranking (got {type(ranking).__name__})"
            )
    resolved = resolve_backend(backend)
    shards = default_shard_count(len(batch)) if n_shards is None else int(n_shards)
    if shards < 1:
        raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
    shards = min(shards, len(batch))
    if shards == 1:
        return [
            make_mr_fair(ranking, table, delta, max_swaps=max_swaps, backend=resolved)
            for ranking in batch
        ]

    from concurrent.futures import ProcessPoolExecutor

    thresholds = FairnessThresholds.coerce(delta)
    # Contiguous shards, sized within one ranking of each other, reassembled
    # by pool.map in submission (= input) order.
    bounds = [round(i * len(batch) / shards) for i in range(shards + 1)]
    tasks = [
        (batch[bounds[i] : bounds[i + 1]], table, thresholds, max_swaps, resolved.name)
        for i in range(shards)
        if bounds[i] < bounds[i + 1]
    ]
    results: list[MakeMRFairResult] = []
    with ProcessPoolExecutor(max_workers=len(tasks)) as pool:
        for shard_results in pool.map(_repair_shard, tasks):
            results.extend(shard_results)
    return results


def _repair_shard(
    task: tuple[
        list[Ranking],
        CandidateTable,
        FairnessThresholds,
        int | None,
        str,
    ],
) -> list[MakeMRFairResult]:
    """Worker entry point: repair one contiguous shard serially.

    Module-level so it pickles under every multiprocessing start method.
    """
    shard, table, thresholds, max_swaps, backend_name = task
    return [
        make_mr_fair(
            ranking, table, thresholds, max_swaps=max_swaps, backend=backend_name
        )
        for ranking in shard
    ]
