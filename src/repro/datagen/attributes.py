"""Generators for candidate tables with protected-attribute structure.

These functions build the candidate universes used throughout the paper's
synthetic experiments:

* :func:`balanced_candidate_table` — every intersectional group has the same
  size (the 90-candidate Race(5) × Gender(3) universe of Table I has 6
  candidates per intersectional group);
* :func:`proportional_candidate_table` — attribute values drawn independently
  with specified proportions (used for scalability experiments where group
  sizes only need to be roughly controlled);
* :func:`paper_mallows_table` and :func:`scalability_table` — the concrete
  configurations referenced by the experiment modules.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.candidates import CandidateTable
from repro.exceptions import DataGenerationError

__all__ = [
    "balanced_candidate_table",
    "proportional_candidate_table",
    "paper_mallows_table",
    "small_mallows_table",
    "scalability_table",
    "GENDER_DOMAIN",
    "RACE_DOMAIN",
]

#: Attribute domains used by the paper's running admissions example.
GENDER_DOMAIN = ("Man", "Non-binary", "Woman")
RACE_DOMAIN = ("AlaskaNat", "Asian", "Black", "NatHawaii", "White")


def balanced_candidate_table(
    domains: Mapping[str, Sequence[object]],
    group_size: int,
) -> CandidateTable:
    """Build a table where every intersectional group has exactly ``group_size`` members.

    The total number of candidates is ``group_size * prod(|domain|)``.
    Candidates are laid out intersection-group by intersection-group but ids
    carry no ordering semantics (rankings decide positions).
    """
    if group_size <= 0:
        raise DataGenerationError(f"group_size must be positive, got {group_size}")
    names = list(domains)
    if not names:
        raise DataGenerationError("at least one attribute domain is required")
    combos = list(itertools.product(*(domains[name] for name in names)))
    columns: dict[str, list[object]] = {name: [] for name in names}
    for combo in combos:
        for _ in range(group_size):
            for attribute, value in zip(names, combo):
                columns[attribute].append(value)
    return CandidateTable(columns, domains={name: tuple(domains[name]) for name in names})


def proportional_candidate_table(
    n_candidates: int,
    domains: Mapping[str, Sequence[object]],
    proportions: Mapping[str, Sequence[float]] | None = None,
    rng: np.random.Generator | int | None = None,
) -> CandidateTable:
    """Build a table of ``n_candidates`` with independently drawn attribute values.

    Parameters
    ----------
    n_candidates:
        Number of candidates.
    domains:
        Mapping attribute name -> value domain.
    proportions:
        Optional per-attribute value proportions (must sum to 1); defaults to
        uniform.  Sampling guarantees every value appears at least once so
        that no group is empty (required for the FPR to be defined), provided
        ``n_candidates >= |domain|``.
    rng:
        Numpy generator or seed.
    """
    if n_candidates <= 0:
        raise DataGenerationError(f"n_candidates must be positive, got {n_candidates}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    columns: dict[str, list[object]] = {}
    for name, domain in domains.items():
        domain = list(domain)
        if n_candidates < len(domain):
            raise DataGenerationError(
                f"cannot give every value of {name!r} at least one candidate: "
                f"{n_candidates} candidates for {len(domain)} values"
            )
        if proportions and name in proportions:
            weights = np.asarray(proportions[name], dtype=float)
            if weights.shape != (len(domain),):
                raise DataGenerationError(
                    f"proportions for {name!r} must have {len(domain)} entries"
                )
            if not np.isclose(weights.sum(), 1.0):
                raise DataGenerationError(
                    f"proportions for {name!r} must sum to 1, got {weights.sum()}"
                )
        else:
            weights = np.full(len(domain), 1.0 / len(domain))
        # Guarantee one candidate per value, then fill the rest proportionally.
        values = list(domain)
        remaining = n_candidates - len(domain)
        if remaining > 0:
            drawn = rng.choice(len(domain), size=remaining, p=weights)
            values.extend(domain[int(index)] for index in drawn)
        rng.shuffle(values)
        columns[name] = values
    return CandidateTable(columns, domains={name: tuple(domain) for name, domain in domains.items()})


def paper_mallows_table(group_size: int = 6) -> CandidateTable:
    """The Table I candidate universe: Race(5) × Gender(3), ``group_size`` per intersection.

    With the default ``group_size=6`` this is the 90-candidate universe used
    by Figures 3–5.
    """
    return balanced_candidate_table(
        {"Gender": GENDER_DOMAIN, "Race": RACE_DOMAIN}, group_size=group_size
    )


def small_mallows_table(group_size: int = 2) -> CandidateTable:
    """A reduced Figures 3–5 universe: Gender(2) × Race(3), ``group_size`` per intersection.

    Used by the ``ci`` experiment scale so the exact-ILP methods (Kemeny and
    Fair-Kemeny solved with HiGHS rather than CPLEX) finish in seconds while
    still exercising multi-valued attributes and a six-group intersection.
    """
    return balanced_candidate_table(
        {"Gender": ("Man", "Woman"), "Race": ("Asian", "Black", "White")},
        group_size=group_size,
    )


def scalability_table(
    n_candidates: int, rng: np.random.Generator | int | None = 7
) -> CandidateTable:
    """The scalability-study universe: binary Race and Gender over ``n_candidates``.

    Matches the setup of Figures 6–7 and Tables II–III (``dom(Race) = 2``,
    ``dom(Gender) = 2``).
    """
    return proportional_candidate_table(
        n_candidates,
        {"Gender": ("Man", "Woman"), "Race": ("White", "Non-white")},
        rng=rng,
    )
