"""Synthetic CSRankings-like dataset (the appendix case study, Table V).

The appendix of the paper aggregates 21 yearly CSRankings orderings
(2000–2020) of 65 US computer-science departments into a 20-year consensus
ranking, using two protected attributes of the *institutions*: geographic
Location (Northeast, Midwest, West, South) and Type (Private, Public).  The
base rankings exhibit a persistent advantage for Northeast and Private
institutions, which Kemeny amplifies and the MFCR methods remove.

CSRankings data is scraped from csrankings.org, so this module generates a
synthetic equivalent (substitution documented in DESIGN.md): each department
has a latent quality score with a Northeast and Private bonus, and each year's
ranking is the quality ordering perturbed by year-specific noise.  The result
reproduces the structural facts Table V relies on — high Location ARP, a
Private advantage, and IRP around 0.5 for the base rankings and the Kemeny
consensus.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.candidates import CandidateTable
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import DataGenerationError

__all__ = ["CSRankingsDataset", "generate_csrankings_dataset"]

_LOCATION_DOMAIN = ("Northeast", "Midwest", "West", "South")
_TYPE_DOMAIN = ("Private", "Public")

#: Department counts per region roughly matching the 65-institution study.
_LOCATION_COUNTS = {"Northeast": 20, "Midwest": 15, "West": 16, "South": 14}
#: Probability a department in each region is private.
_PRIVATE_PROBABILITY = {"Northeast": 0.65, "Midwest": 0.40, "West": 0.45, "South": 0.35}

#: Latent quality bonuses creating the persistent bias observed in Table V.
_LOCATION_BONUS = {"Northeast": +0.9, "Midwest": -0.1, "West": +0.45, "South": -1.0}
_TYPE_BONUS = {"Private": +0.5, "Public": 0.0}
_QUALITY_STD = 1.0
_YEAR_NOISE_STD = 0.55


@dataclass(frozen=True)
class CSRankingsDataset:
    """Synthetic CSRankings dataset: departments, yearly rankings, and years."""

    table: CandidateTable
    rankings: RankingSet
    years: tuple[int, ...]


def generate_csrankings_dataset(
    n_departments: int = 65,
    first_year: int = 2000,
    last_year: int = 2020,
    seed: int | None = 41,
) -> CSRankingsDataset:
    """Generate the synthetic CSRankings dataset used by the Table V reproduction.

    Parameters
    ----------
    n_departments:
        Number of departments (the paper uses 65).
    first_year / last_year:
        Inclusive year range; each year contributes one base ranking.
    seed:
        Seed controlling both department attributes and yearly noise.
    """
    if last_year < first_year:
        raise DataGenerationError(
            f"last_year ({last_year}) must not precede first_year ({first_year})"
        )
    if n_departments < 8:
        raise DataGenerationError(
            f"the CSRankings case study needs at least 8 departments, got {n_departments}"
        )
    rng = np.random.default_rng(seed)

    # Allocate departments to regions proportionally to the reference counts.
    reference_total = sum(_LOCATION_COUNTS.values())
    locations: list[str] = []
    for region, count in _LOCATION_COUNTS.items():
        allocated = max(1, round(n_departments * count / reference_total))
        locations.extend([region] * allocated)
    locations = locations[:n_departments]
    while len(locations) < n_departments:
        locations.append("Midwest")
    rng.shuffle(locations)

    types = [
        "Private" if rng.random() < _PRIVATE_PROBABILITY[region] else "Public"
        for region in locations
    ]
    # Guarantee both types appear.
    if "Private" not in types:
        types[0] = "Private"
    if "Public" not in types:
        types[-1] = "Public"

    table = CandidateTable(
        {"Location": locations, "Type": types},
        names=[f"dept-{index:02d}" for index in range(n_departments)],
        domains={"Location": _LOCATION_DOMAIN, "Type": _TYPE_DOMAIN},
    )

    quality = rng.normal(0.0, _QUALITY_STD, size=n_departments)
    quality += np.array([_LOCATION_BONUS[region] for region in locations])
    quality += np.array([_TYPE_BONUS[kind] for kind in types])

    years = tuple(range(first_year, last_year + 1))
    rankings = []
    for _ in years:
        yearly = quality + rng.normal(0.0, _YEAR_NOISE_STD, size=n_departments)
        rankings.append(Ranking.from_scores(yearly, descending=True))
    ranking_set = RankingSet(rankings, labels=[str(year) for year in years])
    return CSRankingsDataset(table=table, rankings=ranking_set, years=years)
