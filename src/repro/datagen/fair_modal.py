"""Fairness-controlled modal rankings (the Low/Medium/High-Fair datasets of Table I).

The paper controls the fairness of the base rankings by fixing the fairness of
the Mallows *modal* ranking and then varying the spread ``θ``.  This module
offers three ways to construct such modal rankings:

1. :func:`privileged_modal_ranking` — a maximally biased ranking in which
   candidates are sorted by a privilege score derived from their attribute
   values (the most privileged intersectional group sits entirely at the top,
   the least privileged entirely at the bottom, so IRP = 1).
2. :func:`biased_modal_ranking` — a score-based ranking where each protected
   attribute contributes a tunable bias strength; the stronger the bias, the
   larger that attribute's ARP.
3. :func:`calibrated_modal_ranking` — per-attribute bisection on the bias
   strengths of (2) until every attribute's ARP matches its target to within
   a tolerance.  This is what the named Table I profiles use, because the
   attribute biases are (nearly) decoupled under the score model, so hitting
   per-attribute targets does not destroy the intersectional profile.

The achieved profile is always recorded alongside the generated dataset so
experiments report paper-target vs achieved values.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.candidates import CandidateTable
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.datagen.mallows import sample_mallows
from repro.exceptions import DataGenerationError
from repro.fair.make_mr_fair import make_mr_fair
from repro.fairness.parity import parity_scores
from repro.fairness.thresholds import FairnessThresholds

__all__ = [
    "FAIRNESS_PROFILES",
    "privileged_modal_ranking",
    "biased_modal_ranking",
    "calibrated_modal_ranking",
    "modal_ranking_with_parity_targets",
    "profile_modal_ranking",
    "MallowsFairnessDataset",
    "generate_mallows_dataset",
]

#: Target (ARP_Gender, ARP_Race, IRP) profiles of Table I.  Keys are the
#: dataset names used throughout Section IV.
FAIRNESS_PROFILES: dict[str, dict[str, float]] = {
    "low": {"Gender": 0.70, "Race": 0.70, CandidateTable.INTERSECTION: 1.00},
    "medium": {"Gender": 0.50, "Race": 0.50, CandidateTable.INTERSECTION: 0.75},
    "high": {"Gender": 0.30, "Race": 0.30, CandidateTable.INTERSECTION: 0.54},
}


def privileged_modal_ranking(
    table: CandidateTable,
    privilege_order: Mapping[str, Sequence[object]] | None = None,
    rng: np.random.Generator | int | None = None,
) -> Ranking:
    """Maximally biased ranking: candidates sorted by attribute privilege.

    Parameters
    ----------
    table:
        Candidate universe.
    privilege_order:
        Per-attribute value order from most to least privileged.  Defaults to
        the attribute's declared domain order.
    rng:
        Optional generator used to shuffle candidates *within* identical
        privilege profiles (does not change any parity score).
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    orders: dict[str, dict[object, int]] = {}
    for attribute in table.attributes:
        if privilege_order and attribute.name in privilege_order:
            declared = list(privilege_order[attribute.name])
            missing = set(attribute.domain) - set(declared)
            if missing:
                raise DataGenerationError(
                    f"privilege order for {attribute.name!r} is missing values "
                    f"{sorted(map(str, missing))}"
                )
            orders[attribute.name] = {value: index for index, value in enumerate(declared)}
        else:
            orders[attribute.name] = {
                value: index for index, value in enumerate(attribute.domain)
            }
    tiebreak = rng.permutation(table.n_candidates)
    keys = []
    for candidate in table.candidate_ids:
        privilege = tuple(
            orders[name][table.value_of(candidate, name)]
            for name in table.attribute_names
        )
        keys.append((privilege, int(tiebreak[candidate]), candidate))
    ordered = [candidate for _, _, candidate in sorted(keys)]
    return Ranking(np.asarray(ordered, dtype=np.int64), validate=False)


def _privilege_levels(
    table: CandidateTable,
    privilege_order: Mapping[str, Sequence[object]] | None = None,
) -> dict[str, dict[object, float]]:
    """Per-attribute mapping value -> privilege level in [0, 1] (1 = most privileged)."""
    levels: dict[str, dict[object, float]] = {}
    for attribute in table.attributes:
        if privilege_order and attribute.name in privilege_order:
            ordered = list(privilege_order[attribute.name])
            missing = set(attribute.domain) - set(ordered)
            if missing:
                raise DataGenerationError(
                    f"privilege order for {attribute.name!r} is missing values "
                    f"{sorted(map(str, missing))}"
                )
        else:
            ordered = list(attribute.domain)
        span = max(len(ordered) - 1, 1)
        levels[attribute.name] = {
            value: 1.0 - index / span for index, value in enumerate(ordered)
        }
    return levels


def biased_modal_ranking(
    table: CandidateTable,
    bias_strengths: Mapping[str, float],
    rng: np.random.Generator | int | None = None,
    noise: np.ndarray | None = None,
) -> Ranking:
    """Rank candidates by biased latent scores.

    Each candidate's score is ``sum_attr strength[attr] * privilege(value) +
    noise`` with uniform(0, 1) noise, so ``strength = 0`` gives an unbiased
    (random) ranking and large strengths sort candidates by privilege.

    Parameters
    ----------
    bias_strengths:
        Non-negative bias strength per attribute name (missing attributes get
        strength 0).
    rng:
        Generator or seed used to draw the noise when ``noise`` is not given.
    noise:
        Optional pre-drawn noise vector (one value per candidate); passing the
        same noise across calls makes the ranking a deterministic, monotone
        function of the strengths, which the calibration relies on.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    if noise is None:
        noise = rng.uniform(0.0, 1.0, size=table.n_candidates)
    elif noise.shape != (table.n_candidates,):
        raise DataGenerationError(
            f"noise must have one entry per candidate, got shape {noise.shape}"
        )
    levels = _privilege_levels(table)
    scores = noise.astype(float).copy()
    for name, strength in bias_strengths.items():
        if name not in levels:
            raise DataGenerationError(f"unknown attribute {name!r} in bias_strengths")
        if strength < 0:
            raise DataGenerationError(
                f"bias strength for {name!r} must be non-negative, got {strength}"
            )
        column = table.column(name)
        scores += strength * np.array([levels[name][value] for value in column])
    return Ranking.from_scores(scores, descending=True)


def calibrated_modal_ranking(
    table: CandidateTable,
    targets: Mapping[str, float],
    rng: np.random.Generator | int | None = None,
    tolerance: float = 0.02,
    max_strength: float = 25.0,
    rounds: int = 3,
    bisection_steps: int = 18,
) -> Ranking:
    """Modal ranking whose per-attribute ARP scores match ``targets``.

    Runs coordinate-wise bisection on the bias strength of every targeted
    attribute (holding the others fixed) for a few rounds; because the
    attributes of the generated tables are (close to) independent, the ARP of
    one attribute is nearly unaffected by the other strengths and the search
    converges quickly.  Targets for the intersection cannot be set directly —
    the intersectional profile emerges from the attribute biases — and are
    ignored here (they are reported as achieved values by the dataset
    generator).
    """
    from repro.fairness.parity import arp  # local import to avoid cycle at import time

    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    noise = rng.uniform(0.0, 1.0, size=table.n_candidates)
    attribute_targets = {
        name: float(value)
        for name, value in targets.items()
        if name in table.attribute_names
    }
    for name, value in attribute_targets.items():
        if not 0.0 <= value <= 1.0:
            raise DataGenerationError(
                f"target ARP for {name!r} must be in [0, 1], got {value}"
            )
    strengths = {name: 0.0 for name in attribute_targets}
    for _ in range(rounds):
        for name, target in attribute_targets.items():
            low, high = 0.0, max_strength
            for _ in range(bisection_steps):
                middle = (low + high) / 2.0
                strengths[name] = middle
                ranking = biased_modal_ranking(table, strengths, noise=noise)
                achieved = arp(ranking, table, name)
                if abs(achieved - target) <= tolerance:
                    break
                if achieved < target:
                    low = middle
                else:
                    high = middle
    return biased_modal_ranking(table, strengths, noise=noise)


def modal_ranking_with_parity_targets(
    table: CandidateTable,
    targets: Mapping[str, float],
    privilege_order: Mapping[str, Sequence[object]] | None = None,
    rng: np.random.Generator | int | None = None,
) -> Ranking:
    """Modal ranking whose ARP/IRP scores sit at (or just below) ``targets``.

    Entities missing from ``targets`` default to a threshold of 1.0, i.e. are
    left unconstrained.
    """
    start = privileged_modal_ranking(table, privilege_order=privilege_order, rng=rng)
    thresholds = FairnessThresholds(1.0, dict(targets))
    return make_mr_fair(start, table, thresholds).ranking


def _cap_to_targets(
    modal: Ranking,
    table: CandidateTable,
    targets: Mapping[str, float],
) -> Ranking:
    """Ensure no targeted entity exceeds its target ARP/IRP.

    On small candidate universes the score-based calibration cannot reach
    targets below the "noise floor" of a random ranking, so the generated
    modal ranking may overshoot.  This helper applies the paper's own
    Make-MR-Fair correction with the targets as per-entity thresholds, which
    only ever *reduces* parity scores, leaving every targeted entity at or
    just below its target.
    """
    scores = parity_scores(modal, table)
    exceeded = any(
        scores.get(entity, 0.0) > value + 1e-9 for entity, value in targets.items()
    )
    if not exceeded:
        return modal
    thresholds = FairnessThresholds(1.0, dict(targets))
    return make_mr_fair(modal, table, thresholds).ranking


def profile_modal_ranking(
    table: CandidateTable,
    profile: str,
    rng: np.random.Generator | int | None = None,
) -> Ranking:
    """Modal ranking for one of the named Table I profiles (low / medium / high).

    The per-attribute ARP targets of the profile are hit through
    :func:`calibrated_modal_ranking`; the intersectional profile largely
    emerges from the attribute biases, and any targeted entity that still
    exceeds its target (possible on small universes) is capped with a
    Make-MR-Fair pass.  Achieved values are reported alongside the generated
    dataset.
    """
    key = profile.strip().lower().replace("-fair", "")
    if key not in FAIRNESS_PROFILES:
        raise DataGenerationError(
            f"unknown fairness profile {profile!r}; expected one of "
            f"{', '.join(FAIRNESS_PROFILES)}"
        )
    targets = FAIRNESS_PROFILES[key]
    usable = {
        entity: value
        for entity, value in targets.items()
        if entity in table.attribute_names
    }
    if not usable:
        raise DataGenerationError(
            f"profile {profile!r} targets attributes "
            f"{sorted(set(targets) - {table.INTERSECTION})} but the table has "
            f"attributes {list(table.attribute_names)}"
        )
    modal = calibrated_modal_ranking(table, usable, rng=rng)
    # Cap only the attribute targets: the intersectional profile is emergent
    # (capping it too would drag the attribute ARPs far below their targets,
    # distorting the profile more than the IRP mismatch it fixes).
    return _cap_to_targets(modal, table, usable)


@dataclass(frozen=True)
class MallowsFairnessDataset:
    """A Mallows dataset with a fairness-controlled modal ranking.

    Attributes mirror the quantities reported in Table I: the candidate table,
    the modal ranking, its achieved parity scores, the spread parameter, and
    the sampled base rankings.
    """

    name: str
    table: CandidateTable
    modal: Ranking
    theta: float
    rankings: RankingSet
    modal_parity: dict[str, float]


def generate_mallows_dataset(
    table: CandidateTable,
    profile: str | Mapping[str, float],
    theta: float,
    n_rankings: int,
    rng: np.random.Generator | int | None = None,
    name: str | None = None,
) -> MallowsFairnessDataset:
    """Generate a full Mallows dataset with a fairness-controlled modal ranking.

    Parameters
    ----------
    table:
        Candidate universe (e.g. :func:`repro.datagen.attributes.paper_mallows_table`).
    profile:
        Either a named Table I profile (``"low"``, ``"medium"``, ``"high"``)
        or an explicit mapping of parity targets.
    theta:
        Mallows spread parameter controlling consensus strength.
    n_rankings:
        Number of base rankings to sample.
    rng:
        Numpy generator or seed (drives both modal construction tie-breaking
        and Mallows sampling).
    name:
        Optional dataset name (defaults to the profile name).
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    if isinstance(profile, str):
        modal = profile_modal_ranking(table, profile, rng=rng)
        dataset_name = name or f"{profile.lower()}-fair"
    else:
        attribute_targets = {
            entity: value
            for entity, value in profile.items()
            if entity in table.attribute_names
        }
        modal = calibrated_modal_ranking(table, attribute_targets, rng=rng)
        modal = _cap_to_targets(modal, table, dict(profile))
        dataset_name = name or "custom"
    rankings = sample_mallows(modal, theta, n_rankings, rng=rng)
    return MallowsFairnessDataset(
        name=dataset_name,
        table=table,
        modal=modal,
        theta=theta,
        rankings=rankings,
        modal_parity=parity_scores(modal, table),
    )
