"""Synthetic data generators: Mallows rankings, fairness profiles, case-study datasets."""

from repro.datagen.attributes import (
    GENDER_DOMAIN,
    RACE_DOMAIN,
    balanced_candidate_table,
    paper_mallows_table,
    proportional_candidate_table,
    small_mallows_table,
    scalability_table,
)
from repro.datagen.csrankings import CSRankingsDataset, generate_csrankings_dataset
from repro.datagen.exams import SUBJECTS, ExamDataset, generate_exam_dataset
from repro.datagen.fair_modal import (
    FAIRNESS_PROFILES,
    MallowsFairnessDataset,
    biased_modal_ranking,
    calibrated_modal_ranking,
    generate_mallows_dataset,
    modal_ranking_with_parity_targets,
    privileged_modal_ranking,
    profile_modal_ranking,
)
from repro.datagen.mallows import (
    expected_kendall_distance,
    mallows_normalization,
    sample_mallows,
    sample_mallows_position_matrix,
    sample_mallows_ranking,
    sample_mallows_ranking_reference,
)

__all__ = [
    "balanced_candidate_table",
    "proportional_candidate_table",
    "paper_mallows_table",
    "small_mallows_table",
    "scalability_table",
    "GENDER_DOMAIN",
    "RACE_DOMAIN",
    "sample_mallows",
    "sample_mallows_position_matrix",
    "sample_mallows_ranking",
    "sample_mallows_ranking_reference",
    "expected_kendall_distance",
    "mallows_normalization",
    "FAIRNESS_PROFILES",
    "privileged_modal_ranking",
    "biased_modal_ranking",
    "calibrated_modal_ranking",
    "modal_ranking_with_parity_targets",
    "profile_modal_ranking",
    "MallowsFairnessDataset",
    "generate_mallows_dataset",
    "ExamDataset",
    "generate_exam_dataset",
    "SUBJECTS",
    "CSRankingsDataset",
    "generate_csrankings_dataset",
]
