"""Synthetic student exam-score dataset (the merit-scholarship case study).

The paper's case study (Section IV-F, Table IV) uses the publicly available
"Exam Scores" generated dataset by Royce Kimmons [34]: per-student math,
reading and writing scores with three protected attributes — Gender (man /
woman), Race (five racial groups) and Lunch (whether the student receives
subsidised lunch).  The three subject score columns become three base
rankings over 200 students.

That generator is an external web tool, so this module re-creates the same
*structure* synthetically (the substitution is documented in DESIGN.md):

* Lunch has the largest effect on all three subjects (students without
  subsidised lunch score visibly higher) — this drives the large Lunch ARP of
  the base rankings in Table IV;
* Gender effects differ by subject: men score slightly higher in math, women
  clearly higher in reading and writing — matching the sign flips of the
  Gender FPR columns of Table IV;
* Race groups have moderate mean offsets, with the "NatHawaii" group
  disadvantaged — matching the low NatHawaii FPR of Table IV.

Scores are drawn from group-conditional normal distributions with a fixed
seed, so the dataset (and every number derived from it) is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.candidates import CandidateTable
from repro.core.ranking_set import RankingSet
from repro.exceptions import DataGenerationError

__all__ = ["ExamDataset", "generate_exam_dataset", "SUBJECTS"]

#: The three exam subjects; each becomes one base ranking.
SUBJECTS = ("Math", "Reading", "Writing")

_GENDER_DOMAIN = ("Man", "Woman")
_RACE_DOMAIN = ("Asian", "White", "Black", "AlaskaNat", "NatHawaii")
_LUNCH_DOMAIN = ("NoSub", "SubLunch")

#: Marginal probabilities of each attribute value (loosely mirroring the
#: public dataset's distribution).
_GENDER_PROPORTIONS = (0.48, 0.52)
_RACE_PROPORTIONS = (0.18, 0.32, 0.20, 0.18, 0.12)
_LUNCH_PROPORTIONS = (0.64, 0.36)

#: Additive mean score effects per subject (points on a 0-100 scale).
_LUNCH_EFFECT = {"NoSub": 0.0, "SubLunch": -9.0}
_GENDER_EFFECT = {
    "Math": {"Man": +2.5, "Woman": 0.0},
    "Reading": {"Man": 0.0, "Woman": +6.0},
    "Writing": {"Man": 0.0, "Woman": +7.0},
}
_RACE_EFFECT = {
    "Asian": +4.0,
    "White": 0.0,
    "Black": +2.0,
    "AlaskaNat": +1.0,
    "NatHawaii": -7.0,
}
_BASE_MEAN = 66.0
_STUDENT_STD = 9.0
_SUBJECT_NOISE_STD = 4.0


@dataclass(frozen=True)
class ExamDataset:
    """Synthetic exam dataset: candidate table, score columns, base rankings."""

    table: CandidateTable
    scores: dict[str, np.ndarray]
    rankings: RankingSet


def generate_exam_dataset(
    n_students: int = 200, seed: int | None = 2022
) -> ExamDataset:
    """Generate the synthetic exam dataset used by the Table IV reproduction.

    Parameters
    ----------
    n_students:
        Number of students (the paper uses 200).
    seed:
        Seed for the underlying generator; the default reproduces the exact
        dataset used by the benchmark harness.
    """
    if n_students < 20:
        raise DataGenerationError(
            f"the exam case study needs at least 20 students, got {n_students}"
        )
    rng = np.random.default_rng(seed)

    def draw(domain: tuple[str, ...], proportions: tuple[float, ...]) -> list[str]:
        values = list(domain)  # guarantee every group is non-empty
        remaining = n_students - len(domain)
        drawn = rng.choice(len(domain), size=remaining, p=np.asarray(proportions))
        values.extend(domain[int(index)] for index in drawn)
        rng.shuffle(values)
        return values

    genders = draw(_GENDER_DOMAIN, _GENDER_PROPORTIONS)
    races = draw(_RACE_DOMAIN, _RACE_PROPORTIONS)
    lunches = draw(_LUNCH_DOMAIN, _LUNCH_PROPORTIONS)
    table = CandidateTable(
        {"Gender": genders, "Race": races, "Lunch": lunches},
        names=[f"student-{index:03d}" for index in range(n_students)],
        domains={
            "Gender": _GENDER_DOMAIN,
            "Race": _RACE_DOMAIN,
            "Lunch": _LUNCH_DOMAIN,
        },
    )

    # Per-student latent ability shared across subjects, plus per-subject
    # group effects and noise.
    ability = rng.normal(0.0, _STUDENT_STD, size=n_students)
    scores: dict[str, np.ndarray] = {}
    for subject in SUBJECTS:
        subject_scores = np.full(n_students, _BASE_MEAN, dtype=float)
        subject_scores += ability
        subject_scores += rng.normal(0.0, _SUBJECT_NOISE_STD, size=n_students)
        for student in range(n_students):
            subject_scores[student] += _LUNCH_EFFECT[lunches[student]]
            subject_scores[student] += _GENDER_EFFECT[subject][genders[student]]
            subject_scores[student] += _RACE_EFFECT[races[student]]
        scores[subject] = np.clip(subject_scores, 0.0, 100.0)

    rankings = RankingSet.from_score_columns(scores)
    return ExamDataset(table=table, scores=scores, rankings=rankings)
