"""Mallows model over rankings (Mallows, 1957) with repeated-insertion sampling.

The paper's synthetic experiments (Section IV-A) draw base rankings from the
Mallows distribution

    P(π | σ, θ) = exp(-θ * d_KT(π, σ)) / ψ(θ)

where ``σ`` is the modal (reference) ranking, ``θ >= 0`` the spread, and
``d_KT`` the Kendall tau distance.  ``θ = 0`` is the uniform distribution over
permutations (no consensus); larger ``θ`` concentrates the base rankings
around the modal ranking.  The Kemeny consensus is the maximum-likelihood
estimate of ``σ``.

Sampling uses the repeated-insertion method (RIM, Doignon et al. 2004): the
``i``-th candidate of the modal ranking is inserted at position ``j <= i`` of
the partial ranking with probability proportional to ``exp(-θ (i - j))``,
which yields exact Mallows samples.

Vectorised RIM formulation
--------------------------
:func:`sample_mallows` draws all ``m`` rankings of a set at once instead of
looping over rankings in Python:

1. **Batched draws** — one ``rng.random((m, n))`` call produces the uniform
   variates for every (ranking, insertion-step) pair.  The matrix is filled in
   C order, so the variate consumed for ranking ``r``, step ``i`` is exactly
   the one the scalar sampler (:func:`sample_mallows_ranking_reference`) would
   have drawn via ``rng.choice``; for a shared seed the two samplers are
   therefore *bit-identical*, which the property tests assert.
2. **Insertion-position matrix** — for each step ``i`` the normalised
   insertion CDF over positions ``0..i`` is shared by all ``m`` rankings, so
   one vectorised ``searchsorted`` per step inverts the CDF for the whole
   column, yielding an ``(m, n)`` insertion-position matrix ``J`` with
   ``J[r, i]`` the RIM insertion position of the ``i``-th modal candidate in
   ranking ``r``.
3. **Scatter materialisation** — the insertions are replayed as whole-column
   numpy updates: already-placed candidates at positions ``>= J[:, i]`` shift
   right by one across all ``m`` rankings simultaneously, then the final
   per-candidate position matrix is scattered into candidate-id order for
   :meth:`repro.core.ranking_set.RankingSet.from_position_matrix`.

Total cost is O(m n^2) numpy element operations (the same asymptotic work as
the scalar RIM) with O(m n) memory, but with n whole-column updates instead of
m·n Python-level iterations — the Python interpreter overhead that made the
scalar sampler the scalability bottleneck of the synthetic experiments is
gone.  The scalar sampler is retained as
:func:`sample_mallows_ranking_reference`, the ground truth the property and
performance tests compare against.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import DataGenerationError

__all__ = [
    "sample_mallows_ranking",
    "sample_mallows_ranking_reference",
    "sample_mallows_position_matrix",
    "sample_mallows",
    "expected_kendall_distance",
    "mallows_normalization",
]


def _insertion_probabilities(i: int, theta: float) -> np.ndarray:
    """Insertion probabilities for the ``i``-th candidate (positions ``0..i``).

    Position ``j`` (0 = top of the partial ranking) displaces ``i - j``
    already-inserted candidates, contributing ``i - j`` pairwise disagreements
    with the modal ranking, hence weight ``exp(-θ (i - j))``.
    """
    displacements = i - np.arange(i + 1)
    weights = np.exp(-theta * displacements)
    return weights / weights.sum()


def sample_mallows_ranking_reference(
    modal: Ranking, theta: float, rng: np.random.Generator
) -> Ranking:
    """Draw one Mallows ranking with the scalar O(n^2) Python RIM loop.

    This is the retained from-scratch reference implementation: one
    ``rng.choice`` draw and one ``list.insert`` per candidate.  The batched
    sampler (:func:`sample_mallows`) reproduces its output bit-for-bit from
    the same generator state; keep this function unchanged so the equivalence
    tests keep meaning something.
    """
    if theta < 0:
        raise DataGenerationError(f"theta must be non-negative, got {theta}")
    n = modal.n_candidates
    partial: list[int] = []
    for i in range(n):
        candidate = modal.candidate_at(i)
        probabilities = _insertion_probabilities(i, theta)
        position = int(rng.choice(i + 1, p=probabilities))
        partial.insert(position, candidate)
    return Ranking(np.asarray(partial, dtype=np.int64), validate=False)


def sample_mallows_ranking(
    modal: Ranking, theta: float, rng: np.random.Generator
) -> Ranking:
    """Draw one ranking from the Mallows distribution centred on ``modal``.

    Thin wrapper over :func:`sample_mallows_ranking_reference` — for a single
    ranking the scalar RIM has no batching to exploit, and delegating keeps
    the generator stream identical to earlier releases.
    """
    return sample_mallows_ranking_reference(modal, theta, rng)


def sample_mallows_position_matrix(
    modal: Ranking,
    theta: float,
    n_rankings: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``n_rankings`` Mallows samples as an ``(m, n)`` position matrix.

    Row ``r`` maps candidate id -> 0-based position in sample ``r`` (the
    layout :meth:`RankingSet.from_position_matrix` and
    :meth:`RankingSet.position_matrix` use).  This is the vectorised RIM core
    (see the module docstring); ``sample_mallows`` wraps it in a
    :class:`RankingSet`.
    """
    if theta < 0:
        raise DataGenerationError(f"theta must be non-negative, got {theta}")
    if n_rankings <= 0:
        raise DataGenerationError(f"n_rankings must be positive, got {n_rankings}")
    n = modal.n_candidates
    m = n_rankings
    uniforms = rng.random((m, n))

    # Insertion-position matrix: invert each step's shared insertion CDF for
    # all m rankings at once.  The CDF is computed exactly as
    # ``rng.choice(i + 1, p=...)`` computes it (normalise, cumsum, renormalise,
    # searchsorted side="right") so the inversion is bit-identical to the
    # scalar sampler's draws.
    insertions = np.empty((m, n), dtype=np.int64)
    insertions[:, 0] = 0
    for i in range(1, n):
        cdf = np.cumsum(_insertion_probabilities(i, theta))
        cdf /= cdf[-1]
        insertions[:, i] = np.searchsorted(cdf, uniforms[:, i], side="right")

    # Replay the insertions as whole-column updates: slots[:, k] holds the
    # current position of the k-th inserted (modal-order) candidate; inserting
    # at position j shifts every already-placed candidate at position >= j.
    slots = np.empty((m, n), dtype=np.int64)
    for i in range(n):
        placed = slots[:, :i]
        placed += placed >= insertions[:, i, None]
        slots[:, i] = insertions[:, i]

    # Scatter modal order -> candidate id: positions[r, modal.order[k]] is the
    # final position of the k-th inserted candidate.
    positions = np.empty((m, n), dtype=np.int64)
    positions[:, modal.order] = slots
    return positions


def sample_mallows(
    modal: Ranking,
    theta: float,
    n_rankings: int,
    rng: np.random.Generator | int | None = None,
) -> RankingSet:
    """Draw a :class:`RankingSet` of ``n_rankings`` Mallows samples.

    All samples are drawn in one vectorised batch (see the module docstring);
    for a given generator state the result is bit-identical to ``n_rankings``
    successive :func:`sample_mallows_ranking_reference` draws.

    Parameters
    ----------
    modal:
        The modal (location) ranking ``σ``.
    theta:
        Spread parameter ``θ >= 0``; 0 gives uniformly random rankings.
    n_rankings:
        Number of base rankings ``|R|`` to draw.
    rng:
        A numpy random generator, an integer seed, or ``None`` for a fresh
        generator.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    positions = sample_mallows_position_matrix(modal, theta, n_rankings, rng)
    labels = [f"mallows-{index + 1}" for index in range(n_rankings)]
    return RankingSet.from_position_matrix(
        positions, labels=labels, validate=False, copy=False
    )


def mallows_normalization(n_candidates: int, theta: float) -> float:
    """Closed-form normalisation constant ``ψ(θ)`` of the Mallows model.

    ``ψ(θ) = prod_{i=1}^{n} (1 - exp(-i θ)) / (1 - exp(-θ))`` for ``θ > 0``;
    for ``θ = 0`` it is ``n!``.
    """
    if theta < 0:
        raise DataGenerationError(f"theta must be non-negative, got {theta}")
    if theta == 0:
        return float(math.factorial(n_candidates)) if n_candidates < 171 else float("inf")
    i = np.arange(1, n_candidates + 1)
    return float(np.prod((1.0 - np.exp(-i * theta)) / (1.0 - np.exp(-theta))))


def expected_kendall_distance(n_candidates: int, theta: float) -> float:
    """Expected Kendall tau distance of a Mallows sample from the modal ranking.

    Uses the classic closed form
    ``E[d] = n e^{-θ} / (1 - e^{-θ}) - sum_{i=1}^{n} i e^{-iθ} / (1 - e^{-iθ})``
    for ``θ > 0``; for ``θ = 0`` it is the uniform expectation
    ``n (n - 1) / 4``.
    """
    if theta < 0:
        raise DataGenerationError(f"theta must be non-negative, got {theta}")
    n = n_candidates
    if theta == 0:
        return n * (n - 1) / 4.0
    exp_theta = np.exp(-theta)
    first = n * exp_theta / (1.0 - exp_theta)
    i = np.arange(1, n + 1)
    exp_i = np.exp(-i * theta)
    second = float(np.sum(i * exp_i / (1.0 - exp_i)))
    return float(first - second)
