"""Mallows model over rankings (Mallows, 1957) with repeated-insertion sampling.

The paper's synthetic experiments (Section IV-A) draw base rankings from the
Mallows distribution

    P(π | σ, θ) = exp(-θ * d_KT(π, σ)) / ψ(θ)

where ``σ`` is the modal (reference) ranking, ``θ >= 0`` the spread, and
``d_KT`` the Kendall tau distance.  ``θ = 0`` is the uniform distribution over
permutations (no consensus); larger ``θ`` concentrates the base rankings
around the modal ranking.  The Kemeny consensus is the maximum-likelihood
estimate of ``σ``.

Sampling uses the repeated-insertion method (RIM, Doignon et al. 2004): the
``i``-th candidate of the modal ranking is inserted at position ``j <= i`` of
the partial ranking with probability proportional to ``exp(-θ (i - j))``,
which yields exact Mallows samples in O(n^2) per ranking.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import DataGenerationError

__all__ = [
    "sample_mallows_ranking",
    "sample_mallows",
    "expected_kendall_distance",
    "mallows_normalization",
]


def _insertion_probabilities(i: int, theta: float) -> np.ndarray:
    """Insertion probabilities for the ``i``-th candidate (positions ``0..i``).

    Position ``j`` (0 = top of the partial ranking) displaces ``i - j``
    already-inserted candidates, contributing ``i - j`` pairwise disagreements
    with the modal ranking, hence weight ``exp(-θ (i - j))``.
    """
    displacements = i - np.arange(i + 1)
    weights = np.exp(-theta * displacements)
    return weights / weights.sum()


def sample_mallows_ranking(
    modal: Ranking, theta: float, rng: np.random.Generator
) -> Ranking:
    """Draw one ranking from the Mallows distribution centred on ``modal``."""
    if theta < 0:
        raise DataGenerationError(f"theta must be non-negative, got {theta}")
    n = modal.n_candidates
    partial: list[int] = []
    for i in range(n):
        candidate = modal.candidate_at(i)
        probabilities = _insertion_probabilities(i, theta)
        position = int(rng.choice(i + 1, p=probabilities))
        partial.insert(position, candidate)
    return Ranking(np.asarray(partial, dtype=np.int64), validate=False)


def sample_mallows(
    modal: Ranking,
    theta: float,
    n_rankings: int,
    rng: np.random.Generator | int | None = None,
) -> RankingSet:
    """Draw a :class:`RankingSet` of ``n_rankings`` Mallows samples.

    Parameters
    ----------
    modal:
        The modal (location) ranking ``σ``.
    theta:
        Spread parameter ``θ >= 0``; 0 gives uniformly random rankings.
    n_rankings:
        Number of base rankings ``|R|`` to draw.
    rng:
        A numpy random generator, an integer seed, or ``None`` for a fresh
        generator.
    """
    if n_rankings <= 0:
        raise DataGenerationError(f"n_rankings must be positive, got {n_rankings}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    rankings = [sample_mallows_ranking(modal, theta, rng) for _ in range(n_rankings)]
    labels = [f"mallows-{index + 1}" for index in range(n_rankings)]
    return RankingSet(rankings, labels=labels)


def mallows_normalization(n_candidates: int, theta: float) -> float:
    """Closed-form normalisation constant ``ψ(θ)`` of the Mallows model.

    ``ψ(θ) = prod_{i=1}^{n} (1 - exp(-i θ)) / (1 - exp(-θ))`` for ``θ > 0``;
    for ``θ = 0`` it is ``n!``.
    """
    if theta < 0:
        raise DataGenerationError(f"theta must be non-negative, got {theta}")
    if theta == 0:
        return float(math.factorial(n_candidates)) if n_candidates < 171 else float("inf")
    i = np.arange(1, n_candidates + 1)
    return float(np.prod((1.0 - np.exp(-i * theta)) / (1.0 - np.exp(-theta))))


def expected_kendall_distance(n_candidates: int, theta: float) -> float:
    """Expected Kendall tau distance of a Mallows sample from the modal ranking.

    Uses the classic closed form
    ``E[d] = n e^{-θ} / (1 - e^{-θ}) - sum_{i=1}^{n} i e^{-iθ} / (1 - e^{-iθ})``
    for ``θ > 0``; for ``θ = 0`` it is the uniform expectation
    ``n (n - 1) / 4``.
    """
    if theta < 0:
        raise DataGenerationError(f"theta must be non-negative, got {theta}")
    n = n_candidates
    if theta == 0:
        return n * (n - 1) / 4.0
    exp_theta = np.exp(-theta)
    first = n * exp_theta / (1.0 - exp_theta)
    i = np.arange(1, n + 1)
    exp_i = np.exp(-i * theta)
    second = float(np.sum(i * exp_i / (1.0 - exp_i)))
    return float(first - second)
