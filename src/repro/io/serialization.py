"""JSON-friendly serialisation of the core objects and experiment results.

Everything returned here is built from plain dictionaries, lists, strings and
numbers so it can be fed directly to :func:`json.dump` (and symmetric loaders
rebuild the objects).  Experiment result records also pass through
:func:`to_jsonable` so numpy scalars and arrays never leak into output files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.candidates import CandidateTable
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import ValidationError

__all__ = [
    "to_jsonable",
    "canonical_json",
    "ranking_to_dict",
    "ranking_from_dict",
    "ranking_set_to_dict",
    "ranking_set_from_dict",
    "candidate_table_to_dict",
    "candidate_table_from_dict",
    "dump_json",
    "load_json",
]


def to_jsonable(value: Any) -> Any:
    """Recursively convert numpy types and library objects into JSON-safe values."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if isinstance(value, Ranking):
        return ranking_to_dict(value)
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    return value


def canonical_json(value: Any) -> str:
    """Serialise ``value`` to a canonical JSON string (sorted keys, no spaces).

    Two structurally equal values always produce the identical string, so the
    output can be hashed — this is the byte representation behind the
    content-addressed cache keys in :mod:`repro.cache.fingerprint` — or
    compared for the bit-identity assertions the cache benchmarks make.
    ``allow_nan=False`` keeps every blob strict JSON: a NaN would survive
    :func:`json.dumps` but break round-trip equality, so it is rejected at
    write time instead of corrupting the cache.
    """
    return json.dumps(
        to_jsonable(value),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def ranking_to_dict(ranking: Ranking) -> dict[str, Any]:
    """Serialise a ranking to a dictionary."""
    return {"order": ranking.to_list()}


def ranking_from_dict(payload: dict[str, Any]) -> Ranking:
    """Rebuild a ranking serialised with :func:`ranking_to_dict`."""
    if "order" not in payload:
        raise ValidationError("ranking payload is missing the 'order' key")
    return Ranking(payload["order"])


def ranking_set_to_dict(rankings: RankingSet) -> dict[str, Any]:
    """Serialise a ranking set (orders, labels, weights) to a dictionary."""
    return {
        "orders": rankings.to_order_lists(),
        "labels": list(rankings.labels),
        "weights": rankings.weights.tolist(),
    }


def ranking_set_from_dict(payload: dict[str, Any]) -> RankingSet:
    """Rebuild a ranking set serialised with :func:`ranking_set_to_dict`."""
    if "orders" not in payload:
        raise ValidationError("ranking set payload is missing the 'orders' key")
    return RankingSet.from_orders(
        payload["orders"],
        labels=payload.get("labels"),
        weights=payload.get("weights"),
    )


def candidate_table_to_dict(table: CandidateTable) -> dict[str, Any]:
    """Serialise a candidate table (names + attribute columns + domains)."""
    return {
        "names": list(table.names),
        "attributes": {name: list(table.column(name)) for name in table.attribute_names},
        "domains": {
            attribute.name: list(attribute.domain) for attribute in table.attributes
        },
    }


def candidate_table_from_dict(payload: dict[str, Any]) -> CandidateTable:
    """Rebuild a candidate table serialised with :func:`candidate_table_to_dict`."""
    if "attributes" not in payload:
        raise ValidationError("candidate table payload is missing 'attributes'")
    return CandidateTable(
        payload["attributes"],
        names=payload.get("names"),
        domains=payload.get("domains"),
    )


def dump_json(value: Any, path: str | Path, indent: int = 2) -> None:
    """Write ``value`` (converted with :func:`to_jsonable`) to ``path`` as JSON."""
    path = Path(path)
    with path.open("w") as handle:
        json.dump(to_jsonable(value), handle, indent=indent)
        handle.write("\n")


def load_json(path: str | Path) -> Any:
    """Load a JSON file written by :func:`dump_json`."""
    with Path(path).open() as handle:
        return json.load(handle)
