"""Input/output helpers: CSV and JSON serialisation of the core objects."""

from repro.io.csv_io import (
    read_candidate_table,
    read_ranking_set,
    write_candidate_table,
    write_ranking_set,
)
from repro.io.serialization import (
    candidate_table_from_dict,
    candidate_table_to_dict,
    dump_json,
    load_json,
    ranking_from_dict,
    ranking_set_from_dict,
    ranking_set_to_dict,
    ranking_to_dict,
    to_jsonable,
)

__all__ = [
    "read_candidate_table",
    "write_candidate_table",
    "read_ranking_set",
    "write_ranking_set",
    "to_jsonable",
    "ranking_to_dict",
    "ranking_from_dict",
    "ranking_set_to_dict",
    "ranking_set_from_dict",
    "candidate_table_to_dict",
    "candidate_table_from_dict",
    "dump_json",
    "load_json",
]
