"""CSV input/output for candidate tables and ranking sets.

File formats
------------

Candidate tables are stored one candidate per row with a ``name`` column and
one column per protected attribute::

    name,Gender,Race
    alice,Woman,White
    bob,Man,Black

Ranking sets are stored one base ranking per row: a ``label`` column followed
by the candidate *names* from best to worst::

    label,1,2,3
    math,alice,bob,carol

Names rather than integer ids are written so files stay meaningful when the
table is edited; reading resolves names back to ids through the table.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.core.candidates import CandidateTable
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import ValidationError

__all__ = [
    "write_candidate_table",
    "read_candidate_table",
    "write_ranking_set",
    "read_ranking_set",
]


def write_candidate_table(table: CandidateTable, path: str | Path) -> None:
    """Write a candidate table to ``path`` as CSV (name + attribute columns)."""
    path = Path(path)
    fieldnames = ["name", *table.attribute_names]
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for record in table.to_records():
            writer.writerow(record)


def read_candidate_table(path: str | Path) -> CandidateTable:
    """Read a candidate table previously written by :func:`write_candidate_table`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or "name" not in reader.fieldnames:
            raise ValidationError(
                f"{path} is not a candidate table CSV (missing 'name' column)"
            )
        attribute_names = [field for field in reader.fieldnames if field != "name"]
        if not attribute_names:
            raise ValidationError(f"{path} declares no protected attribute columns")
        rows = list(reader)
    if not rows:
        raise ValidationError(f"{path} contains no candidates")
    columns = {name: [row[name] for row in rows] for name in attribute_names}
    names = [row["name"] for row in rows]
    return CandidateTable(columns, names=names)


def write_ranking_set(
    rankings: RankingSet, table: CandidateTable, path: str | Path
) -> None:
    """Write a ranking set to ``path`` as CSV, one labelled ranking per row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["label", *range(1, rankings.n_candidates + 1)])
        for label, ranking in zip(rankings.labels, rankings):
            writer.writerow([label, *[table.name_of(c) for c in ranking]])


def read_ranking_set(path: str | Path, table: CandidateTable) -> RankingSet:
    """Read a ranking set previously written by :func:`write_ranking_set`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if not header or header[0] != "label":
            raise ValidationError(f"{path} is not a ranking set CSV (bad header)")
        labels: list[str] = []
        orders: list[list[int]] = []
        for row in reader:
            if not row:
                continue
            labels.append(row[0])
            orders.append([table.id_of(name) for name in row[1:]])
    if not orders:
        raise ValidationError(f"{path} contains no rankings")
    rankings = [Ranking(order) for order in orders]
    return RankingSet(rankings, labels=labels)
