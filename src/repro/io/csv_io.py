"""CSV input/output for candidate tables and ranking sets.

File formats
------------

Candidate tables are stored one candidate per row with a ``name`` column and
one column per protected attribute::

    name,Gender,Race
    alice,Woman,White
    bob,Man,Black

Ranking sets are stored one base ranking per row: a ``label`` column followed
by the candidate *names* from best to worst::

    label,1,2,3
    math,alice,bob,carol

Names rather than integer ids are written so files stay meaningful when the
table is edited; reading resolves names back to ids through the table.

Malformed files are reported as :class:`~repro.exceptions.ValidationError`
with ``path:row`` (and, where it applies, a 1-based column) positions —
the same per-line error style as :mod:`repro.streaming.replay` — rather than
leaking the underlying ``KeyError``/``CandidateError`` with no location.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.core.candidates import CandidateTable
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import CandidateError, ValidationError

__all__ = [
    "write_candidate_table",
    "read_candidate_table",
    "write_ranking_set",
    "read_ranking_set",
]


def write_candidate_table(table: CandidateTable, path: str | Path) -> None:
    """Write a candidate table to ``path`` as CSV (name + attribute columns)."""
    path = Path(path)
    fieldnames = ["name", *table.attribute_names]
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for record in table.to_records():
            writer.writerow(record)


def read_candidate_table(path: str | Path) -> CandidateTable:
    """Read a candidate table previously written by :func:`write_candidate_table`.

    Raises
    ------
    ValidationError
        With a ``path:row`` position (rows are 1-based, counting the header)
        for ragged rows and duplicate candidate names, instead of the bare
        errors the csv module / table constructor would raise.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle, restkey=_EXTRA_FIELDS)
        if reader.fieldnames is None or "name" not in reader.fieldnames:
            raise ValidationError(
                f"{path} is not a candidate table CSV (missing 'name' column)"
            )
        attribute_names = [field for field in reader.fieldnames if field != "name"]
        if not attribute_names:
            raise ValidationError(f"{path} declares no protected attribute columns")
        n_columns = len(reader.fieldnames)
        rows: list[dict] = []
        seen_names: dict[str, int] = {}
        for row in reader:
            row_number = reader.line_num
            if _EXTRA_FIELDS in row:
                raise ValidationError(
                    f"{path}:{row_number}: expected {n_columns} columns, got "
                    f"{n_columns + len(row[_EXTRA_FIELDS])}"
                )
            missing = [field for field, value in row.items() if value is None]
            if missing:
                raise ValidationError(
                    f"{path}:{row_number}: expected {n_columns} columns, got "
                    f"{n_columns - len(missing)}"
                )
            name = row["name"]
            previous = seen_names.get(name)
            if previous is not None:
                raise ValidationError(
                    f"{path}:{row_number}: duplicate candidate name {name!r} "
                    f"(first defined at row {previous})"
                )
            seen_names[name] = row_number
            rows.append(row)
    if not rows:
        raise ValidationError(f"{path} contains no candidates")
    columns = {name: [row[name] for row in rows] for name in attribute_names}
    names = [row["name"] for row in rows]
    return CandidateTable(columns, names=names)


#: Sentinel restkey so over-long candidate rows are detected, not dropped.
_EXTRA_FIELDS = "__extra_fields__"


def write_ranking_set(
    rankings: RankingSet, table: CandidateTable, path: str | Path
) -> None:
    """Write a ranking set to ``path`` as CSV, one labelled ranking per row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["label", *range(1, rankings.n_candidates + 1)])
        for label, ranking in zip(rankings.labels, rankings):
            writer.writerow([label, *[table.name_of(c) for c in ranking]])


def read_ranking_set(path: str | Path, table: CandidateTable) -> RankingSet:
    """Read a ranking set previously written by :func:`write_ranking_set`.

    Raises
    ------
    ValidationError
        With a ``path:row`` position (rows are 1-based, counting the header)
        for ragged rows, and additionally the 1-based column for unknown or
        repeated candidate names, instead of the bare ``CandidateError`` /
        ``RankingError`` the table and :class:`~repro.core.ranking.Ranking`
        constructors raise without location.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if not header or header[0] != "label":
            raise ValidationError(f"{path} is not a ranking set CSV (bad header)")
        labels: list[str] = []
        orders: list[list[int]] = []
        for row in reader:
            if not row:
                continue
            row_number = reader.line_num
            if len(row) - 1 != table.n_candidates:
                raise ValidationError(
                    f"{path}:{row_number}: expected {table.n_candidates} "
                    f"candidates after the label, got {len(row) - 1}"
                )
            order: list[int] = []
            seen_columns: dict[int, int] = {}
            for column, name in enumerate(row[1:], start=2):
                try:
                    candidate = table.id_of(name)
                except CandidateError as error:
                    raise ValidationError(
                        f"{path}:{row_number}: column {column}: {error}"
                    ) from error
                previous = seen_columns.get(candidate)
                if previous is not None:
                    raise ValidationError(
                        f"{path}:{row_number}: column {column}: candidate "
                        f"{name!r} already ranked at column {previous}"
                    )
                seen_columns[candidate] = column
                order.append(candidate)
            labels.append(row[0])
            orders.append(order)
    if not orders:
        raise ValidationError(f"{path} contains no rankings")
    rankings = [Ranking(order) for order in orders]
    return RankingSet(rankings, labels=labels)
