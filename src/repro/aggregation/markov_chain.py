"""Markov-chain rank aggregation (MC4 of Dwork et al., 2001).

The paper's rank-aggregation substrate builds on the web rank-aggregation
line of work it cites as [29]; MC4 is the strongest of the four Markov-chain
heuristics proposed there and is included here as an additional
fairness-unaware baseline (and, through
:class:`repro.fair.seeded.SeededFairAggregator`, as another possible seed for
Make-MR-Fair).

MC4 defines a Markov chain over candidates: from the current candidate ``a``,
pick another candidate ``b`` uniformly at random; if a majority of the base
rankings prefer ``b`` to ``a``, move to ``b``, otherwise stay at ``a``.
Candidates are ranked by decreasing stationary probability — candidates that
beat many others head-to-head accumulate probability mass.  A small
teleportation term (as in PageRank) keeps the chain ergodic when the majority
tournament is not strongly connected.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import AggregationResult, RankAggregator
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import AggregationError

__all__ = ["MarkovChainAggregator", "mc4_transition_matrix", "stationary_distribution"]


def mc4_transition_matrix(
    rankings: RankingSet, weighted: bool = False, teleport: float = 0.05
) -> np.ndarray:
    """Build the MC4 transition matrix for a set of base rankings.

    ``P[a, b]`` is the probability of moving from candidate ``a`` to ``b``:
    ``1/n`` for every ``b`` that beats ``a`` in a strict majority of the base
    rankings, the remaining mass stays on ``a``.  A ``teleport`` fraction of
    uniform restart probability is mixed in to make the chain ergodic.
    """
    if not 0.0 <= teleport < 1.0:
        raise AggregationError(f"teleport must be in [0, 1), got {teleport}")
    support = rankings.pairwise_support(weighted=weighted)
    n = rankings.n_candidates
    transition = np.zeros((n, n), dtype=float)
    for a in range(n):
        beats_a = support[:, a] > support[a, :]
        beats_a[a] = False
        n_winners = int(beats_a.sum())
        if n_winners:
            transition[a, beats_a] = 1.0 / n
        transition[a, a] = 1.0 - n_winners / n
    uniform = np.full((n, n), 1.0 / n)
    return (1.0 - teleport) * transition + teleport * uniform


def stationary_distribution(
    transition: np.ndarray, tolerance: float = 1e-12, max_iterations: int = 10_000
) -> np.ndarray:
    """Stationary distribution of a row-stochastic matrix by power iteration."""
    transition = np.asarray(transition, dtype=float)
    n = transition.shape[0]
    if transition.shape != (n, n):
        raise AggregationError(
            f"transition matrix must be square, got shape {transition.shape}"
        )
    distribution = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        updated = distribution @ transition
        if np.abs(updated - distribution).max() < tolerance:
            return updated
        distribution = updated
    return distribution


class MarkovChainAggregator(RankAggregator):
    """MC4: rank candidates by decreasing stationary probability.

    Parameters
    ----------
    weighted:
        Use the ranking-set weights when deciding majority preferences.
    teleport:
        Uniform restart probability keeping the chain ergodic (default 0.05).
    """

    name = "MC4"

    def __init__(self, weighted: bool = False, teleport: float = 0.05) -> None:
        if not 0.0 <= teleport < 1.0:
            raise AggregationError(f"teleport must be in [0, 1), got {teleport}")
        self._weighted = weighted
        self._teleport = teleport

    def _aggregate(self, rankings: RankingSet) -> AggregationResult:
        if rankings.n_candidates == 1:
            return AggregationResult(Ranking([0]), self.name)
        transition = mc4_transition_matrix(
            rankings, weighted=self._weighted, teleport=self._teleport
        )
        stationary = stationary_distribution(transition)
        ranking = Ranking.from_scores(stationary, descending=True)
        return AggregationResult(
            ranking=ranking,
            method=self.name,
            diagnostics={"stationary": stationary},
        )
