"""Spearman-footrule-optimal rank aggregation (Dwork et al., 2001).

The footrule-optimal consensus minimises the summed Spearman footrule
distance to the base rankings and is a well-known 2-approximation of the
Kemeny optimum.  It reduces to a minimum-cost bipartite assignment between
candidates and positions (cost of placing candidate ``c`` at position ``p`` is
the summed ``|p - position_i(c)|`` over base rankings), solved here with
``scipy.optimize.linear_sum_assignment``.

The paper does not evaluate footrule aggregation directly, but it is part of
the rank-aggregation literature the paper builds on [29]; it is included both
as an extra fairness-unaware baseline and as an alternative seed method for
Make-MR-Fair in the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.aggregation.base import AggregationResult, RankAggregator
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet

__all__ = ["FootruleAggregator", "footrule_cost_matrix"]


def footrule_cost_matrix(rankings: RankingSet, weighted: bool = False) -> np.ndarray:
    """Cost matrix ``C[c, p]``: summed footrule cost of placing candidate c at position p."""
    positions = rankings.position_matrix()  # shape (m, n)
    n = rankings.n_candidates
    targets = np.arange(n)
    weights = rankings.weights if weighted else np.ones(rankings.n_rankings)
    # |p - position_i(c)| summed over rankings i, for every candidate c and slot p.
    cost = np.zeros((n, n), dtype=float)
    for ranking_positions, weight in zip(positions, weights):
        cost += weight * np.abs(ranking_positions[:, np.newaxis] - targets[np.newaxis, :])
    return cost


class FootruleAggregator(RankAggregator):
    """Footrule-optimal consensus via minimum-cost assignment."""

    name = "Footrule"

    def __init__(self, weighted: bool = False) -> None:
        self._weighted = weighted

    def _aggregate(self, rankings: RankingSet) -> AggregationResult:
        cost = footrule_cost_matrix(rankings, weighted=self._weighted)
        candidate_ids, assigned_positions = linear_sum_assignment(cost)
        order = np.empty(rankings.n_candidates, dtype=np.int64)
        order[assigned_positions] = candidate_ids
        ranking = Ranking(order, validate=False)
        return AggregationResult(
            ranking=ranking,
            method=self.name,
            diagnostics={"assignment_cost": float(cost[candidate_ids, assigned_positions].sum())},
        )
