"""Local Kemenization: adjacent-swap local search on the Kemeny objective.

"Local Kemenization" (Dwork et al., 2001) takes any consensus ranking and
repeatedly swaps adjacent candidates whenever the swap reduces the number of
pairwise disagreements with the base rankings.  The result is locally optimal:
no single adjacent transposition can improve it, and it preserves the
Condorcet winner ordering where one exists.

This module offers both a standalone aggregator (seeded by Borda) and a
reusable :func:`local_kemenization` post-processing step used by the ablation
benchmarks to quantify how close the polynomial-time methods get to the exact
Kemeny optimum.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import AggregationResult, RankAggregator
from repro.aggregation.borda import BordaAggregator
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet

__all__ = ["local_kemenization", "LocalSearchKemenyAggregator"]


def local_kemenization(
    rankings: RankingSet, initial: Ranking, max_passes: int = 50
) -> Ranking:
    """Improve ``initial`` by adjacent swaps until locally Kemeny-optimal.

    Each pass scans the ranking once (bubble-sort style); swapping candidates
    at positions ``p`` and ``p+1`` changes the Kemeny objective by
    ``W[upper, lower] - W[lower, upper]`` where ``W`` is the precedence
    matrix, so the scan needs no distance recomputation.
    """
    precedence = rankings.precedence_matrix()
    order = initial.to_list()
    n = len(order)
    for _ in range(max_passes):
        improved = False
        for position in range(n - 1):
            upper, lower = order[position], order[position + 1]
            # Cost of current order: rankings that put `lower` above `upper`.
            current_cost = precedence[upper, lower]
            swapped_cost = precedence[lower, upper]
            if swapped_cost < current_cost:
                order[position], order[position + 1] = lower, upper
                improved = True
        if not improved:
            break
    return Ranking(np.asarray(order, dtype=np.int64), validate=False)


class LocalSearchKemenyAggregator(RankAggregator):
    """Borda seed followed by local Kemenization (a fast Kemeny heuristic)."""

    name = "LocalKemeny"

    def __init__(self, max_passes: int = 50) -> None:
        self._max_passes = max_passes

    def _aggregate(self, rankings: RankingSet) -> AggregationResult:
        seed = BordaAggregator().aggregate(rankings)
        ranking = local_kemenization(rankings, seed, max_passes=self._max_passes)
        return AggregationResult(ranking=ranking, method=self.name)
