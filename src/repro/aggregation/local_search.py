"""Local Kemenization: adjacent-swap local search on the Kemeny objective.

"Local Kemenization" (Dwork et al., 2001) takes any consensus ranking and
repeatedly swaps adjacent candidates whenever the swap reduces the number of
pairwise disagreements with the base rankings.  The result is locally optimal:
no single adjacent transposition can improve it, and it preserves the
Condorcet winner ordering where one exists.

This module offers both a standalone aggregator (seeded by Borda) and a
reusable :func:`local_kemenization` post-processing step used by the ablation
benchmarks to quantify how close the polynomial-time methods get to the exact
Kemeny optimum.

The main implementation runs on the incremental Kemeny-delta engine
(:class:`repro.aggregation.incremental.KemenyDeltaEngine`): each bubble pass
reads O(1) adjacent-swap margins from the engine's cached margin matrix and a
vectorised gather skips converged prefixes, instead of issuing two numpy
scalar lookups per adjacent pair per pass.  The original implementation is
retained verbatim as :func:`local_kemenization_reference`; the test suite
asserts both produce the identical final ranking on every exercised input,
and ``benchmarks/test_perf_local_search.py`` tracks the speedup.

The adjacent-transposition neighbourhood is one of several the engine can
price: :mod:`repro.aggregation.search` packages it alongside an insertion
(block-move) neighbourhood and a combined schedule as pluggable
:class:`~repro.aggregation.search.NeighborhoodStrategy` objects, and
:class:`LocalSearchKemenyAggregator` accepts ``strategy=...`` to pick one.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import AggregationResult, RankAggregator
from repro.aggregation.borda import BordaAggregator
from repro.aggregation.incremental import KemenyDeltaEngine
from repro.aggregation.search import NeighborhoodStrategy, get_strategy
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet

__all__ = [
    "local_kemenization",
    "local_kemenization_reference",
    "LocalSearchKemenyAggregator",
]


def local_kemenization(
    rankings: RankingSet, initial: Ranking, max_passes: int = 50
) -> Ranking:
    """Improve ``initial`` by adjacent swaps until locally Kemeny-optimal.

    Each pass scans the ranking once (bubble-sort style) on the
    :class:`KemenyDeltaEngine`; swapping candidates at positions ``p`` and
    ``p + 1`` changes the Kemeny objective by the cached O(1) margin, so the
    scan needs no distance recomputation.  Returns the identical ranking to
    :func:`local_kemenization_reference` (enforced by the property tests).
    """
    engine = KemenyDeltaEngine(rankings, initial)
    for _ in range(max_passes):
        if not engine.sweep_adjacent():
            break
    return engine.to_ranking()


def local_kemenization_reference(
    rankings: RankingSet, initial: Ranking, max_passes: int = 50
) -> Ranking:
    """From-scratch local Kemenization, retained as the semantic ground truth.

    This is the original implementation: every adjacent pair is evaluated
    with two numpy scalar reads of the precedence matrix per pass.
    :func:`local_kemenization` must return the identical ranking; the
    equivalence is enforced by the test suite and the perf benchmark.
    """
    precedence = rankings.precedence_matrix()
    order = initial.to_list()
    n = len(order)
    for _ in range(max_passes):
        improved = False
        for position in range(n - 1):
            upper, lower = order[position], order[position + 1]
            # Cost of current order: rankings that put `lower` above `upper`.
            current_cost = precedence[upper, lower]
            swapped_cost = precedence[lower, upper]
            if swapped_cost < current_cost:
                order[position], order[position + 1] = lower, upper
                improved = True
        if not improved:
            break
    return Ranking(np.asarray(order, dtype=np.int64), validate=False)


class LocalSearchKemenyAggregator(RankAggregator):
    """Borda seed followed by engine-backed local search (a fast Kemeny heuristic).

    Parameters
    ----------
    max_passes:
        Pass budget handed to the strategy.
    strategy:
        Neighbourhood to search — a name accepted by
        :func:`repro.aggregation.search.get_strategy` (``"adjacent-swap"``,
        ``"insertion"``, ``"combined"``) or a strategy instance.  The default
        ``adjacent-swap`` keeps the classic local-Kemenization behaviour,
        bit-identical to the Borda + :func:`local_kemenization_reference`
        pipeline.
    """

    name = "LocalKemeny"

    def __init__(
        self,
        max_passes: int = 50,
        strategy: str | NeighborhoodStrategy = "adjacent-swap",
    ) -> None:
        self._max_passes = max_passes
        self._strategy = get_strategy(strategy)
        if self._strategy.name != "adjacent-swap":
            self.name = f"LocalKemeny[{self._strategy.name}]"

    def _aggregate(self, rankings: RankingSet) -> AggregationResult:
        seed = BordaAggregator().aggregate(rankings)
        engine = KemenyDeltaEngine(rankings, seed)
        stats = self._strategy.search(engine, max_passes=self._max_passes)
        # The objective is queried only after convergence: reading it earlier
        # would force per-pass delta accounting the sweeps otherwise skip.
        diagnostics: dict[str, object] = {
            "objective": engine.objective,
            "n_passes": stats.n_passes,
            "strategy": stats.strategy,
        }
        if stats.n_moves is not None:
            diagnostics["n_moves"] = stats.n_moves
        return AggregationResult(
            ranking=engine.to_ranking(),
            method=self.name,
            diagnostics=diagnostics,
        )
