"""Borda count rank aggregation (Borda, 1784).

Borda is a *positional* method: each candidate receives, from every base
ranking, one point for every candidate ranked below it.  Candidates are then
ordered by decreasing total points.  It is the fastest Kemeny approximation
in the comparative study the paper cites [27] and is the seed method for
Fair-Borda (Section III-B).

Complexity: O(n * |R|) to accumulate points plus O(n log n) to sort.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import AggregationResult, RankAggregator
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet

__all__ = ["BordaAggregator", "borda_scores"]


def borda_scores(rankings: RankingSet, weighted: bool = False) -> np.ndarray:
    """Total Borda points per candidate.

    A candidate at 0-based position ``p`` in a ranking over ``n`` candidates
    scores ``n - 1 - p`` points from that ranking (the number of candidates
    ranked below it).  With ``weighted=True`` each ranking contributes its
    weight times that amount.
    """
    positions = rankings.position_matrix()
    n = rankings.n_candidates
    points = (n - 1) - positions
    if weighted:
        return (rankings.weights[:, np.newaxis] * points).sum(axis=0)
    return points.sum(axis=0).astype(float)


class BordaAggregator(RankAggregator):
    """Order candidates by decreasing total Borda points (ties by candidate id)."""

    name = "Borda"

    def __init__(self, weighted: bool = False) -> None:
        self._weighted = weighted

    def _aggregate(self, rankings: RankingSet) -> AggregationResult:
        scores = borda_scores(rankings, weighted=self._weighted)
        ranking = Ranking.from_scores(scores, descending=True)
        return AggregationResult(
            ranking=ranking,
            method=self.name,
            diagnostics={"scores": scores},
        )
