"""Fairness-unaware rank aggregation methods (the consensus substrate).

Every method implements :class:`~repro.aggregation.base.RankAggregator` and
can be obtained by name through :func:`get_aggregator`.
"""

from repro.aggregation.base import AggregationResult, RankAggregator
from repro.aggregation.borda import BordaAggregator, borda_scores
from repro.aggregation.copeland import CopelandAggregator, copeland_scores
from repro.aggregation.footrule import FootruleAggregator, footrule_cost_matrix
from repro.aggregation.incremental import KemenyDeltaEngine
from repro.aggregation.kemeny import KemenyAggregator, exact_kemeny
from repro.aggregation.local_search import (
    LocalSearchKemenyAggregator,
    local_kemenization,
    local_kemenization_reference,
)
from repro.aggregation.markov_chain import (
    MarkovChainAggregator,
    mc4_transition_matrix,
    stationary_distribution,
)
from repro.aggregation.pick_a_perm import PickAPermAggregator
from repro.aggregation.ranked_pairs import RankedPairsAggregator
from repro.aggregation.schulze import SchulzeAggregator, schulze_scores, strongest_paths
from repro.aggregation.search import (
    NeighborhoodStrategy,
    SearchStats,
    available_strategies,
    get_strategy,
    insertion_local_search_reference,
    local_search,
)
from repro.exceptions import AggregationError

__all__ = [
    "RankAggregator",
    "AggregationResult",
    "BordaAggregator",
    "borda_scores",
    "CopelandAggregator",
    "copeland_scores",
    "SchulzeAggregator",
    "schulze_scores",
    "strongest_paths",
    "KemenyAggregator",
    "exact_kemeny",
    "PickAPermAggregator",
    "FootruleAggregator",
    "footrule_cost_matrix",
    "KemenyDeltaEngine",
    "LocalSearchKemenyAggregator",
    "local_kemenization",
    "local_kemenization_reference",
    "NeighborhoodStrategy",
    "SearchStats",
    "available_strategies",
    "get_strategy",
    "insertion_local_search_reference",
    "local_search",
    "MarkovChainAggregator",
    "mc4_transition_matrix",
    "stationary_distribution",
    "RankedPairsAggregator",
    "get_aggregator",
    "available_aggregators",
]

_AGGREGATORS: dict[str, type[RankAggregator]] = {
    "borda": BordaAggregator,
    "copeland": CopelandAggregator,
    "schulze": SchulzeAggregator,
    "kemeny": KemenyAggregator,
    "pick-a-perm": PickAPermAggregator,
    "footrule": FootruleAggregator,
    "local-kemeny": LocalSearchKemenyAggregator,
    "mc4": MarkovChainAggregator,
    "ranked-pairs": RankedPairsAggregator,
}


def available_aggregators() -> tuple[str, ...]:
    """Names accepted by :func:`get_aggregator`."""
    return tuple(_AGGREGATORS)


def get_aggregator(name: str, **kwargs: object) -> RankAggregator:
    """Instantiate a fairness-unaware aggregator by name (case-insensitive)."""
    key = name.strip().lower()
    if key not in _AGGREGATORS:
        raise AggregationError(
            f"unknown aggregation method {name!r}; "
            f"available methods: {', '.join(sorted(_AGGREGATORS))}"
        )
    return _AGGREGATORS[key](**kwargs)  # type: ignore[arg-type]
