"""Abstract interface shared by every fairness-unaware rank aggregator.

An aggregator turns a :class:`~repro.core.ranking_set.RankingSet` into a
single consensus :class:`~repro.core.ranking.Ranking`.  Each concrete method
(Borda, Copeland, Schulze, Kemeny, ...) subclasses :class:`RankAggregator` and
implements :meth:`RankAggregator._aggregate`; the public :meth:`aggregate`
wrapper performs common validation and (optionally) records the consensus
objective value.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import AggregationError

__all__ = ["RankAggregator", "AggregationResult"]


@dataclass(frozen=True)
class AggregationResult:
    """Consensus ranking together with method metadata.

    Attributes
    ----------
    ranking:
        The consensus ranking.
    method:
        Name of the method that produced it.
    diagnostics:
        Free-form method statistics (e.g. ILP rounds, number of lazy
        constraints, candidate scores).
    """

    ranking: Ranking
    method: str
    diagnostics: dict[str, object] = field(default_factory=dict)


class RankAggregator(ABC):
    """Base class for fairness-unaware consensus ranking methods."""

    #: Human-readable method name; subclasses override.
    name: str = "aggregator"

    def aggregate(self, rankings: RankingSet) -> Ranking:
        """Return the consensus ranking for ``rankings``."""
        return self.aggregate_with_diagnostics(rankings).ranking

    def aggregate_with_diagnostics(self, rankings: RankingSet) -> AggregationResult:
        """Return the consensus ranking plus method diagnostics."""
        if not isinstance(rankings, RankingSet):
            raise AggregationError(
                f"{self.name} expects a RankingSet, got {type(rankings).__name__}"
            )
        if rankings.n_candidates < 1:
            raise AggregationError("cannot aggregate over an empty candidate universe")
        result = self._aggregate(rankings)
        if isinstance(result, AggregationResult):
            return result
        return AggregationResult(ranking=result, method=self.name)

    @abstractmethod
    def _aggregate(self, rankings: RankingSet) -> Ranking | AggregationResult:
        """Produce the consensus ranking (implemented by subclasses)."""

    def __call__(self, rankings: RankingSet) -> Ranking:
        return self.aggregate(rankings)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
