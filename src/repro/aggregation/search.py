"""Pluggable local-search neighbourhoods on the incremental Kemeny-delta engine.

Local Kemenization historically meant one fixed neighbourhood — adjacent
transpositions.  The :class:`~repro.aggregation.incremental.KemenyDeltaEngine`
prices far richer moves at the same asymptotic cost (an O(window) block move,
an O(n) vectorised scoring of *all* block moves of one candidate), so this
module turns the neighbourhood into a strategy object and implements three:

``adjacent-swap``
    Today's behaviour — bubble passes on the engine's carry-run sweep,
    bit-identical to
    :func:`repro.aggregation.local_search.local_kemenization_reference`.

``insertion``
    Variable-neighbourhood descent over block moves (insertion moves): run
    the cheap adjacent-swap descent to convergence, then one pass of
    best-improvement insertion moves — each candidate's full target row
    scored in a single vectorised gather
    (:meth:`KemenyDeltaEngine.best_move`) — and drop back to the adjacent
    descent whenever an insertion move lands.  Because the first phase *is*
    the adjacent-swap strategy (identical trajectory, identical pass
    accounting) and every later move strictly improves the objective, the
    insertion result is **never worse than the adjacent-swap result** for
    the same input and pass budget — the dominance guarantee the strategy
    ablation asserts on every grid cell.  A converged insertion search is
    locally optimal for *all* block moves, which strictly generalise
    adjacent swaps.  The from-scratch
    :func:`insertion_local_search_reference` is retained as the semantic
    ground truth; the property tests assert both produce the identical
    ranking and ``benchmarks/test_perf_insertion.py`` gates the speedup.

``combined``
    The reverse schedule: greedy best-improvement insertion passes from the
    raw seed until converged, then a final adjacent-swap polish.  Exploring
    the large neighbourhood first takes different trajectories than
    ``insertion`` (occasionally better, occasionally worse — it carries no
    dominance guarantee), which is exactly what makes it a useful third arm
    of the ablation.

Strategies are stateless and picklable (the ablation experiment ships them
through a process pool); obtain one with :func:`get_strategy` and run it with
:meth:`NeighborhoodStrategy.search` or the :func:`local_search` convenience
wrapper.  :class:`~repro.aggregation.local_search.LocalSearchKemenyAggregator`
accepts ``strategy=...`` and the registry forwards constructor keywords, so
``get_aggregator("local-kemeny", strategy="insertion")`` works end to end.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.aggregation.incremental import KemenyDeltaEngine
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import AggregationError

__all__ = [
    "SearchStats",
    "NeighborhoodStrategy",
    "AdjacentSwapStrategy",
    "InsertionStrategy",
    "CombinedStrategy",
    "available_strategies",
    "get_strategy",
    "local_search",
    "insertion_local_search_reference",
]


@dataclass(frozen=True)
class SearchStats:
    """Outcome of one strategy run on an engine.

    ``n_moves`` counts the applied block moves for strategies that track them
    individually; the adjacent-swap sweep applies its swaps inside vectorised
    carry runs without counting, so it reports ``None``.
    """

    strategy: str
    n_passes: int
    n_moves: int | None


class NeighborhoodStrategy(ABC):
    """One local-search neighbourhood over the Kemeny-delta engine.

    A strategy mutates the engine in place, applying only strictly improving
    moves, and stops when its neighbourhood is exhausted or the pass budget
    runs out.  Implementations hold no per-run state (one instance can serve
    any number of searches, including concurrently pickled copies).
    """

    name: ClassVar[str]

    @abstractmethod
    def search(self, engine: KemenyDeltaEngine, max_passes: int = 50) -> SearchStats:
        """Improve the engine's ranking in place; return pass/move counts."""


def _insertion_pass(engine: KemenyDeltaEngine) -> int:
    """One best-improvement insertion pass; returns the number of applied moves.

    Visits the candidates in id order; for each, the engine scores every
    target position in a single vectorised gather (ties broken towards the
    smallest position) and the best strictly improving block move is applied.
    """
    moved = 0
    for candidate in range(engine.n_candidates):
        delta, target = engine.best_move(candidate)
        if delta < 0.0:
            engine.apply_move(candidate, target)
            moved += 1
    return moved


class AdjacentSwapStrategy(NeighborhoodStrategy):
    """Classic local Kemenization: bubble passes over adjacent transpositions.

    Runs the engine's carry-run sweep, reproducing byte-for-byte the decisions
    of :func:`repro.aggregation.local_search.local_kemenization_reference`.
    Only improving passes are counted (the final pass that finds nothing to
    swap is free).
    """

    name = "adjacent-swap"

    def search(self, engine: KemenyDeltaEngine, max_passes: int = 50) -> SearchStats:
        """Run carry-run adjacent sweeps until converged or out of budget."""
        n_passes = 0
        for _ in range(max_passes):
            if not engine.sweep_adjacent():
                break
            n_passes += 1
        return SearchStats(strategy=self.name, n_passes=n_passes, n_moves=None)


class InsertionStrategy(NeighborhoodStrategy):
    """Variable-neighbourhood descent: adjacent descent + insertion passes.

    The loop alternates two phases sharing one pass budget: (1) adjacent-swap
    sweeps until converged — the identical trajectory (and pass accounting)
    of :class:`AdjacentSwapStrategy` — then (2) one best-improvement
    insertion pass; any landed block move returns the search to phase 1.
    The search stops when an insertion pass applies nothing (the ranking is
    then locally optimal for every block move, adjacent swaps included) or
    the budget runs out.

    Running the cheap neighbourhood first is the standard VND schedule —
    the O(1)-per-swap sweeps do the bulk of the work and the O(n) per
    candidate scoring is reserved for the moves only insertion can see —
    and it buys the dominance guarantee the ablation relies on: for the
    same input and ``max_passes``, the insertion result's objective is
    never above the adjacent-swap result's.
    """

    name = "insertion"

    def search(self, engine: KemenyDeltaEngine, max_passes: int = 50) -> SearchStats:
        """Alternate adjacent descent and insertion passes on a shared budget."""
        n_passes = 0
        n_moves = 0
        while True:
            while n_passes < max_passes and engine.sweep_adjacent():
                n_passes += 1
            if n_passes >= max_passes:
                break
            moved = _insertion_pass(engine)
            if moved == 0:
                break
            n_moves += moved
            n_passes += 1
        return SearchStats(strategy=self.name, n_passes=n_passes, n_moves=n_moves)


class CombinedStrategy(NeighborhoodStrategy):
    """Greedy insertion passes until converged, then an adjacent-swap polish.

    The big-moves-first schedule: best-improvement insertion passes straight
    from the seed (no adjacent warm-up), then a final adjacent-swap descent
    mopping up whatever cheap improvements remain (only relevant when the
    insertion phase exhausted its budget — a converged insertion phase is
    already adjacent-swap optimal).  Each phase gets the full ``max_passes``
    budget.  Unlike :class:`InsertionStrategy` this trajectory carries no
    dominance guarantee over :class:`AdjacentSwapStrategy`; the ablation
    experiment measures how the two insertion schedules compare in practice.
    """

    name = "combined"

    def search(self, engine: KemenyDeltaEngine, max_passes: int = 50) -> SearchStats:
        """Run insertion passes to convergence, then an adjacent-swap polish."""
        n_passes = 0
        n_moves = 0
        for _ in range(max_passes):
            moved = _insertion_pass(engine)
            if moved == 0:
                break
            n_moves += moved
            n_passes += 1
        polish = AdjacentSwapStrategy().search(engine, max_passes=max_passes)
        return SearchStats(
            strategy=self.name,
            n_passes=n_passes + polish.n_passes,
            n_moves=n_moves,
        )


_STRATEGIES: dict[str, type[NeighborhoodStrategy]] = {
    AdjacentSwapStrategy.name: AdjacentSwapStrategy,
    InsertionStrategy.name: InsertionStrategy,
    CombinedStrategy.name: CombinedStrategy,
}


def available_strategies() -> tuple[str, ...]:
    """Strategy names accepted by :func:`get_strategy` (and the CLI)."""
    return tuple(_STRATEGIES)


def get_strategy(strategy: str | NeighborhoodStrategy) -> NeighborhoodStrategy:
    """Resolve a strategy name (case-insensitive) or pass an instance through."""
    if isinstance(strategy, NeighborhoodStrategy):
        return strategy
    key = str(strategy).strip().lower()
    if key not in _STRATEGIES:
        raise AggregationError(
            f"unknown local-search strategy {strategy!r}; "
            f"available strategies: {', '.join(_STRATEGIES)}"
        )
    return _STRATEGIES[key]()


def local_search(
    rankings: RankingSet,
    initial: Ranking,
    strategy: str | NeighborhoodStrategy = "adjacent-swap",
    max_passes: int = 50,
) -> Ranking:
    """Improve ``initial`` with the given neighbourhood strategy.

    Generalises :func:`repro.aggregation.local_search.local_kemenization`
    (exactly equivalent for the default ``adjacent-swap`` strategy).
    """
    engine = KemenyDeltaEngine(rankings, initial)
    get_strategy(strategy).search(engine, max_passes=max_passes)
    return engine.to_ranking()


def insertion_local_search_reference(
    rankings: RankingSet, initial: Ranking, max_passes: int = 50
) -> Ranking:
    """From-scratch insertion local search, retained as the semantic ground truth.

    Mirrors :class:`InsertionStrategy` — the same variable-neighbourhood
    descent with the same pass accounting — without the engine: the adjacent
    phase is the scalar bubble pass of
    :func:`repro.aggregation.local_search.local_kemenization_reference`, and
    each candidate's insertion deltas are accumulated with scalar
    precedence-matrix reads while scanning outwards from its position (the
    left scan prefers later — smaller — positions on ties, the right scan
    requires strict improvement; together they reproduce the engine's
    ``argmin`` tie-breaking).  The engine-backed search must return the
    identical ranking on every input (enforced by the property tests and
    ``benchmarks/test_perf_insertion.py``).
    """
    precedence = rankings.precedence_matrix()
    order = initial.to_list()
    n = len(order)
    passes_used = 0
    while True:
        while passes_used < max_passes:
            improved = False
            for position in range(n - 1):
                upper, lower = order[position], order[position + 1]
                if precedence[lower, upper] < precedence[upper, lower]:
                    order[position], order[position + 1] = lower, upper
                    improved = True
            if not improved:
                break
            passes_used += 1
        if passes_used >= max_passes:
            break
        moved = False
        for candidate in range(n):
            position = order.index(candidate)
            best_delta = 0.0
            best_target = position
            delta = 0.0
            for target in range(position - 1, -1, -1):
                other = order[target]
                delta += precedence[candidate, other] - precedence[other, candidate]
                if delta <= best_delta:
                    best_delta = delta
                    best_target = target
            delta = 0.0
            for target in range(position + 1, n):
                other = order[target]
                delta += precedence[other, candidate] - precedence[candidate, other]
                if delta < best_delta:
                    best_delta = delta
                    best_target = target
            if best_delta < 0.0:
                order.pop(position)
                order.insert(best_target, candidate)
                moved = True
        if not moved:
            break
        passes_used += 1
    return Ranking(np.asarray(order, dtype=np.int64), validate=False)
