"""Pick-A-Perm rank aggregation (Schalekamp & van Zuylen, 2009).

Pick-A-Perm returns one of the base rankings themselves as the consensus: the
base ranking with the smallest summed Kendall tau distance to all the others.
It is a 2-approximation of Kemeny and the fairness-aware variant used as a
baseline in the paper (Pick-Fairest-Perm, Section IV-B) swaps the selection
criterion from "closest" to "fairest"; that variant lives in
:mod:`repro.fair.baselines`.
"""

from __future__ import annotations

from repro.aggregation.base import AggregationResult, RankAggregator
from repro.core.distances import kendall_tau
from repro.core.ranking_set import RankingSet

__all__ = ["PickAPermAggregator"]


class PickAPermAggregator(RankAggregator):
    """Return the base ranking minimising total Kendall tau distance to the others."""

    name = "Pick-A-Perm"

    def _aggregate(self, rankings: RankingSet) -> AggregationResult:
        best_index = 0
        best_cost = float("inf")
        for index, candidate in enumerate(rankings):
            cost = sum(
                kendall_tau(candidate, other)
                for other_index, other in enumerate(rankings)
                if other_index != index
            )
            if cost < best_cost:
                best_cost = cost
                best_index = index
        return AggregationResult(
            ranking=rankings[best_index],
            method=self.name,
            diagnostics={
                "selected_index": best_index,
                "selected_label": rankings.label_of(best_index),
                "total_distance": best_cost,
            },
        )
