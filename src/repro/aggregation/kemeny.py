"""Exact Kemeny rank aggregation (Kemeny, 1959).

The Kemeny consensus minimises the summed Kendall tau distance to the base
rankings (Definition 4 / Equation 7 of the paper).  Finding it is NP-hard in
general; this module provides the exact integer-programming formulation solved
with HiGHS (the CPLEX substitute, see DESIGN.md) and a branch-and-bound
fallback for small instances, both warm-started pruning-wise by the Borda
consensus.
"""

from __future__ import annotations

from repro.aggregation.base import AggregationResult, RankAggregator
from repro.aggregation.borda import BordaAggregator
from repro.core.distances import kemeny_objective
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import AggregationError
from repro.optimize.branch_and_bound import MAX_CANDIDATES, branch_and_bound_kemeny
from repro.optimize.milp_backend import solve_linear_ordering
from repro.optimize.model import LinearOrderingModel

__all__ = ["KemenyAggregator", "exact_kemeny"]


class KemenyAggregator(RankAggregator):
    """Exact Kemeny consensus via integer programming.

    Parameters
    ----------
    weighted:
        Use the ranking-set weights when building the precedence matrix
        (this is how the Kemeny-Weighted baseline of Section IV-B is built).
    backend:
        ``"milp"`` (default) solves the linear ordering ILP with HiGHS;
        ``"branch-and-bound"`` uses the pure-Python exact solver (small n
        only); ``"auto"`` picks branch and bound for tiny instances where it
        is faster than setting up the ILP.
    lazy_triangles:
        Passed to the MILP backend; ``None`` lets it decide by instance size.
    time_limit:
        Optional HiGHS time limit (seconds) per solve.
    mip_rel_gap:
        Optional relative MIP gap passed to HiGHS.
    """

    name = "Kemeny"

    def __init__(
        self,
        weighted: bool = False,
        backend: str = "milp",
        lazy_triangles: bool | None = None,
        time_limit: float | None = None,
        mip_rel_gap: float | None = None,
    ) -> None:
        if backend not in {"milp", "branch-and-bound", "auto"}:
            raise AggregationError(
                f"unknown Kemeny backend {backend!r}; "
                "expected 'milp', 'branch-and-bound', or 'auto'"
            )
        self._weighted = weighted
        self._backend = backend
        self._lazy_triangles = lazy_triangles
        self._time_limit = time_limit
        self._mip_rel_gap = mip_rel_gap
        if weighted:
            self.name = "Kemeny-Weighted"

    def build_model(self, rankings: RankingSet) -> LinearOrderingModel:
        """Build the (unconstrained) Kemeny linear-ordering model for ``rankings``."""
        precedence = rankings.precedence_matrix(weighted=self._weighted)
        return LinearOrderingModel.from_precedence(precedence)

    def _aggregate(self, rankings: RankingSet) -> AggregationResult:
        n = rankings.n_candidates
        if n == 1:
            return AggregationResult(Ranking([0]), self.name)

        backend = self._backend
        if backend == "auto":
            backend = "branch-and-bound" if n <= 12 else "milp"

        if backend == "branch-and-bound":
            if n > MAX_CANDIDATES:
                raise AggregationError(
                    f"branch-and-bound Kemeny supports at most {MAX_CANDIDATES} "
                    f"candidates, got {n}; use backend='milp'"
                )
            precedence = rankings.precedence_matrix(weighted=self._weighted)
            warm_start = BordaAggregator(weighted=self._weighted).aggregate(rankings)
            warm_cost = float(
                sum(
                    precedence[a, b]
                    for a in range(n)
                    for b in range(n)
                    if a != b and warm_start.prefers(a, b)
                )
            )
            ranking, objective = branch_and_bound_kemeny(
                precedence, initial_upper_bound=warm_cost, initial_ranking=warm_start
            )
            return AggregationResult(
                ranking=ranking,
                method=self.name,
                diagnostics={"objective": objective, "backend": "branch-and-bound"},
            )

        model = self.build_model(rankings)
        solution = solve_linear_ordering(
            model,
            lazy=self._lazy_triangles,
            time_limit=self._time_limit,
            mip_rel_gap=self._mip_rel_gap,
        )
        ranking = model.assignment_to_ranking(solution.assignment)
        return AggregationResult(
            ranking=ranking,
            method=self.name,
            diagnostics={
                "objective": solution.objective,
                "backend": "milp",
                "rounds": solution.rounds,
                "n_lazy_constraints": solution.n_lazy_constraints,
                "optimal": solution.optimal,
            },
        )


def exact_kemeny(rankings: RankingSet, **kwargs: object) -> Ranking:
    """Convenience wrapper returning the exact Kemeny consensus ranking."""
    return KemenyAggregator(**kwargs).aggregate(rankings)  # type: ignore[arg-type]


def kemeny_cost(rankings: RankingSet, ranking: Ranking) -> float:
    """Kemeny objective (summed Kendall tau) of ``ranking`` against ``rankings``."""
    return kemeny_objective(ranking, rankings)
