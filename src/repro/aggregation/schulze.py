"""Schulze rank aggregation (Schulze, 2011/2018).

The Schulze method treats the pairwise-support matrix as a weighted directed
graph and ranks candidates by the strength of their strongest (widest) paths
to the other candidates, computed with a Floyd–Warshall variant.  It is a
Condorcet method and, as the paper notes (Section III-B), is widely used for
real multi-winner elections (Wikimedia, Debian, Gentoo, Ubuntu, ...).

Complexity: O(n^2 |R|) for the support matrix (served from the ranking set's
cached, chunked-broadcast precedence matrix — weighted or not — so repeated
aggregations pay it once) plus O(n^3) for strongest paths.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import AggregationResult, RankAggregator
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet

__all__ = ["SchulzeAggregator", "strongest_paths", "schulze_scores"]


def strongest_paths(support: np.ndarray) -> np.ndarray:
    """Widest-path strengths between every ordered pair of candidates.

    ``support[a, b]`` is the number of base rankings preferring ``a`` to
    ``b``.  An edge ``a -> b`` exists (with weight ``support[a, b]``) when
    more rankings prefer ``a`` to ``b`` than the reverse.  The strength of a
    path is its weakest edge; ``P[a, b]`` is the strength of the strongest
    path from ``a`` to ``b``.
    """
    support = np.asarray(support, dtype=float)
    n = support.shape[0]
    strengths = np.where(support > support.T, support, 0.0)
    np.fill_diagonal(strengths, 0.0)
    # Floyd–Warshall variant: relax through every intermediate candidate.
    for k in range(n):
        # strongest path via k: min(strength[i, k], strength[k, j])
        via_k = np.minimum.outer(strengths[:, k], strengths[k, :])
        np.maximum(strengths, via_k, out=strengths)
        np.fill_diagonal(strengths, 0.0)
    return strengths


def schulze_scores(rankings: RankingSet, weighted: bool = False) -> np.ndarray:
    """Per-candidate Schulze score: number of candidates beaten in widest-path order."""
    support = rankings.pairwise_support(weighted=weighted)
    paths = strongest_paths(support)
    beats = (paths > paths.T).astype(np.int64)
    np.fill_diagonal(beats, 0)
    return beats.sum(axis=1).astype(float)


class SchulzeAggregator(RankAggregator):
    """Order candidates by the Schulze widest-path relation.

    Candidates are sorted by the number of opponents they beat in the
    strongest-path comparison; ties are broken by total path strength and then
    candidate id so the output is deterministic.
    """

    name = "Schulze"

    def __init__(self, weighted: bool = False) -> None:
        self._weighted = weighted

    def _aggregate(self, rankings: RankingSet) -> AggregationResult:
        support = rankings.pairwise_support(weighted=self._weighted)
        paths = strongest_paths(support)
        beats = (paths > paths.T).astype(np.int64)
        np.fill_diagonal(beats, 0)
        wins = beats.sum(axis=1).astype(float)
        total_strength = paths.sum(axis=1)
        max_strength = total_strength.max() if total_strength.size else 0.0
        scores = wins
        if max_strength > 0:
            scores = wins + 0.5 * total_strength / (max_strength + 1.0)
        ranking = Ranking.from_scores(scores, descending=True)
        return AggregationResult(
            ranking=ranking,
            method=self.name,
            diagnostics={"wins": wins, "strongest_paths": paths},
        )
