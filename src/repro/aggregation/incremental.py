"""Incremental Kemeny-delta engine: O(1)/O(window) objective deltas for local search.

Every local-search consensus path in this codebase (the local-Kemenization
post-processing step, :class:`~repro.aggregation.local_search.LocalSearchKemenyAggregator`,
and the fairness-preserving local repair in :mod:`repro.fair.local_repair`)
repeatedly asks the same question: *what does the Kemeny objective become if
this move is applied?*  The objective of a concrete permutation is

    K(pi) = sum over ordered pairs (a above b in pi) of W[a, b]

where ``W`` is the cached precedence matrix (Definition 11; ``W[a, b]``
counts the base rankings placing ``b`` before ``a``).  Re-evaluating it from
scratch costs O(n^2); this engine maintains it incrementally so that the
standard local-search moves cost:

* **adjacent swap** — O(1).  Swapping the candidates at positions ``p`` and
  ``p + 1`` only re-orders one pair ``(u, l)``, so the objective changes by
  ``W[l, u] - W[u, l]``, i.e. by minus the *margin* ``M[u, l]`` where
  ``M = W - W^T``;
* **general swap** — O(window).  Swapping candidates ``u`` (position ``p_u``)
  and ``v`` (position ``p_v > p_u``) re-orders only the pairs each of them
  forms with the candidates strictly between the two positions, plus the pair
  ``(u, v)`` itself:  ``delta = sum_c (M[v, c] - M[u, c]) - M[u, v]`` over the
  in-between candidates ``c``;
* **block move** — O(window).  Moving one candidate ``x`` from position ``p``
  to position ``q`` shifts the block between the two positions by one and
  re-orders exactly the pairs ``(x, c)`` for ``c`` in that block:
  ``delta = sum_c M[x, c]`` when ``x`` rises (``q < p``) and
  ``- sum_c M[x, c]`` when it falls.

**The bubble pass as carry runs.**  :meth:`KemenyDeltaEngine.sweep_adjacent`
performs one full left-to-right local-Kemenization pass (swap whenever the
adjacent margin is positive), reproducing byte-for-byte the decisions of the
retained from-scratch pass in
:func:`repro.aggregation.local_search.local_kemenization_reference`.  The key
structural fact: within one pass, consecutive swaps always chain the *same*
falling candidate — once the pair at ``p`` swaps, the demoted candidate is
compared against the next element, and so on until it finally wins a
comparison.  A pass therefore decomposes into a handful of *carry runs*, and
each run is resolved with one vectorised gather of the carried candidate's
margin row against the untouched tail of the order (the first non-positive
entry ends the run), one slice shift, and an O(1) patch of the maintained
"improving adjacent pair" mask.  Converged inputs cost a single O(n) mask
check and no Python loop; a pass with ``r`` runs costs O(r) numpy calls
instead of ``n - 1`` scalar matrix reads.

**Exactness.**  For unweighted ranking sets every entry of ``W`` (and hence of
``M``) is an integer-valued float, so the running objective is maintained by
exact integer-valued additions and stays **bit-identical** to recomputing
:func:`repro.core.distances.kemeny_objective` on the materialised ranking (all
values are far below 2^53).  The property tests in
``tests/aggregation/test_kemeny_delta_engine.py`` drive randomized swap / block-move
sequences through the engine and assert exactly that, mirroring the
``FairnessState`` contract of :mod:`repro.fairness.incremental`.  For weighted
precedence matrices the deltas are still exact in the algebraic sense but
float rounding may differ from a from-scratch evaluation; callers that need
bit-identity should recompute at the end.
"""

from __future__ import annotations

import numpy as np

from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import AggregationError
from repro.kernels import KernelBackend, resolve_backend

__all__ = ["KemenyDeltaEngine"]


class KemenyDeltaEngine:
    """Mutable ranking state with an incrementally maintained Kemeny objective.

    Parameters
    ----------
    rankings:
        The base rankings — either a :class:`RankingSet` (its cached
        precedence matrix is used; with ``weighted=True`` the weighted
        variant) or a precomputed square precedence matrix.
    initial:
        The starting ranking (not modified; its arrays are copied).
    weighted:
        Use the ranking-set weights when building the precedence matrix.
        Ignored when ``rankings`` is already a matrix.
    backend:
        Compute-kernel backend for the hot loops (:mod:`repro.kernels`):
        ``None`` (the process default), a registered backend name, or a
        :class:`~repro.kernels.KernelBackend` instance.
    """

    def __init__(
        self,
        rankings: RankingSet | np.ndarray,
        initial: Ranking,
        weighted: bool = False,
        backend: KernelBackend | str | None = None,
    ) -> None:
        self._kernels = resolve_backend(backend)
        if isinstance(rankings, RankingSet):
            precedence = rankings.precedence_matrix(weighted=weighted)
            margin = rankings.margin_matrix(weighted=weighted)
        else:
            precedence = np.asarray(rankings, dtype=float)
            if precedence.ndim != 2 or precedence.shape[0] != precedence.shape[1]:
                raise AggregationError(
                    "precedence matrix must be square, got shape "
                    f"{precedence.shape}"
                )
            margin = precedence - precedence.T
            margin.setflags(write=False)
        n = precedence.shape[0]
        if initial.n_candidates != n:
            raise AggregationError(
                "initial ranking and precedence matrix cover different "
                f"universes: {initial.n_candidates} vs {n} candidates"
            )
        self._n = n
        self._precedence = precedence
        self._margin = margin
        self._order_array = initial.order.astype(np.int64, copy=True)
        self._order_list: list[int] = self._order_array.tolist()
        self._order_dirty = False
        self._positions_list: list[int] = initial.positions.tolist()
        self._positions_dirty = False
        # Everything O(n^2) (the nested-list margin mirror, the objective) or
        # O(n) but sweep-specific (the improving-pair mask) is built lazily:
        # the common already-converged sweep must cost one O(n) gather, not an
        # up-front quadratic build.
        self._margin_rows_cache: list[list[float]] | None = None
        self._objective_cache: float | None = None
        self._sweep_mask: np.ndarray | None = None

    # ------------------------------------------------------------------
    # lazy internals
    # ------------------------------------------------------------------
    def _rows(self) -> list[list[float]]:
        """Nested plain-list mirror of the margin matrix (lazily built).

        Scalar reads cost several times less on nested lists than on numpy
        arrays (the same trade as ``FairnessState``'s group lists); the
        mirror pays off once a caller issues many point queries.
        """
        if self._margin_rows_cache is None:
            self._margin_rows_cache = self._margin.tolist()
        return self._margin_rows_cache

    def _order(self) -> list[int]:
        """Candidate-order list, rebuilt lazily after sweep shifts.

        The sweep operates on the numpy order array alone (its shifts are
        C-speed slice copies); point-mutation paths keep both mirrors in sync
        and only pay the O(n) rebuild when they follow a sweep.
        """
        if self._order_dirty:
            self._order_list = self._order_array.tolist()
            self._order_dirty = False
        return self._order_list

    def _positions(self) -> list[int]:
        """Candidate -> position list, rebuilt lazily after sweep shifts."""
        if self._positions_dirty:
            positions = np.empty(self._n, dtype=np.int64)
            positions[self._order_array] = np.arange(self._n, dtype=np.int64)
            self._positions_list = positions.tolist()
            self._positions_dirty = False
        return self._positions_list

    def _add_to_objective(self, delta: float) -> None:
        """Fold an applied move's delta into the running objective, if built.

        When the objective has not been queried yet there is nothing to
        maintain — the lazy computation reads the *current* order, so skipped
        deltas are already reflected in it.
        """
        if self._objective_cache is not None:
            self._objective_cache += delta

    def _invalidate_sweep_mask(self) -> None:
        if self._sweep_mask is not None:
            self._sweep_mask = None

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def n_candidates(self) -> int:
        """Number of candidates in the ranking."""
        return self._n

    @property
    def kernel_backend(self) -> KernelBackend:
        """The compute-kernel backend the hot loops run on."""
        return self._kernels

    @property
    def objective(self) -> float:
        """Current Kemeny objective (summed pairwise disagreement) of the order.

        Computed on first access with the same masked-sum expression as
        :func:`repro.core.distances.kemeny_objective` (so the value is
        bit-identical to the from-scratch evaluator) and maintained
        incrementally from then on.
        """
        if self._objective_cache is None:
            positions = np.asarray(self._positions(), dtype=np.int64)
            above = positions[:, np.newaxis] < positions[np.newaxis, :]
            self._objective_cache = float(self._precedence[above].sum())
        return self._objective_cache

    @property
    def order_list(self) -> list[int]:
        """Current candidate order, best to worst (live internal list)."""
        return self._order()

    @property
    def positions_list(self) -> list[int]:
        """Current candidate -> position mapping (live internal list)."""
        return self._positions()

    @property
    def precedence(self) -> np.ndarray:
        """The precedence matrix the objective is defined over."""
        return self._precedence

    def to_ranking(self) -> Ranking:
        """Materialise the current order as an immutable :class:`Ranking`."""
        return Ranking(self._order_array.copy(), validate=False)

    def margin(self, first: int, second: int) -> float:
        """``W[first, second] - W[second, first]`` (positive: ``first`` above
        ``second`` costs more than the reverse)."""
        return self._rows()[first][second]

    # ------------------------------------------------------------------
    # adjacent swaps (O(1))
    # ------------------------------------------------------------------
    def delta_adjacent_swap(self, position: int) -> float:
        """Objective change of swapping the candidates at ``position`` and
        ``position + 1`` (negative: the swap improves the consensus)."""
        order = self._order()
        upper = order[position]
        lower = order[position + 1]
        return self._rows()[lower][upper]

    def apply_adjacent_swap(self, position: int) -> float:
        """Swap positions ``position``/``position + 1``; return the applied delta."""
        order = self._order()
        positions = self._positions()
        upper = order[position]
        lower = order[position + 1]
        delta = self._rows()[lower][upper]
        order[position] = lower
        order[position + 1] = upper
        self._order_array[position] = lower
        self._order_array[position + 1] = upper
        positions[upper] = position + 1
        positions[lower] = position
        self._add_to_objective(delta)
        self._invalidate_sweep_mask()
        return delta

    # ------------------------------------------------------------------
    # general swaps (O(window))
    # ------------------------------------------------------------------
    def delta_swap(self, first: int, second: int) -> float:
        """Objective change of swapping candidates ``first`` and ``second``.

        O(window) in the number of candidates strictly between the two
        positions; the swapped ranking is never materialised.
        """
        if first == second:
            return 0.0
        positions = self._positions()
        if positions[first] <= positions[second]:
            upper, lower = first, second
        else:
            upper, lower = second, first
        position_upper = positions[upper]
        position_lower = positions[lower]
        delta = -self._margin[upper, lower]
        if position_lower - position_upper > 1:
            margin = self._margin
            window = self._order_array[position_upper + 1 : position_lower]
            delta += float((margin[lower, window] - margin[upper, window]).sum())
        return float(delta)

    def apply_swap(self, first: int, second: int) -> float:
        """Swap two candidates; return the applied objective delta."""
        delta = self.delta_swap(first, second)
        if first != second:
            order = self._order()
            positions = self._positions()
            position_first = positions[first]
            position_second = positions[second]
            order[position_first] = second
            order[position_second] = first
            self._order_array[position_first] = second
            self._order_array[position_second] = first
            positions[first] = position_second
            positions[second] = position_first
            self._add_to_objective(delta)
            self._invalidate_sweep_mask()
        return delta

    # ------------------------------------------------------------------
    # block moves (O(window))
    # ------------------------------------------------------------------
    def delta_move(self, candidate: int, new_position: int) -> float:
        """Objective change of moving ``candidate`` to ``new_position``.

        The candidates between the old and new position shift by one
        (a standard insertion move); cost is O(window).
        """
        if not 0 <= new_position < self._n:
            raise AggregationError(
                f"move target {new_position} outside positions 0..{self._n - 1}"
            )
        old_position = self._positions()[candidate]
        if new_position == old_position:
            return 0.0
        margin = self._margin
        if new_position < old_position:
            window = self._order_array[new_position:old_position]
            return float(margin[candidate, window].sum())
        window = self._order_array[old_position + 1 : new_position + 1]
        return -float(margin[candidate, window].sum())

    def apply_move(self, candidate: int, new_position: int) -> float:
        """Move ``candidate`` to ``new_position``; return the applied delta."""
        delta = self.delta_move(candidate, new_position)
        old_position = self._positions()[candidate]
        if new_position != old_position:
            order = self._order()
            positions = self._positions_list
            order.pop(old_position)
            order.insert(new_position, candidate)
            low = min(old_position, new_position)
            high = max(old_position, new_position)
            self._order_array[low : high + 1] = order[low : high + 1]
            for position in range(low, high + 1):
                positions[order[position]] = position
            self._add_to_objective(delta)
            self._invalidate_sweep_mask()
        return delta

    def move_deltas(self, candidate: int) -> np.ndarray:
        """Objective change of moving ``candidate`` to *every* target position.

        One vectorised gather of the candidate's margin row against the
        current order; entry ``q`` equals ``delta_move(candidate, q)``
        (``0.0`` at the current position).  Writing ``g`` for the gathered
        row and ``P`` for its prefix sums, a move from position ``p`` costs
        ``P[p] - P[q]`` when rising and ``P[p + 1] - P[q + 1]`` when falling
        — so the whole row of targets is scored in O(n) with no Python loop.

        For unweighted ranking sets every value is an exact integer-valued
        float and matches :meth:`delta_move` bit for bit; for weighted
        matrices the prefix-sum differences may round differently from the
        window sums, so treat the entries as scores, not committed deltas
        (:meth:`apply_move` always recomputes the applied delta).
        """
        position = self._positions()[candidate]
        return self._kernels.move_deltas(
            self._margin, candidate, self._order_array, position
        )

    def best_move(self, candidate: int) -> tuple[float, int]:
        """Best-improvement insertion target for ``candidate``.

        Returns ``(delta, position)`` for the target position minimising the
        objective change (ties broken towards the smallest position, matching
        ``argmin``); ``delta >= 0.0`` means no insertion move of this
        candidate improves the consensus.
        """
        deltas = self.move_deltas(candidate)
        best = int(deltas.argmin())
        return float(deltas[best]), best

    # ------------------------------------------------------------------
    # local-Kemenization bubble pass
    # ------------------------------------------------------------------
    def sweep_adjacent(self) -> bool:
        """One left-to-right local-Kemenization pass; ``True`` if it swapped.

        Identical decisions to the retained from-scratch pass in
        :func:`repro.aggregation.local_search.local_kemenization_reference`
        (see the module docstring for the carry-run decomposition argument):

        * the maintained mask marks the adjacent pairs whose swap strictly
          improves the objective; a pass that finds none is free of Python
          loops (and repeated sweeps reuse the mask — it is patched in O(1)
          per run and only rebuilt after out-of-band mutations);
        * each carry run gathers the carried candidate's margin row against
          the untouched tail once; the first non-positive entry is exactly
          where the reference's scalar scan stops swapping;
        * the scan resumes after the run at the next marked pair — pairs the
          run skipped were unmarked originals, on which the reference scan
          would not have swapped either.

        The carry-run loop itself lives on the configured kernel backend
        (:meth:`repro.kernels.KernelBackend.sweep_adjacent`); this method
        owns the mask cache and the engine bookkeeping around it.
        """
        if self._n < 2:
            return False
        mask = self._sweep_mask
        if mask is None:
            mask = self._kernels.build_sweep_mask(self._order_array, self._margin)
            self._sweep_mask = mask
        # Accumulating the pass's improvement costs one extra slice-sum per
        # run; skip it while the lazy objective has never been queried (it
        # would be recomputed from the final order anyway).
        track_objective = self._objective_cache is not None
        swapped, improvement = self._kernels.sweep_adjacent(
            self._order_array, self._margin, mask, track_objective
        )
        if not swapped:
            return False
        self._order_dirty = True
        self._positions_dirty = True
        if track_objective:
            self._add_to_objective(-improvement)
        return True
