"""Copeland rank aggregation (Copeland, 1951).

Copeland is a pairwise (Condorcet-consistent) method: a candidate's score is
the number of head-to-head pairwise contests it wins against other candidates,
where a contest between ``a`` and ``b`` is won by the candidate the majority
of base rankings prefer and a tie counts as a win for both (the convention
stated in Section III-B of the paper).  Candidates are ordered by decreasing
number of wins.

Complexity: O(n^2 |R|) for the precedence matrix — computed once per ranking
set as a chunked numpy broadcast and cached on the :class:`RankingSet` (both
the unweighted and weighted variants), so repeated aggregations over the same
set pay it once — then O(n^2) for the contest table and O(n log n) for the
final sort.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import AggregationResult, RankAggregator
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet

__all__ = ["CopelandAggregator", "copeland_scores"]


def copeland_scores(rankings: RankingSet, weighted: bool = False) -> np.ndarray:
    """Number of pairwise contests each candidate wins (ties win for both)."""
    support = rankings.pairwise_support(weighted=weighted)
    wins = (support >= support.T).astype(np.int64)
    np.fill_diagonal(wins, 0)
    return wins.sum(axis=1).astype(float)


class CopelandAggregator(RankAggregator):
    """Order candidates by decreasing pairwise-contest wins (ties by Borda, then id)."""

    name = "Copeland"

    def __init__(self, weighted: bool = False, tie_break_with_borda: bool = True) -> None:
        self._weighted = weighted
        self._tie_break_with_borda = tie_break_with_borda

    def _aggregate(self, rankings: RankingSet) -> AggregationResult:
        scores = copeland_scores(rankings, weighted=self._weighted)
        if self._tie_break_with_borda:
            # Secondary key: total pairwise support, scaled into (0, 1) so it
            # can never overturn a full contest win.
            support = rankings.pairwise_support(weighted=self._weighted).sum(axis=1)
            max_support = support.max() if support.size else 0.0
            if max_support > 0:
                scores = scores + 0.5 * support / (max_support + 1.0)
        ranking = Ranking.from_scores(scores, descending=True)
        return AggregationResult(
            ranking=ranking,
            method=self.name,
            diagnostics={"scores": scores},
        )
