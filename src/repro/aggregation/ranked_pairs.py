"""Ranked Pairs (Tideman) rank aggregation.

Ranked Pairs is a classic Condorcet-consistent voting rule: sort the pairwise
majorities by strength, then lock them in one at a time, skipping any majority
that would create a cycle with the already-locked ones.  The locked relation
is a total order whose topological order is the consensus ranking.

It is not evaluated in the MANI-Rank paper but belongs to the same family of
pairwise Condorcet methods as Copeland and Schulze (Section III-B); it is
included as an additional substrate method, an alternative Make-MR-Fair seed,
and a cross-check for the Condorcet-winner tests.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import AggregationResult, RankAggregator
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet

__all__ = ["RankedPairsAggregator"]


class _CycleChecker:
    """Incremental reachability structure for the lock-in step."""

    def __init__(self, n: int) -> None:
        self._n = n
        self._reachable = np.eye(n, dtype=bool)

    def creates_cycle(self, winner: int, loser: int) -> bool:
        """Locking ``winner -> loser`` creates a cycle iff ``loser`` reaches ``winner``."""
        return bool(self._reachable[loser, winner])

    def lock(self, winner: int, loser: int) -> None:
        """Add the edge ``winner -> loser`` and update transitive reachability."""
        # Everything that reaches the winner now also reaches everything the
        # loser reaches.
        reaches_winner = self._reachable[:, winner]
        reached_by_loser = self._reachable[loser, :]
        self._reachable[np.ix_(reaches_winner, reached_by_loser)] = True

    def descendants(self) -> np.ndarray:
        """Number of candidates each candidate reaches in the locked closure."""
        return self._reachable.sum(axis=1).astype(float) - 1.0


class RankedPairsAggregator(RankAggregator):
    """Tideman's Ranked Pairs consensus ranking."""

    name = "Ranked-Pairs"

    def __init__(self, weighted: bool = False) -> None:
        self._weighted = weighted

    def _aggregate(self, rankings: RankingSet) -> AggregationResult:
        n = rankings.n_candidates
        if n == 1:
            return AggregationResult(Ranking([0]), self.name)
        support = rankings.pairwise_support(weighted=self._weighted)

        # Majorities sorted by (margin, winner support) descending; ties are
        # broken by candidate ids so the outcome is deterministic.
        majorities: list[tuple[float, float, int, int]] = []
        for a in range(n):
            for b in range(n):
                if a != b and support[a, b] > support[b, a]:
                    margin = support[a, b] - support[b, a]
                    majorities.append((margin, support[a, b], a, b))
        majorities.sort(key=lambda item: (-item[0], -item[1], item[2], item[3]))

        checker = _CycleChecker(n)
        for _, _, winner, loser in majorities:
            if not checker.creates_cycle(winner, loser):
                checker.lock(winner, loser)

        # Rank by the number of candidates reached in the transitive closure
        # of the locked relation: a topological order of the locked graph.
        wins = checker.descendants()
        # Break remaining ties (pairs never ordered by any locked majority)
        # by total pairwise support, scaled so it cannot overturn a locked win.
        totals = support.sum(axis=1)
        max_total = totals.max() if totals.size else 0.0
        scores = wins
        if max_total > 0:
            scores = wins + 0.5 * totals / (max_total + 1.0)
        ranking = Ranking.from_scores(scores, descending=True)
        return AggregationResult(
            ranking=ranking,
            method=self.name,
            diagnostics={"locked_wins": wins},
        )
