"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so that callers can
catch everything coming out of the library with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "RankingError",
    "CandidateError",
    "AttributeDomainError",
    "AggregationError",
    "InfeasibleProblemError",
    "SolverError",
    "KernelError",
    "FairnessError",
    "DataGenerationError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An input value failed validation (wrong shape, range, or type)."""


class RankingError(ValidationError):
    """A ranking is malformed: not a permutation, wrong universe, or empty."""


class CandidateError(ValidationError):
    """A candidate identifier is unknown or a candidate table is malformed."""


class AttributeDomainError(ValidationError):
    """A protected attribute value falls outside its declared domain."""


class AggregationError(ReproError):
    """A rank aggregation method could not produce a consensus ranking."""


class InfeasibleProblemError(AggregationError):
    """The fair consensus problem has no feasible solution.

    Raised, for example, when the MANI-Rank constraints cannot be satisfied
    for the requested ``delta`` (e.g. group structure makes parity at the
    requested threshold impossible for any permutation).
    """


class SolverError(AggregationError):
    """The underlying optimization backend failed or returned a bad status."""


class KernelError(ReproError):
    """A compute-kernel backend is unknown, unavailable, or misconfigured."""


class FairnessError(ReproError):
    """A fairness metric was requested for an invalid group configuration."""


class DataGenerationError(ReproError):
    """A synthetic data generator received inconsistent parameters."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""
