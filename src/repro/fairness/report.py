"""Fairness reporting in the layout of the paper's case-study tables.

Tables IV and V of the paper report, for each ranking (base rankings, Kemeny,
and the fair methods), the FPR score of every group, the ARP of every
protected attribute, and the IRP.  :class:`FairnessTable` builds exactly that
structure from a set of labelled rankings and renders it as an ASCII table or
as a list of row dictionaries (for CSV export or assertions in tests).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.candidates import CandidateTable
from repro.core.ranking import Ranking
from repro.fairness.fpr import fpr_by_group
from repro.fairness.parity import parity_scores

__all__ = ["FairnessTable", "fairness_row", "format_float"]


def format_float(value: float, digits: int = 2) -> str:
    """Format a float the way the paper's tables do (fixed decimals)."""
    return f"{value:.{digits}f}"


def fairness_row(ranking: Ranking, table: CandidateTable) -> dict[str, float]:
    """One table row: per-group FPR, per-attribute ARP, and IRP.

    Keys are group labels (``"Gender=Man"``), attribute names (ARP columns),
    and ``"IRP"``.
    """
    row: dict[str, float] = {}
    parity = parity_scores(ranking, table)
    for attribute in table.attribute_names:
        for label, score in fpr_by_group(ranking, table, attribute).items():
            row[label] = score
    for attribute in table.attribute_names:
        row[attribute] = parity[attribute]
    if len(table.attribute_names) > 1:
        row["IRP"] = parity[table.INTERSECTION]
    else:
        row["IRP"] = parity[table.attribute_names[0]]
    return row


@dataclass
class FairnessTable:
    """A collection of named rankings evaluated against one candidate table.

    Build one with :meth:`from_rankings`, then render with :meth:`to_text` or
    inspect programmatically through :attr:`rows`.
    """

    candidate_table: CandidateTable
    row_labels: list[str]
    rows: list[dict[str, float]]

    @classmethod
    def from_rankings(
        cls,
        candidate_table: CandidateTable,
        rankings: Mapping[str, Ranking] | Sequence[tuple[str, Ranking]],
    ) -> "FairnessTable":
        """Evaluate every labelled ranking and assemble the table."""
        if isinstance(rankings, Mapping):
            items = list(rankings.items())
        else:
            items = list(rankings)
        labels = [label for label, _ in items]
        rows = [fairness_row(ranking, candidate_table) for _, ranking in items]
        return cls(candidate_table=candidate_table, row_labels=labels, rows=rows)

    @property
    def columns(self) -> list[str]:
        """Column names in presentation order (groups, then ARPs, then IRP)."""
        if not self.rows:
            return []
        return list(self.rows[0])

    def row(self, label: str) -> dict[str, float]:
        """Return the row for ranking ``label``."""
        index = self.row_labels.index(label)
        return self.rows[index]

    def to_records(self) -> list[dict[str, object]]:
        """Return rows as dictionaries including the ranking label."""
        records: list[dict[str, object]] = []
        for label, row in zip(self.row_labels, self.rows):
            record: dict[str, object] = {"ranking": label}
            record.update(row)
            records.append(record)
        return records

    def to_text(self, digits: int = 2) -> str:
        """Render the table as aligned ASCII text (paper Table IV/V layout)."""
        columns = self.columns
        header = ["Ranking", *columns]
        body = [
            [label, *[format_float(row[column], digits) for column in columns]]
            for label, row in zip(self.row_labels, self.rows)
        ]
        widths = [
            max(len(str(cell)) for cell in [header[i], *[line[i] for line in body]])
            for i in range(len(header))
        ]
        def render(line: list[str]) -> str:
            return "  ".join(str(cell).ljust(width) for cell, width in zip(line, widths))

        separator = "-" * (sum(widths) + 2 * (len(widths) - 1))
        lines = [render(header), separator]
        lines.extend(render(line) for line in body)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()
