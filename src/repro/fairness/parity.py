"""Attribute Rank Parity, Intersectional Rank Parity and the MANI-Rank check.

Implements Definitions 5–7 of the paper:

* ``ARP_pk(π)`` — the maximum absolute FPR gap between any two groups of the
  protected attribute ``pk`` (Definition 5);
* ``IRP(π)`` — the same quantity over the intersectional groups
  (Definition 6);
* MANI-Rank group fairness — ``ARP_pk(π) <= Δ`` for every protected attribute
  and ``IRP(π) <= Δ`` (Definition 7).

``ARP = 0`` is perfect statistical parity for the attribute; ``ARP = 1`` means
one group occupies the very top of the ranking while another occupies the very
bottom.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.candidates import CandidateTable
from repro.core.ranking import Ranking
from repro.fairness.fpr import fpr_by_group, fpr_vector
from repro.fairness.thresholds import FairnessThresholds

__all__ = [
    "arp",
    "irp",
    "parity_scores",
    "mani_rank_satisfied",
    "mani_rank_violations",
    "ManiRankReport",
    "evaluate_mani_rank",
]


def arp(ranking: Ranking, table: CandidateTable, attribute: str) -> float:
    """Attribute Rank Parity (Definition 5) of ``attribute`` in ``ranking``.

    The maximum absolute difference in FPR between any two groups of the
    attribute.  Passing :data:`CandidateTable.INTERSECTION` computes the IRP.
    """
    scores = fpr_vector(ranking, table, attribute)
    return float(scores.max() - scores.min())


def irp(ranking: Ranking, table: CandidateTable) -> float:
    """Intersectional Rank Parity (Definition 6) of ``ranking``.

    When the table has a single protected attribute the intersection is that
    attribute, so IRP degenerates to its ARP.
    """
    if len(table.attribute_names) == 1:
        return arp(ranking, table, table.attribute_names[0])
    return arp(ranking, table, table.INTERSECTION)


def parity_scores(ranking: Ranking, table: CandidateTable) -> dict[str, float]:
    """ARP for every protected attribute and IRP, keyed by entity name.

    The intersection appears under :data:`CandidateTable.INTERSECTION` when
    the table has more than one protected attribute.
    """
    return {
        entity: arp(ranking, table, entity)
        for entity in table.all_fairness_entities()
    }


def mani_rank_satisfied(
    ranking: Ranking,
    table: CandidateTable,
    delta: FairnessThresholds | float | Mapping[str, float],
) -> bool:
    """Return whether ``ranking`` satisfies MANI-Rank fairness (Definition 7)."""
    return not mani_rank_violations(ranking, table, delta)


def mani_rank_violations(
    ranking: Ranking,
    table: CandidateTable,
    delta: FairnessThresholds | float | Mapping[str, float],
) -> dict[str, float]:
    """Return the entities violating MANI-Rank and their parity scores.

    An entity (protected attribute or intersection) is violating when its
    ARP/IRP strictly exceeds its threshold (a small numerical tolerance is
    applied so that scores produced by the ILP solver at exactly Δ count as
    satisfied).
    """
    thresholds = FairnessThresholds.coerce(delta)
    tolerance = 1e-9
    violations: dict[str, float] = {}
    for entity, score in parity_scores(ranking, table).items():
        if score > thresholds.threshold_for(entity) + tolerance:
            violations[entity] = score
    return violations


@dataclass(frozen=True)
class ManiRankReport:
    """Full MANI-Rank evaluation of a single ranking.

    Attributes
    ----------
    parity:
        ARP per protected attribute plus IRP (keyed by entity name).
    fpr:
        Per-entity, per-group FPR scores.
    thresholds:
        The thresholds the ranking was evaluated against.
    violations:
        Entities whose parity score exceeds their threshold.
    """

    parity: dict[str, float]
    fpr: dict[str, dict[str, float]]
    thresholds: dict[str, float]
    violations: dict[str, float]

    @property
    def satisfied(self) -> bool:
        """True when no fairness entity violates its threshold."""
        return not self.violations

    @property
    def max_violation(self) -> float:
        """Largest amount by which any entity exceeds its threshold (0 if fair)."""
        if not self.violations:
            return 0.0
        return max(
            score - self.thresholds[entity]
            for entity, score in self.violations.items()
        )

    def entity_scores(self) -> list[tuple[str, float, float, bool]]:
        """Rows of ``(entity, score, threshold, satisfied)`` for reporting."""
        rows = []
        for entity, score in self.parity.items():
            threshold = self.thresholds[entity]
            rows.append((entity, score, threshold, entity not in self.violations))
        return rows


def evaluate_mani_rank(
    ranking: Ranking,
    table: CandidateTable,
    delta: FairnessThresholds | float | Mapping[str, float],
) -> ManiRankReport:
    """Evaluate MANI-Rank fairness of ``ranking`` and return a full report."""
    thresholds = FairnessThresholds.coerce(delta)
    parity = parity_scores(ranking, table)
    fpr_scores = {
        entity: fpr_by_group(ranking, table, entity)
        for entity in table.all_fairness_entities()
    }
    threshold_map = thresholds.as_mapping(table)
    tolerance = 1e-9
    violations = {
        entity: score
        for entity, score in parity.items()
        if score > threshold_map[entity] + tolerance
    }
    return ManiRankReport(
        parity=parity,
        fpr=fpr_scores,
        thresholds=threshold_map,
        violations=violations,
    )
