"""Fairness thresholds (the ``Δ`` parameter of the MANI-Rank criteria).

Definition 7 of the paper uses a single threshold ``Δ`` applied to every
protected attribute and to the intersection.  Section II-B ("Customizing Group
Fairness") notes that applications may instead set a per-attribute threshold
``Δ_pk`` and a separate ``Δ_Inter``.  :class:`FairnessThresholds` models both:
a scalar threshold broadcast to every fairness entity, or an explicit mapping.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.candidates import CandidateTable
from repro.exceptions import ValidationError

__all__ = ["FairnessThresholds"]


class FairnessThresholds:
    """Per-entity fairness thresholds for the MANI-Rank criteria.

    Parameters
    ----------
    default:
        Threshold applied to every fairness entity not listed in
        ``per_entity``.  Must be in [0, 1].
    per_entity:
        Optional mapping from attribute name (or
        :data:`CandidateTable.INTERSECTION`) to a specific threshold.

    Examples
    --------
    >>> FairnessThresholds(0.1).threshold_for("Gender")
    0.1
    >>> thresholds = FairnessThresholds(0.1, {"Race": 0.05})
    >>> thresholds.threshold_for("Race")
    0.05
    """

    def __init__(
        self,
        default: float,
        per_entity: Mapping[str, float] | None = None,
    ) -> None:
        self._default = self._validate(default, "default")
        self._per_entity = {
            str(entity): self._validate(value, entity)
            for entity, value in (per_entity or {}).items()
        }

    @staticmethod
    def _validate(value: float, label: str) -> float:
        try:
            value = float(value)
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"threshold {label!r} must be a number") from exc
        if not 0.0 <= value <= 1.0:
            raise ValidationError(
                f"threshold {label!r} must be in [0, 1], got {value}"
            )
        return value

    @classmethod
    def coerce(cls, delta: "FairnessThresholds | float | Mapping[str, float]") -> "FairnessThresholds":
        """Build thresholds from a scalar, a mapping, or an existing instance.

        A scalar is the common case (the paper's single ``Δ``).  A mapping must
        provide a ``"default"`` key or cover every entity explicitly; here we
        require a ``"default"`` key for simplicity unless the mapping is empty.
        """
        if isinstance(delta, cls):
            return delta
        if isinstance(delta, Mapping):
            mapping = dict(delta)
            default = mapping.pop("default", 1.0)
            return cls(default, mapping)
        return cls(float(delta))

    @property
    def default(self) -> float:
        """The default threshold used for entities without an explicit value."""
        return self._default

    @property
    def per_entity(self) -> dict[str, float]:
        """Copy of the explicit per-entity thresholds."""
        return dict(self._per_entity)

    def threshold_for(self, entity: str) -> float:
        """Return the threshold applying to ``entity``."""
        return self._per_entity.get(entity, self._default)

    def as_mapping(self, table: CandidateTable) -> dict[str, float]:
        """Return the concrete threshold per fairness entity of ``table``."""
        return {
            entity: self.threshold_for(entity)
            for entity in table.all_fairness_entities()
        }

    def strictest(self) -> float:
        """Return the smallest threshold over all explicit entries and the default."""
        values = [self._default, *self._per_entity.values()]
        return min(values)

    def __repr__(self) -> str:
        if self._per_entity:
            return (
                f"FairnessThresholds(default={self._default}, "
                f"per_entity={self._per_entity})"
            )
        return f"FairnessThresholds({self._default})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FairnessThresholds):
            return NotImplemented
        return (
            self._default == other._default
            and self._per_entity == other._per_entity
        )

    def __hash__(self) -> int:
        return hash((self._default, tuple(sorted(self._per_entity.items()))))
