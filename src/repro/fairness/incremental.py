"""Incremental fairness engine: O(n_groups)-per-move MANI-Rank statistics.

Every swap-based algorithm in this codebase (Make-MR-Fair / Algorithm 2, the
local-search Kemeny heuristics, the exhaustive stall fallback) repeatedly asks
the same question: *what do the parity scores become if these two candidates
trade places?*  Answering it from scratch costs O(n · n_groups) per evaluated
move plus an O(n) :class:`~repro.core.ranking.Ranking` copy.  This module
maintains the statistics incrementally so the same question costs
O(Σ n_groups) — independent of ``n`` and of the gap between the two
positions.

**The cancellation that makes it cheap.**  Swap candidates ``u`` (position
``p_u``) and ``v`` (position ``p_v``, ``p_u < p_v``) and consider the
per-group favored-mixed-pair counts (the numerators of the FPR scores,
Definition 4).  For a third candidate ``c`` strictly between the two
positions, the pair ``(u, c)`` flips against ``u`` while the pair ``(v, c)``
flips in favor of ``v`` — so ``c``'s *group* gains one favored pair from the
first flip and loses one from the second.  Group totals of every third-party
group therefore cancel exactly, and only the groups of the two swapped
candidates change::

    favored[group(u)] -= p_v - p_u        # u falls past (p_v - p_u) rivals
    favored[group(v)] += p_v - p_u        # v rises past the same rivals

(and nothing changes when ``u`` and ``v`` share the group).  The proof is a
two-line case analysis per pair; the property tests in
``tests/fairness/test_incremental.py`` additionally verify it against the
from-scratch evaluator on randomized swap sequences.

Per-operation complexity (``E`` = fairness entities, ``G`` = groups of one
entity, ``n`` = candidates):

* construction — O(n · Σ_E G) (one vectorised favored-pair count per entity);
* :meth:`FairnessState.delta_swap` — O(Σ_E 1) to locate the two affected
  groups per entity;
* :meth:`FairnessState.parity_after_swap` /
  :meth:`FairnessState.potential_after_swap` — O(Σ_E G);
* :meth:`FairnessState.apply_swap` — O(Σ_E G);
* :meth:`FairnessState.parity_scores` — O(E) (cached per-entity floats);
* :meth:`FairnessState.to_ranking` — O(n).

All parity values are **bit-identical** to
:func:`repro.fairness.parity.parity_scores` because the engine maintains the
exact integer favored-pair counts and performs the same correctly-rounded
float divisions and max/min reductions on them.  The group-level vectors have
at most a handful of entries, so they are kept as plain Python lists — for
arrays this small, interpreter-level arithmetic is several times faster than
numpy dispatch, and ``int / int`` division produces the identical IEEE-754
double as numpy's ``int64 / int64``.
"""

from __future__ import annotations

import numpy as np

from repro.core.candidates import CandidateTable
from repro.core.ranking import Ranking
from repro.exceptions import FairnessError
from repro.fairness.thresholds import FairnessThresholds
from repro.kernels import KernelBackend, resolve_backend

__all__ = ["FairnessState"]


class _EntityStats:
    """Per-entity group structure and incrementally maintained counts.

    Group-indexed vectors (``favored``, ``denominators``, ``fpr``) are plain
    Python lists: entities have at most a handful of groups, where list
    arithmetic beats numpy dispatch by a wide margin in the per-move hot
    path.  Candidate-indexed structures stay as numpy arrays.
    """

    __slots__ = (
        "name",
        "kernels",
        "membership",
        "n_groups",
        "denominators",
        "favored",
        "group_members",
        "group_masks",
        "parity",
        "fpr",
        "highest_index",
        "lowest_index",
    )

    def __init__(
        self,
        name: str,
        table: CandidateTable,
        ranking: Ranking,
        kernels: KernelBackend,
    ) -> None:
        groups = table.groups(name)
        n = table.n_candidates
        self.name = name
        self.kernels = kernels
        membership = table.group_membership_array(name)
        # Backend-chosen representations: plain lists for the numpy backend
        # (verbatim the pre-seam code), int64 arrays for compiled backends.
        self.membership = kernels.membership_vector(membership)
        self.n_groups = len(groups)
        denominators = [group.size * (n - group.size) for group in groups]
        if any(denominator == 0 for denominator in denominators):
            # Same failure mode (and message) as repro.fairness.fpr.fpr_vector.
            raise FairnessError(
                f"attribute {name!r} has a group covering all candidates; "
                "FPR is undefined"
            )
        self.denominators = kernels.group_vector(denominators)
        self.favored = kernels.group_vector(
            kernels.favored_mixed_pairs_by_group(
                ranking.order, membership, self.n_groups
            )
        )
        self.group_members: tuple[np.ndarray, ...] = tuple(
            np.asarray(group.members, dtype=np.int64) for group in groups
        )
        masks = []
        for group in groups:
            mask = np.zeros(n, dtype=bool)
            mask[list(group.members)] = True
            masks.append(mask)
        self.group_masks: tuple[np.ndarray, ...] = tuple(masks)
        self._refresh()

    def _refresh(self) -> None:
        """Recompute the derived per-entity caches from the integer counts.

        The divisions and max/min reductions produce bit-identical values to
        :func:`repro.fairness.fpr.fpr_vector` and
        :func:`repro.fairness.parity.arp` (correctly rounded division of
        exact integers; first-occurrence argmax/argmin tie-breaking).
        """
        fpr = [
            favored / denominator
            for favored, denominator in zip(self.favored, self.denominators)
        ]
        self.fpr = fpr
        highest = max(fpr)
        lowest = min(fpr)
        self.parity = highest - lowest
        self.highest_index = fpr.index(highest)
        self.lowest_index = fpr.index(lowest)

    def parity_after(self, group_u: int, group_v: int, gap: int) -> float:
        """ARP after moving ``gap`` favored pairs from ``group_u`` to ``group_v``."""
        if group_u == group_v:
            return self.parity
        return self.kernels.parity_after_swap(
            self.favored, self.denominators, group_u, group_v, gap
        )

    def apply(self, group_u: int, group_v: int, gap: int) -> None:
        """Commit a swap's favored-count delta and refresh the derived caches."""
        if group_u == group_v:
            return
        self.favored[group_u] -= gap
        self.favored[group_v] += gap
        self._refresh()

    def move_deltas(self, candidate: int, window: list[int], falling: bool) -> list[int]:
        """Favored-count deltas of a block move of ``candidate`` past ``window``.

        A block move re-orders exactly the pairs ``(candidate, other)`` for
        the ``other`` candidates in the window; a falling candidate loses
        every mixed pair among them to the other member's group (and a
        rising candidate gains them back), so the delta vector is the
        window's per-group membership histogram with the candidate's own
        group holding minus the mixed-pair count.
        """
        return self.kernels.move_histogram(
            self.membership, window, candidate, falling, self.n_groups
        )

    def parity_after_deltas(self, deltas: list[int]) -> float:
        """ARP after adding ``deltas`` to the per-group favored counts.

        Same correctly-rounded divisions and first-occurrence max/min
        reductions as :meth:`_refresh`, so the value is bit-identical to
        rescoring the materialised moved ranking.
        """
        return self.kernels.parity_after_deltas(
            self.favored, deltas, self.denominators
        )

    def apply_deltas(self, deltas: list[int]) -> None:
        """Commit per-group favored-count deltas and refresh the caches."""
        favored = self.favored
        for group, delta in enumerate(deltas):
            favored[group] += delta
        self._refresh()


class FairnessState:
    """Mutable ranking state with incrementally maintained MANI-Rank statistics.

    Holds the position/order arrays of a ranking plus, for every fairness
    entity (each protected attribute and the intersection), the per-group
    favored-mixed-pair counts.  Swap-based search algorithms use
    :meth:`parity_after_swap` / :meth:`potential_after_swap` to evaluate a
    candidate move in O(Σ n_groups) — *without* materialising the swapped
    ranking — and :meth:`apply_swap` to commit it.

    Parameters
    ----------
    ranking:
        Initial ranking (not modified; its arrays are copied).
    table:
        Candidate table defining the protected attributes and intersection.
    backend:
        Compute-kernel backend for the hot loops (:mod:`repro.kernels`):
        ``None`` (the process default), a registered backend name, or a
        :class:`~repro.kernels.KernelBackend` instance.
    """

    def __init__(
        self,
        ranking: Ranking,
        table: CandidateTable,
        backend: KernelBackend | str | None = None,
    ) -> None:
        if ranking.n_candidates != table.n_candidates:
            raise FairnessError(
                "ranking and candidate table sizes differ: "
                f"{ranking.n_candidates} vs {table.n_candidates}"
            )
        self._kernels = resolve_backend(backend)
        self._table = table
        self._n = table.n_candidates
        self._order = ranking.order.astype(np.int64, copy=True)
        self._positions = ranking.positions.astype(np.int64, copy=True)
        # Python-list mirrors of the two permutation arrays: the per-move
        # neighbour scans and gap lookups are scalar reads, which cost ~3x
        # less on lists than on numpy arrays.
        self._order_list: list[int] = self._order.tolist()
        self._positions_list: list[int] = self._positions.tolist()
        self._entities = table.all_fairness_entities()
        self._stats = [
            _EntityStats(entity, table, ranking, self._kernels)
            for entity in self._entities
        ]
        self._stats_by_name = {stats.name: stats for stats in self._stats}

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def table(self) -> CandidateTable:
        """The candidate table the statistics are defined over."""
        return self._table

    @property
    def n_candidates(self) -> int:
        """Number of candidates in the ranking."""
        return self._n

    @property
    def kernel_backend(self) -> KernelBackend:
        """The compute-kernel backend the hot loops run on."""
        return self._kernels

    @property
    def entities(self) -> tuple[str, ...]:
        """Fairness entity names in :meth:`CandidateTable.all_fairness_entities` order."""
        return self._entities

    @property
    def order(self) -> np.ndarray:
        """Current candidate order, best to worst (live internal array)."""
        return self._order

    @property
    def order_list(self) -> list[int]:
        """Current candidate order as a live plain-int list (scalar-read fast path)."""
        return self._order_list

    @property
    def positions(self) -> np.ndarray:
        """Current candidate -> position mapping (live internal array)."""
        return self._positions

    @property
    def positions_list(self) -> list[int]:
        """Current candidate -> position list (scalar-read fast path)."""
        return self._positions_list

    def to_ranking(self) -> Ranking:
        """Materialise the current state as an immutable :class:`Ranking`."""
        return Ranking(self._order.copy(), validate=False)

    def favored_counts(self, entity: str) -> np.ndarray:
        """Favored-mixed-pair counts per group of ``entity`` (fresh int64 array)."""
        return np.asarray(self._stats_by_name[entity].favored, dtype=np.int64)

    def fpr_vector(self, entity: str) -> np.ndarray:
        """Current FPR per group of ``entity`` (group order of ``table.groups``).

        Built from the cache refreshed on every :meth:`apply_swap`;
        bit-identical to :func:`repro.fairness.fpr.fpr_vector`.
        """
        return np.asarray(self._stats_by_name[entity].fpr, dtype=float)

    def extreme_groups(self, entity: str) -> tuple[int, int]:
        """Indices of the highest- and lowest-FPR groups of ``entity``.

        Cached ``(argmax, argmin)`` of :meth:`fpr_vector`, with
        first-occurrence tie-breaking — exactly what Algorithm 2's move
        selection computes from scratch.
        """
        stats = self._stats_by_name[entity]
        return stats.highest_index, stats.lowest_index

    def group_members(self, entity: str, group_index: int) -> np.ndarray:
        """Member ids of group ``group_index`` of ``entity`` (cached array)."""
        return self._stats_by_name[entity].group_members[group_index]

    def group_mask(self, entity: str, group_index: int) -> np.ndarray:
        """Boolean candidate-membership mask of one group (cached array)."""
        return self._stats_by_name[entity].group_masks[group_index]

    # ------------------------------------------------------------------
    # parity queries
    # ------------------------------------------------------------------
    def parity_scores(self) -> dict[str, float]:
        """ARP per attribute plus IRP, bit-identical to
        :func:`repro.fairness.parity.parity_scores`.

        Served from the cached per-entity values in O(E); the cache is exact
        because it is refreshed from the integer counts on every
        :meth:`apply_swap`.
        """
        return {stats.name: stats.parity for stats in self._stats}

    def delta_swap(self, first: int, second: int) -> dict[str, np.ndarray]:
        """Exact per-entity favored-count deltas of swapping two candidates.

        Returns ``{entity: delta}`` where ``delta[g]`` is the change of group
        ``g``'s favored-mixed-pair count if ``first`` and ``second`` traded
        positions.  Thanks to the third-party cancellation (module docstring)
        at most two entries per entity are non-zero.  The swapped ranking is
        never materialised.
        """
        positions = self._positions_list
        gap = abs(positions[first] - positions[second])
        upper, lower = self._oriented(first, second)
        deltas: dict[str, np.ndarray] = {}
        for stats in self._stats:
            delta = np.zeros(stats.n_groups, dtype=np.int64)
            group_u = stats.membership[upper]
            group_v = stats.membership[lower]
            if group_u != group_v:
                delta[group_u] -= gap
                delta[group_v] += gap
            deltas[stats.name] = delta
        return deltas

    def parity_after_swap(self, first: int, second: int) -> dict[str, float]:
        """Parity scores of the hypothetically swapped ranking.

        Bit-identical to ``parity_scores(ranking.swap(first, second), table)``
        but O(Σ n_groups) instead of O(n · Σ n_groups) plus a ranking copy.
        """
        positions = self._positions_list
        gap = abs(positions[first] - positions[second])
        upper, lower = self._oriented(first, second)
        return {
            stats.name: stats.parity_after(
                stats.membership[upper], stats.membership[lower], gap
            )
            for stats in self._stats
        }

    def potential_after_swap(
        self, first: int, second: int, thresholds: FairnessThresholds
    ) -> float:
        """Total threshold violation of the hypothetically swapped ranking.

        Matches ``_violation_potential(parity_after_swap(...), thresholds)``
        exactly (same per-entity summation order and float arithmetic).
        """
        positions = self._positions_list
        gap = abs(positions[first] - positions[second])
        upper, lower = self._oriented(first, second)
        total = 0.0
        for stats in self._stats:
            parity = stats.parity_after(
                stats.membership[upper], stats.membership[lower], gap
            )
            excess = parity - thresholds.threshold_for(stats.name)
            if excess > 0.0:
                total += excess
        return total

    def parity_after_move(self, candidate: int, new_position: int) -> dict[str, float]:
        """Parity scores after a hypothetical block move of ``candidate``.

        Bit-identical to materialising the moved ranking and rescoring it
        with :func:`repro.fairness.parity.parity_scores`, but O(window +
        Σ n_groups): only the pairs between the candidate and the shifted
        block re-order, so each entity's favored counts change by the
        block's per-group membership histogram (see
        :meth:`_EntityStats.move_deltas`).  The companion of
        :meth:`KemenyDeltaEngine.delta_move <repro.aggregation.incremental.KemenyDeltaEngine.delta_move>`
        for the fairness-constrained insertion search.
        """
        window, falling = self._move_window(candidate, new_position)
        return {
            stats.name: stats.parity_after_deltas(
                stats.move_deltas(candidate, window, falling)
            )
            for stats in self._stats
        }

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def apply_swap(self, first: int, second: int) -> None:
        """Swap two candidates and update every maintained statistic.

        O(Σ n_groups): the favored-count deltas touch at most two groups per
        entity and the order/position update is O(1).
        """
        positions = self._positions_list
        gap = abs(positions[first] - positions[second])
        upper, lower = self._oriented(first, second)
        for stats in self._stats:
            stats.apply(stats.membership[upper], stats.membership[lower], gap)
        position_first = positions[first]
        position_second = positions[second]
        self._order[position_first] = second
        self._order[position_second] = first
        self._order_list[position_first] = second
        self._order_list[position_second] = first
        self._positions[first] = position_second
        self._positions[second] = position_first
        positions[first] = position_second
        positions[second] = position_first

    def apply_move(self, candidate: int, new_position: int) -> None:
        """Move ``candidate`` to ``new_position`` and update every statistic.

        O(window + Σ n_groups); a no-op when the candidate already sits at
        the target position.
        """
        window, falling = self._move_window(candidate, new_position)
        if not window:
            return
        for stats in self._stats:
            stats.apply_deltas(stats.move_deltas(candidate, window, falling))
        order = self._order_list
        positions = self._positions_list
        old_position = positions[candidate]
        order.pop(old_position)
        order.insert(new_position, candidate)
        low = min(old_position, new_position)
        high = max(old_position, new_position)
        self._order[low : high + 1] = order[low : high + 1]
        for position in range(low, high + 1):
            moved = order[position]
            positions[moved] = position
            self._positions[moved] = position

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _move_window(self, candidate: int, new_position: int) -> tuple[list[int], bool]:
        """The candidates a block move shifts past, and the move's direction.

        Returns ``(window, falling)`` where ``falling`` is ``True`` when the
        candidate moves towards the bottom; an in-place move yields an empty
        window.
        """
        if not 0 <= new_position < self._n:
            raise FairnessError(
                f"move target {new_position} outside positions 0..{self._n - 1}"
            )
        old_position = self._positions_list[candidate]
        if new_position > old_position:
            return self._order_list[old_position + 1 : new_position + 1], True
        return self._order_list[new_position:old_position], False

    def _oriented(self, first: int, second: int) -> tuple[int, int]:
        """Return ``(upper, lower)`` with ``upper`` the better-ranked candidate."""
        if self._positions_list[first] <= self._positions_list[second]:
            return first, second
        return second, first
