"""MANI-Rank fairness criteria: FPR, ARP, IRP, PD loss, and Price of Fairness."""

from repro.fairness.fpr import PARITY_TARGET, fpr, fpr_by_group, fpr_of_members, fpr_table, fpr_vector
from repro.fairness.incremental import FairnessState
from repro.fairness.parity import (
    ManiRankReport,
    arp,
    evaluate_mani_rank,
    irp,
    mani_rank_satisfied,
    mani_rank_violations,
    parity_scores,
)
from repro.fairness.pd_loss import pd_loss, price_of_fairness
from repro.fairness.report import FairnessTable, fairness_row
from repro.fairness.thresholds import FairnessThresholds

__all__ = [
    "PARITY_TARGET",
    "fpr",
    "fpr_of_members",
    "fpr_by_group",
    "fpr_table",
    "fpr_vector",
    "FairnessState",
    "arp",
    "irp",
    "parity_scores",
    "mani_rank_satisfied",
    "mani_rank_violations",
    "evaluate_mani_rank",
    "ManiRankReport",
    "pd_loss",
    "price_of_fairness",
    "FairnessTable",
    "fairness_row",
    "FairnessThresholds",
]
