"""Favored Pair Representation (FPR) — Definition 4 of the MANI-Rank paper.

The FPR of a group ``G`` in a ranking ``π`` is the fraction of *mixed* pairs
(pairs joining one member of ``G`` and one non-member) in which the member of
``G`` is favored (ranked above the non-member)::

    FPR_G(π) = favored_mixed_pairs(G, π) / (|G| * (|X| - |G|))

Key properties (all verified by the test suite):

* FPR is in [0, 1];
* FPR = 1 exactly when the whole group sits at the top of the ranking;
* FPR = 0 exactly when the group sits at the bottom;
* FPR = 1/2 means the group receives a directly proportional share of favored
  pair positions — the statistical-parity target — *regardless of group size*
  or how many values the attribute takes.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.candidates import CandidateTable, Group
from repro.core.pairwise import favored_mixed_pairs, favored_mixed_pairs_by_group, mixed_pairs
from repro.core.ranking import Ranking
from repro.exceptions import FairnessError

__all__ = [
    "fpr",
    "fpr_of_members",
    "fpr_by_group",
    "fpr_table",
]

#: Value of FPR that corresponds to perfect statistical parity for a group.
PARITY_TARGET = 0.5


def fpr_of_members(ranking: Ranking, members: Sequence[int]) -> float:
    """FPR of an explicit member list in ``ranking``.

    Raises
    ------
    FairnessError
        If the member list is empty or covers the whole universe (the FPR is
        undefined when there are no mixed pairs).
    """
    members = list(members)
    n = ranking.n_candidates
    denominator = mixed_pairs(len(members), n)
    if denominator == 0:
        raise FairnessError(
            "FPR is undefined for a group with no mixed pairs "
            f"(group size {len(members)} of {n} candidates)"
        )
    favored = favored_mixed_pairs(ranking, members)
    return favored / denominator


def fpr(ranking: Ranking, group: Group) -> float:
    """FPR score of a :class:`~repro.core.candidates.Group` in ``ranking``."""
    return fpr_of_members(ranking, group.members)


def fpr_by_group(ranking: Ranking, table: CandidateTable, attribute: str) -> dict[str, float]:
    """FPR of every (non-empty) group of ``attribute``, keyed by group label.

    ``attribute`` may be a protected attribute name or
    :data:`CandidateTable.INTERSECTION` for the intersectional groups.
    Computed with a single vectorised pass over the ranking.
    """
    if ranking.n_candidates != table.n_candidates:
        raise FairnessError(
            "ranking and candidate table sizes differ: "
            f"{ranking.n_candidates} vs {table.n_candidates}"
        )
    groups = table.groups(attribute)
    if len(groups) < 2:
        raise FairnessError(
            f"attribute {attribute!r} has {len(groups)} non-empty group(s); "
            "at least two are required for pairwise fairness"
        )
    membership = table.group_membership_array(attribute)
    favored = favored_mixed_pairs_by_group(ranking, membership, len(groups))
    n = table.n_candidates
    scores: dict[str, float] = {}
    for index, group in enumerate(groups):
        denominator = mixed_pairs(group.size, n)
        scores[group.label] = float(favored[index] / denominator)
    return scores


def fpr_table(ranking: Ranking, table: CandidateTable) -> dict[str, dict[str, float]]:
    """FPR of every group of every fairness entity (attributes + intersection).

    Returns a nested mapping ``{entity: {group label: FPR}}`` in the layout
    used by the paper's case-study tables (Tables IV and V).
    """
    return {
        entity: fpr_by_group(ranking, table, entity)
        for entity in table.all_fairness_entities()
    }


def fpr_vector(ranking: Ranking, table: CandidateTable, attribute: str) -> np.ndarray:
    """FPR scores of the groups of ``attribute`` as an array (group order)."""
    groups = table.groups(attribute)
    membership = table.group_membership_array(attribute)
    favored = favored_mixed_pairs_by_group(ranking, membership, len(groups))
    sizes = np.array([group.size for group in groups], dtype=np.int64)
    denominators = sizes * (table.n_candidates - sizes)
    if (denominators == 0).any():
        raise FairnessError(
            f"attribute {attribute!r} has a group covering all candidates; "
            "FPR is undefined"
        )
    return favored / denominators
