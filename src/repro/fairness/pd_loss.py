"""Pairwise Disagreement loss (Definition 9) and Price of Fairness (Equation 13).

PD loss measures how many ranker preferences are *not* represented in a
consensus ranking::

    PD_loss(R, πC) = sum_i  KT(πC, r_i)  /  (ω(X) * |R|)

It is 0 when every base ranking equals the consensus and 1 when every pairwise
preference of every base ranking is inverted in the consensus.

The Price of Fairness (PoF) is the PD-loss increase caused by making the
consensus fair::

    PoF = PD_loss(R, πC*) - PD_loss(R, πC)

where ``πC*`` is the fair consensus and ``πC`` the fairness-unaware one
produced by the same underlying aggregation method.
"""

from __future__ import annotations

from repro.core.pairwise import total_pairs
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import RankingError

__all__ = ["pd_loss", "price_of_fairness"]


def pd_loss(rankings: RankingSet, consensus: Ranking) -> float:
    """Pairwise Disagreement loss of ``consensus`` against the base rankings.

    Returns a value in [0, 1]; see the module docstring for the formula.
    """
    if consensus.n_candidates != rankings.n_candidates:
        raise RankingError(
            "consensus ranking and base rankings cover different universes: "
            f"{consensus.n_candidates} vs {rankings.n_candidates} candidates"
        )
    pairs = total_pairs(consensus.n_candidates)
    if pairs == 0:
        return 0.0
    # One batched Kendall tau computation over the position matrix instead of
    # a merge sort per base ranking; the counts are exact integers.
    disagreements = int(rankings.kendall_tau_vector(consensus).sum())
    return disagreements / (pairs * rankings.n_rankings)


def price_of_fairness(
    rankings: RankingSet,
    fair_consensus: Ranking,
    unaware_consensus: Ranking,
) -> float:
    """Price of Fairness (Equation 13): PD-loss gap between fair and unaware consensus.

    The value is >= 0 whenever the fairness-unaware consensus is at least as
    representative as the fair one (always true when both come from the same
    method, since the fair variant only adds constraints / corrections).
    Small negative values can appear for heuristic methods whose unaware
    consensus is itself suboptimal; they are reported as-is rather than
    clamped so experiments surface them.
    """
    return pd_loss(rankings, fair_consensus) - pd_loss(rankings, unaware_consensus)
