"""Ranking data structure: a strict total order over a candidate universe.

A :class:`Ranking` is a permutation ``[x1 ≺ x2 ≺ ... ≺ xn]`` of candidate ids
``0 .. n-1`` where earlier positions are *better* (position 1 in the paper's
notation, position index 0 here).  The class keeps both the order array and
its inverse (candidate -> position) so that position lookups and pairwise
comparisons are O(1).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import RankingError

__all__ = ["Ranking"]


class Ranking:
    """An immutable strict ranking (permutation) over candidates ``0..n-1``.

    Parameters
    ----------
    order:
        Candidate ids from best to worst.  Must be a permutation of
        ``0..n-1``.
    validate:
        When ``True`` (default) the permutation property is checked.  Internal
        code paths that construct rankings from verified arrays can disable
        the check for speed.
    """

    __slots__ = ("_order", "_positions")

    def __init__(self, order: Sequence[int] | np.ndarray, validate: bool = True) -> None:
        order_array = np.asarray(order, dtype=np.int64)
        if order_array.ndim != 1:
            raise RankingError(
                f"a ranking must be a 1-D sequence, got shape {order_array.shape}"
            )
        n = order_array.shape[0]
        if n == 0:
            raise RankingError("a ranking must contain at least one candidate")
        if validate:
            seen = np.zeros(n, dtype=bool)
            if order_array.min(initial=0) < 0 or order_array.max(initial=0) >= n:
                raise RankingError(
                    "ranking must contain candidate ids 0..n-1; "
                    f"got values in [{order_array.min()}, {order_array.max()}] for n={n}"
                )
            seen[order_array] = True
            if not seen.all():
                missing = np.flatnonzero(~seen)[:5].tolist()
                raise RankingError(
                    f"ranking is not a permutation: candidates {missing} missing "
                    "or duplicated"
                )
        self._order = order_array
        self._order.setflags(write=False)
        positions = np.empty(n, dtype=np.int64)
        positions[order_array] = np.arange(n, dtype=np.int64)
        positions.setflags(write=False)
        self._positions = positions

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, n: int) -> "Ranking":
        """Return the identity ranking ``0 ≺ 1 ≺ ... ≺ n-1``."""
        if n <= 0:
            raise RankingError("n must be positive")
        return cls(np.arange(n, dtype=np.int64), validate=False)

    @classmethod
    def from_scores(cls, scores: Sequence[float] | np.ndarray, descending: bool = True) -> "Ranking":
        """Rank candidates by score.

        Parameters
        ----------
        scores:
            One score per candidate id; higher is better when ``descending``.
        descending:
            If ``True`` the highest score gets rank position 0.  Ties are
            broken by candidate id (lower id wins), which makes the
            construction deterministic.
        """
        score_array = np.asarray(scores, dtype=float)
        if score_array.ndim != 1 or score_array.size == 0:
            raise RankingError("scores must be a non-empty 1-D sequence")
        if np.isnan(score_array).any():
            raise RankingError("scores must not contain NaN")
        # stable sort on candidate id, then stable sort on score keeps id order
        # within ties.
        order = np.argsort(-score_array if descending else score_array, kind="stable")
        return cls(order.astype(np.int64), validate=False)

    @classmethod
    def from_positions(cls, positions: Sequence[int] | np.ndarray) -> "Ranking":
        """Build a ranking from a candidate -> position mapping (0 = best)."""
        position_array = np.asarray(positions, dtype=np.int64)
        n = position_array.shape[0]
        if n == 0 or sorted(position_array.tolist()) != list(range(n)):
            raise RankingError("positions must be a permutation of 0..n-1")
        order = np.empty(n, dtype=np.int64)
        order[position_array] = np.arange(n, dtype=np.int64)
        return cls(order, validate=False)

    @classmethod
    def random(cls, n: int, rng: np.random.Generator | None = None) -> "Ranking":
        """Return a uniformly random ranking over ``n`` candidates."""
        generator = rng if rng is not None else np.random.default_rng()
        return cls(generator.permutation(n).astype(np.int64), validate=False)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def n_candidates(self) -> int:
        """Number of candidates in the ranking."""
        return int(self._order.shape[0])

    def __len__(self) -> int:
        return self.n_candidates

    @property
    def order(self) -> np.ndarray:
        """Read-only array of candidate ids from best to worst."""
        return self._order

    @property
    def positions(self) -> np.ndarray:
        """Read-only array mapping candidate id -> 0-based position."""
        return self._positions

    def position_of(self, candidate: int) -> int:
        """Return the 0-based position of ``candidate`` (0 is best)."""
        return int(self._positions[candidate])

    def rank_of(self, candidate: int) -> int:
        """Return the 1-based rank of ``candidate`` (1 is best, paper notation)."""
        return self.position_of(candidate) + 1

    def candidate_at(self, position: int) -> int:
        """Return the candidate occupying 0-based ``position``."""
        return int(self._order[position])

    def prefers(self, first: int, second: int) -> bool:
        """Return ``True`` when ``first ≺ second`` (first is ranked better)."""
        return bool(self._positions[first] < self._positions[second])

    def top(self, k: int) -> np.ndarray:
        """Return the best ``k`` candidates in order."""
        if k < 0:
            raise RankingError("k must be non-negative")
        return self._order[:k].copy()

    def __iter__(self) -> Iterator[int]:
        return iter(self._order.tolist())

    def __getitem__(self, position: int) -> int:
        return self.candidate_at(position)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def swap(self, first: int, second: int) -> "Ranking":
        """Return a new ranking with candidates ``first`` and ``second`` swapped."""
        order = self._order.copy()
        pos_first = self._positions[first]
        pos_second = self._positions[second]
        order[pos_first], order[pos_second] = second, first
        return Ranking(order, validate=False)

    def move(self, candidate: int, new_position: int) -> "Ranking":
        """Return a new ranking with ``candidate`` moved to ``new_position``."""
        if not 0 <= new_position < self.n_candidates:
            raise RankingError(
                f"new_position {new_position} out of range [0, {self.n_candidates})"
            )
        order = [c for c in self._order.tolist() if c != candidate]
        order.insert(new_position, candidate)
        return Ranking(np.asarray(order, dtype=np.int64), validate=False)

    def reversed(self) -> "Ranking":
        """Return the reverse ranking (worst becomes best)."""
        return Ranking(self._order[::-1].copy(), validate=False)

    def restricted_to(self, candidates: Iterable[int]) -> list[int]:
        """Return the candidates of ``candidates`` in the order they appear here.

        This is the projection of the ranking onto a subset of candidates,
        used, e.g., to preserve within-group orderings.
        """
        keep = set(int(c) for c in candidates)
        return [int(c) for c in self._order.tolist() if c in keep]

    def pairs(self) -> Iterator[tuple[int, int]]:
        """Yield every ordered pair ``(better, worse)`` in the ranking.

        There are ``n * (n - 1) / 2`` such pairs; iterate lazily to avoid
        materialising them for large ``n``.
        """
        order = self._order.tolist()
        for i, better in enumerate(order):
            for worse in order[i + 1 :]:
                yield better, worse

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ranking):
            return NotImplemented
        return bool(np.array_equal(self._order, other._order))

    def __hash__(self) -> int:
        return hash(self._order.tobytes())

    def __repr__(self) -> str:
        if self.n_candidates <= 12:
            body = " > ".join(str(int(c)) for c in self._order)
        else:
            head = " > ".join(str(int(c)) for c in self._order[:6])
            body = f"{head} > ... ({self.n_candidates} candidates)"
        return f"Ranking({body})"

    def to_list(self) -> list[int]:
        """Return the order as a plain Python list of ints."""
        return [int(c) for c in self._order.tolist()]
