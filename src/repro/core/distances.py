"""Distances between rankings.

The MANI-Rank paper uses the Kendall tau distance (Definition 8) as the
pairwise-disagreement distance underlying both the Kemeny consensus objective
and the PD-loss preference-representation metric.  This module provides:

* :func:`kendall_tau` — exact pairwise-disagreement count, implemented with an
  O(n log n) merge-sort inversion counter,
* :func:`kendall_tau_naive` — the O(n^2) textbook double loop, kept as a
  reference implementation for property tests,
* :func:`normalized_kendall_tau` — distance divided by ``n (n-1) / 2``,
* :func:`spearman_footrule` — the L1 positional distance (a 2-approximation of
  Kendall tau, used by the footrule aggregation baseline),
* :func:`kendall_tau_to_set` — summed distance from one ranking to a ranking
  set, which is the Kemeny objective value.
"""

from __future__ import annotations

import numpy as np

from repro.core.pairwise import total_pairs
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import RankingError

__all__ = [
    "kendall_tau",
    "kendall_tau_naive",
    "normalized_kendall_tau",
    "spearman_footrule",
    "normalized_spearman_footrule",
    "kendall_tau_to_set",
    "kemeny_objective",
]


def _check_same_universe(first: Ranking, second: Ranking) -> None:
    if first.n_candidates != second.n_candidates:
        raise RankingError(
            "rankings cover different universes: "
            f"{first.n_candidates} vs {second.n_candidates} candidates"
        )


#: Below this length inversions are counted with one O(n^2) boolean
#: broadcast (a few MiB at most), which is far faster in practice than the
#: Python-level merge sort; above it the O(n log n) merge sort takes over.
_INVERSION_BROADCAST_LIMIT = 2048


def _count_inversions(sequence: np.ndarray) -> int:
    """Count inversions of ``sequence``.

    Hybrid kernel: a single vectorised pairwise comparison for sequences up
    to :data:`_INVERSION_BROADCAST_LIMIT` elements (O(n^2) bytes of boolean
    workspace, no Python loop), falling back to the iterative merge sort
    (:func:`_count_inversions_mergesort`) beyond that.
    """
    sequence = np.asarray(sequence)
    n = sequence.shape[0]
    if n <= _INVERSION_BROADCAST_LIMIT:
        later_is_smaller = sequence[:, np.newaxis] > sequence[np.newaxis, :]
        return int(np.count_nonzero(np.triu(later_is_smaller, k=1)))
    return _count_inversions_mergesort(sequence)


def _count_inversions_mergesort(sequence: np.ndarray) -> int:
    """Count inversions of ``sequence`` with an iterative merge sort.

    O(n log n) reference implementation, retained for large inputs and as the
    ground truth the property tests compare the broadcast kernel against.
    """
    n = sequence.shape[0]
    working = sequence.astype(np.int64, copy=True)
    buffer = np.empty_like(working)
    inversions = 0
    width = 1
    while width < n:
        for start in range(0, n, 2 * width):
            mid = min(start + width, n)
            end = min(start + 2 * width, n)
            left, right = start, mid
            out = start
            while left < mid and right < end:
                if working[left] <= working[right]:
                    buffer[out] = working[left]
                    left += 1
                else:
                    buffer[out] = working[right]
                    inversions += mid - left
                    right += 1
                out += 1
            while left < mid:
                buffer[out] = working[left]
                left += 1
                out += 1
            while right < end:
                buffer[out] = working[right]
                right += 1
                out += 1
        working, buffer = buffer, working
        width *= 2
    return int(inversions)


def kendall_tau(first: Ranking, second: Ranking) -> int:
    """Return the Kendall tau distance (Definition 8) between two rankings.

    The distance is the number of candidate pairs ordered one way by
    ``first`` and the other way by ``second``.  Runs in O(n log n).
    """
    _check_same_universe(first, second)
    # Relabel candidates by their position in `first`; the distance is then
    # the number of inversions in `second` under that relabelling.
    relabelled = first.positions[second.order]
    return _count_inversions(relabelled)


def kendall_tau_naive(first: Ranking, second: Ranking) -> int:
    """O(n^2) reference implementation of the Kendall tau distance.

    Kept deliberately simple; the property-based tests cross-check the fast
    merge-sort implementation against this one.
    """
    _check_same_universe(first, second)
    n = first.n_candidates
    disagreements = 0
    for a in range(n):
        for b in range(a + 1, n):
            first_prefers_a = first.prefers(a, b)
            second_prefers_a = second.prefers(a, b)
            if first_prefers_a != second_prefers_a:
                disagreements += 1
    return disagreements


def normalized_kendall_tau(first: Ranking, second: Ranking) -> float:
    """Kendall tau distance divided by the total number of pairs (in [0, 1])."""
    pairs = total_pairs(first.n_candidates)
    if pairs == 0:
        return 0.0
    return kendall_tau(first, second) / pairs


def spearman_footrule(first: Ranking, second: Ranking) -> int:
    """Return the Spearman footrule distance (sum of absolute position gaps)."""
    _check_same_universe(first, second)
    return int(np.abs(first.positions - second.positions).sum())


def normalized_spearman_footrule(first: Ranking, second: Ranking) -> float:
    """Footrule distance divided by its maximum value (in [0, 1]).

    The maximum of the footrule distance over n candidates is
    ``floor(n^2 / 2)``, attained by reversing the ranking.
    """
    n = first.n_candidates
    maximum = (n * n) // 2
    if maximum == 0:
        return 0.0
    return spearman_footrule(first, second) / maximum


def kendall_tau_to_set(ranking: Ranking, rankings: RankingSet, weighted: bool = False) -> float:
    """Summed Kendall tau distance from ``ranking`` to every base ranking.

    With ``weighted=True`` each base ranking's distance is multiplied by its
    weight.  This is the raw Kemeny objective (Equation 7 evaluated on a
    concrete permutation).

    The per-ranking distances come from one batched computation over the
    set's position matrix (:meth:`RankingSet.kendall_tau_vector`) rather than
    a merge sort per base ranking, and the unweighted path reuses the set's
    cached unit-weight vector instead of allocating a fresh one per call.
    """
    if ranking.n_candidates != rankings.n_candidates:
        raise RankingError(
            "consensus ranking and ranking set cover different universes: "
            f"{ranking.n_candidates} vs {rankings.n_candidates} candidates"
        )
    weights = rankings.weights if weighted else rankings.unit_weights
    distances = rankings.kendall_tau_vector(ranking)
    return float(
        sum(weight * int(distance) for distance, weight in zip(distances, weights))
    )


def kemeny_objective(ranking: Ranking, rankings: RankingSet) -> float:
    """Evaluate the (unweighted) Kemeny objective of ``ranking`` against ``rankings``.

    Identical to :func:`kendall_tau_to_set` but computed from the precedence
    matrix, which is faster when the matrix is already cached:  the objective
    is ``sum over ordered pairs (a over b) of W[a, b]``.
    """
    if ranking.n_candidates != rankings.n_candidates:
        raise RankingError(
            "consensus ranking and ranking set cover different universes: "
            f"{ranking.n_candidates} vs {rankings.n_candidates} candidates"
        )
    precedence = rankings.precedence_matrix()
    positions = ranking.positions
    above = positions[:, np.newaxis] < positions[np.newaxis, :]
    return float(precedence[above].sum())
