"""Candidate universe and protected-attribute model.

This module implements the data model of Section II-A of the MANI-Rank paper:

* a *candidate database* ``X`` of ``n`` candidates,
* a set of categorical *protected attributes* ``P = {p1, ..., pq}``, each with
  a finite domain of values,
* *protected attribute groups* (Definition 1): all candidates sharing one
  value of one attribute,
* *intersectional groups* (Definition 2): all candidates sharing a full
  combination of values across every protected attribute.

The central class is :class:`CandidateTable`.  It is deliberately immutable:
fairness metrics, aggregators and experiment harnesses all share one table, so
accidental mutation would silently invalidate cached group indexes.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import AttributeDomainError, CandidateError, ValidationError

__all__ = [
    "ProtectedAttribute",
    "Group",
    "CandidateTable",
    "intersection_label",
]


def intersection_label(values: Sequence[Any]) -> str:
    """Build a human-readable label for an intersectional value combination.

    Example: ``intersection_label(["Woman", "Black"]) == "Woman & Black"``.
    """
    return " & ".join(str(value) for value in values)


@dataclass(frozen=True)
class ProtectedAttribute:
    """A categorical protected attribute and its value domain.

    Parameters
    ----------
    name:
        Attribute name, e.g. ``"Gender"``.
    domain:
        Ordered tuple of distinct values the attribute can take.  The order is
        only used for deterministic iteration and reporting; it carries no
        semantic meaning.
    """

    name: str
    domain: tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("protected attribute name must be non-empty")
        if len(self.domain) < 2:
            raise AttributeDomainError(
                f"attribute {self.name!r} needs at least two values, "
                f"got {len(self.domain)}"
            )
        if len(set(self.domain)) != len(self.domain):
            raise AttributeDomainError(
                f"attribute {self.name!r} has duplicate domain values: {self.domain}"
            )

    @property
    def cardinality(self) -> int:
        """Number of values in the attribute domain (``|pk|`` in the paper)."""
        return len(self.domain)

    def index_of(self, value: Any) -> int:
        """Return the position of ``value`` in the domain.

        Raises
        ------
        AttributeDomainError
            If the value is not part of the domain.
        """
        try:
            return self.domain.index(value)
        except ValueError as exc:
            raise AttributeDomainError(
                f"value {value!r} is not in the domain of attribute "
                f"{self.name!r}: {self.domain}"
            ) from exc


@dataclass(frozen=True)
class Group:
    """A group of candidates sharing an attribute value (or intersection value).

    Attributes
    ----------
    attribute:
        The attribute name this group belongs to, or the special name
        ``"intersection"`` for intersectional groups.
    value:
        The attribute value (or tuple of values for intersectional groups).
    members:
        Sorted tuple of candidate ids belonging to the group.
    """

    attribute: str
    value: Any
    members: tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of candidates in the group."""
        return len(self.members)

    @property
    def label(self) -> str:
        """Readable label, e.g. ``"Gender=Woman"`` or ``"Woman & Black"``."""
        if self.attribute == CandidateTable.INTERSECTION:
            return intersection_label(self.value)
        return f"{self.attribute}={self.value}"

    def member_set(self) -> frozenset[int]:
        """Return the members as a frozen set for O(1) membership checks."""
        return frozenset(self.members)

    def __contains__(self, candidate: int) -> bool:
        return candidate in self.member_set()


class CandidateTable:
    """Immutable table of candidates with categorical protected attributes.

    Candidates are identified by consecutive integer ids ``0 .. n-1``.  A
    table is constructed from a mapping of attribute name to the per-candidate
    value list::

        table = CandidateTable(
            {
                "Gender": ["Man", "Woman", "Woman", "Non-binary"],
                "Race": ["White", "Black", "White", "Asian"],
            },
            names=["alice", "bob", "carol", "dave"],
        )

    The table exposes the group structure the MANI-Rank criteria are defined
    over: :meth:`groups` for protected-attribute groups (Definition 1) and
    :meth:`intersectional_groups` (Definition 2).
    """

    #: Pseudo-attribute name used for the intersection of all attributes.
    INTERSECTION = "intersection"

    def __init__(
        self,
        attributes: Mapping[str, Sequence[Any]],
        names: Sequence[str] | None = None,
        domains: Mapping[str, Sequence[Any]] | None = None,
    ) -> None:
        if not attributes:
            raise CandidateError("a candidate table needs at least one attribute")
        lengths = {name: len(values) for name, values in attributes.items()}
        distinct_lengths = set(lengths.values())
        if len(distinct_lengths) != 1:
            raise CandidateError(
                f"attribute columns have inconsistent lengths: {lengths}"
            )
        self._n = distinct_lengths.pop()
        if self._n == 0:
            raise CandidateError("a candidate table must contain candidates")
        if self.INTERSECTION in attributes:
            raise CandidateError(
                f"{self.INTERSECTION!r} is a reserved attribute name"
            )

        self._values: dict[str, tuple[Any, ...]] = {
            name: tuple(values) for name, values in attributes.items()
        }
        self._attributes: dict[str, ProtectedAttribute] = {}
        for name, values in self._values.items():
            if domains and name in domains:
                domain = tuple(domains[name])
                missing = set(values) - set(domain)
                if missing:
                    raise AttributeDomainError(
                        f"values {sorted(map(str, missing))} of attribute "
                        f"{name!r} are not in the declared domain {domain}"
                    )
            else:
                domain = tuple(dict.fromkeys(values))
            self._attributes[name] = ProtectedAttribute(name, domain)

        if names is not None:
            if len(names) != self._n:
                raise CandidateError(
                    f"got {len(names)} candidate names for {self._n} candidates"
                )
            if len(set(names)) != len(names):
                raise CandidateError("candidate names must be unique")
            self._names = tuple(str(name) for name in names)
        else:
            self._names = tuple(f"c{i}" for i in range(self._n))

        self._groups_by_attribute = self._build_groups()
        self._intersection_groups = self._build_intersection_groups()
        self._intersection_value_by_candidate = tuple(
            tuple(self._values[attr][i] for attr in self.attribute_names)
            for i in range(self._n)
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: Iterable[Mapping[str, Any]],
        attribute_names: Sequence[str],
        name_field: str | None = None,
    ) -> "CandidateTable":
        """Build a table from an iterable of per-candidate dictionaries.

        Parameters
        ----------
        records:
            Iterable of dictionaries, one per candidate.
        attribute_names:
            Which keys of each record to treat as protected attributes.
        name_field:
            Optional key holding the candidate name.
        """
        records = list(records)
        if not records:
            raise CandidateError("cannot build a candidate table from zero records")
        columns: dict[str, list[Any]] = {name: [] for name in attribute_names}
        names: list[str] | None = [] if name_field else None
        for record in records:
            for attr in attribute_names:
                if attr not in record:
                    raise CandidateError(
                        f"record {record!r} is missing attribute {attr!r}"
                    )
                columns[attr].append(record[attr])
            if names is not None:
                names.append(str(record[name_field]))
        return cls(columns, names=names)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n_candidates(self) -> int:
        """Number of candidates ``n`` in the table."""
        return self._n

    def __len__(self) -> int:
        return self._n

    @property
    def candidate_ids(self) -> range:
        """The candidate universe as a ``range`` object (ids are dense)."""
        return range(self._n)

    @property
    def names(self) -> tuple[str, ...]:
        """Candidate display names indexed by candidate id."""
        return self._names

    def name_of(self, candidate: int) -> str:
        """Return the display name of ``candidate``."""
        self._check_candidate(candidate)
        return self._names[candidate]

    def id_of(self, name: str) -> int:
        """Return the candidate id for a display name."""
        try:
            return self._names.index(name)
        except ValueError as exc:
            raise CandidateError(f"unknown candidate name {name!r}") from exc

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Names of the protected attributes in declaration order."""
        return tuple(self._attributes)

    @property
    def attributes(self) -> tuple[ProtectedAttribute, ...]:
        """The protected attributes in declaration order."""
        return tuple(self._attributes.values())

    def attribute(self, name: str) -> ProtectedAttribute:
        """Return the :class:`ProtectedAttribute` called ``name``."""
        try:
            return self._attributes[name]
        except KeyError as exc:
            raise CandidateError(f"unknown protected attribute {name!r}") from exc

    def value_of(self, candidate: int, attribute: str) -> Any:
        """Return candidate's value for ``attribute`` (``pk(xi)`` in the paper)."""
        self._check_candidate(candidate)
        if attribute == self.INTERSECTION:
            return self.intersection_value_of(candidate)
        if attribute not in self._values:
            raise CandidateError(f"unknown protected attribute {attribute!r}")
        return self._values[attribute][candidate]

    def column(self, attribute: str) -> tuple[Any, ...]:
        """Return the full value column of ``attribute`` indexed by candidate id."""
        if attribute not in self._values:
            raise CandidateError(f"unknown protected attribute {attribute!r}")
        return self._values[attribute]

    def intersection_value_of(self, candidate: int) -> tuple[Any, ...]:
        """Return ``Inter(xi)``: the tuple of all attribute values of a candidate."""
        self._check_candidate(candidate)
        return self._intersection_value_by_candidate[candidate]

    @property
    def intersection_cardinality(self) -> int:
        """``|Inter|``: the product of the attribute domain sizes."""
        product = 1
        for attribute in self._attributes.values():
            product *= attribute.cardinality
        return product

    # ------------------------------------------------------------------
    # group structure
    # ------------------------------------------------------------------
    def groups(self, attribute: str) -> tuple[Group, ...]:
        """Return the protected attribute groups of ``attribute`` (Definition 1).

        Only non-empty groups are returned (a domain value with no candidates
        forms an empty group which carries no pairwise information).  Passing
        :data:`CandidateTable.INTERSECTION` returns the intersectional groups.
        """
        if attribute == self.INTERSECTION:
            return self._intersection_groups
        if attribute not in self._groups_by_attribute:
            raise CandidateError(f"unknown protected attribute {attribute!r}")
        return self._groups_by_attribute[attribute]

    def intersectional_groups(self) -> tuple[Group, ...]:
        """Return the non-empty intersectional groups (Definition 2)."""
        return self._intersection_groups

    def group(self, attribute: str, value: Any) -> Group:
        """Return the single group for ``attribute == value``."""
        for candidate_group in self.groups(attribute):
            if candidate_group.value == value:
                return candidate_group
        raise CandidateError(
            f"no candidates have value {value!r} for attribute {attribute!r}"
        )

    def all_fairness_entities(self) -> tuple[str, ...]:
        """Attribute names the MANI-Rank criteria quantify over.

        This is every protected attribute plus the intersection pseudo
        attribute, matching Definition 7 (Equations 5 and 6).  When there is
        only one protected attribute the intersection coincides with it and is
        omitted.
        """
        names = list(self.attribute_names)
        if len(names) > 1:
            names.append(self.INTERSECTION)
        return tuple(names)

    def group_membership_array(self, attribute: str) -> np.ndarray:
        """Return an int array mapping candidate id -> group index for ``attribute``.

        Group indexes follow the order of :meth:`groups`.  This is the compact
        representation used by the vectorised fairness metrics.
        """
        groups = self.groups(attribute)
        membership = np.empty(self._n, dtype=np.int64)
        for index, candidate_group in enumerate(groups):
            membership[list(candidate_group.members)] = index
        return membership

    # ------------------------------------------------------------------
    # dunder / misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        attrs = ", ".join(
            f"{attribute.name}({attribute.cardinality})"
            for attribute in self._attributes.values()
        )
        return f"CandidateTable(n={self._n}, attributes=[{attrs}])"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CandidateTable):
            return NotImplemented
        return self._values == other._values and self._names == other._names

    def __hash__(self) -> int:
        return hash(
            (
                tuple(sorted(self._values.items())),
                self._names,
            )
        )

    def to_records(self) -> list[dict[str, Any]]:
        """Return a list of per-candidate dictionaries (name + attributes)."""
        records = []
        for candidate in range(self._n):
            record: dict[str, Any] = {"name": self._names[candidate]}
            for attribute in self.attribute_names:
                record[attribute] = self._values[attribute][candidate]
            records.append(record)
        return records

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_candidate(self, candidate: int) -> None:
        if not isinstance(candidate, (int, np.integer)):
            raise CandidateError(f"candidate id must be an int, got {candidate!r}")
        if not 0 <= candidate < self._n:
            raise CandidateError(
                f"candidate id {candidate} out of range [0, {self._n})"
            )

    def _build_groups(self) -> dict[str, tuple[Group, ...]]:
        groups: dict[str, tuple[Group, ...]] = {}
        for name, attribute in self._attributes.items():
            column = self._values[name]
            per_value: dict[Any, list[int]] = {value: [] for value in attribute.domain}
            for candidate, value in enumerate(column):
                if value not in per_value:
                    raise AttributeDomainError(
                        f"value {value!r} of candidate {candidate} is outside "
                        f"the domain of {name!r}"
                    )
                per_value[value].append(candidate)
            groups[name] = tuple(
                Group(name, value, tuple(members))
                for value, members in per_value.items()
                if members
            )
        return groups

    def _build_intersection_groups(self) -> tuple[Group, ...]:
        per_combo: dict[tuple[Any, ...], list[int]] = {}
        for candidate in range(self._n):
            combo = tuple(
                self._values[attribute][candidate]
                for attribute in self.attribute_names
            )
            per_combo.setdefault(combo, []).append(candidate)
        ordered = sorted(per_combo.items(), key=lambda item: tuple(map(str, item[0])))
        return tuple(
            Group(self.INTERSECTION, combo, tuple(members))
            for combo, members in ordered
        )


@dataclass(frozen=True)
class _CandidateView:  # pragma: no cover - convenience container
    """Lightweight read-only view of a single candidate (used in examples)."""

    candidate_id: int
    name: str
    values: Mapping[str, Any] = field(default_factory=dict)
