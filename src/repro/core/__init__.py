"""Core data structures: candidates, rankings, ranking sets, and distances."""

from repro.core.candidates import CandidateTable, Group, ProtectedAttribute, intersection_label
from repro.core.distances import (
    kemeny_objective,
    kendall_tau,
    kendall_tau_naive,
    kendall_tau_to_set,
    normalized_kendall_tau,
    normalized_spearman_footrule,
    spearman_footrule,
)
from repro.core.pairwise import (
    favored_mixed_pairs,
    favored_mixed_pairs_by_group,
    mixed_pairs,
    pairwise_contest_wins,
    precedence_matrix,
    total_mixed_pairs,
    total_pairs,
)
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet

__all__ = [
    "CandidateTable",
    "Group",
    "ProtectedAttribute",
    "intersection_label",
    "Ranking",
    "RankingSet",
    "kendall_tau",
    "kendall_tau_naive",
    "kendall_tau_to_set",
    "normalized_kendall_tau",
    "spearman_footrule",
    "normalized_spearman_footrule",
    "kemeny_objective",
    "total_pairs",
    "mixed_pairs",
    "total_mixed_pairs",
    "favored_mixed_pairs",
    "favored_mixed_pairs_by_group",
    "precedence_matrix",
    "pairwise_contest_wins",
]
