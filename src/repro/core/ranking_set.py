"""A set of base rankings (``R`` in the paper) produced by ``m`` rankers.

:class:`RankingSet` wraps a list of :class:`~repro.core.ranking.Ranking`
objects over the same candidate universe and provides the aggregate views the
consensus methods consume: the precedence matrix ``W`` (Definition 11), the
position matrix used by positional methods (Borda), and per-ranking weights
for weighted aggregation baselines.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.core.ranking import Ranking
from repro.exceptions import RankingError, ValidationError

__all__ = ["RankingSet"]


class RankingSet:
    """An ordered collection of base rankings over one candidate universe.

    Parameters
    ----------
    rankings:
        The base rankings.  Every ranking must cover the same number of
        candidates.
    labels:
        Optional per-ranking labels (e.g. ranker names, exam subjects, or
        years).  Defaults to ``r1, r2, ...``.
    weights:
        Optional non-negative per-ranking weights used by weighted consensus
        methods.  Defaults to uniform weight 1.
    """

    def __init__(
        self,
        rankings: Sequence[Ranking],
        labels: Sequence[str] | None = None,
        weights: Sequence[float] | None = None,
    ) -> None:
        rankings = list(rankings)
        if not rankings:
            raise RankingError("a ranking set must contain at least one ranking")
        for index, ranking in enumerate(rankings):
            if not isinstance(ranking, Ranking):
                raise RankingError(
                    f"item {index} is not a Ranking (got {type(ranking).__name__})"
                )
        n = rankings[0].n_candidates
        for index, ranking in enumerate(rankings):
            if ranking.n_candidates != n:
                raise RankingError(
                    "all base rankings must cover the same candidates: "
                    f"ranking 0 has {n}, ranking {index} has {ranking.n_candidates}"
                )
        self._rankings = tuple(rankings)
        self._n = n

        if labels is not None:
            if len(labels) != len(rankings):
                raise ValidationError(
                    f"got {len(labels)} labels for {len(rankings)} rankings"
                )
            self._labels = tuple(str(label) for label in labels)
        else:
            self._labels = tuple(f"r{i + 1}" for i in range(len(rankings)))

        if weights is not None:
            weight_array = np.asarray(weights, dtype=float)
            if weight_array.shape != (len(rankings),):
                raise ValidationError(
                    f"weights must have one entry per ranking; got shape "
                    f"{weight_array.shape} for {len(rankings)} rankings"
                )
            if (weight_array < 0).any():
                raise ValidationError("ranking weights must be non-negative")
            if weight_array.sum() == 0:
                raise ValidationError("at least one ranking weight must be positive")
            self._weights = weight_array
        else:
            self._weights = np.ones(len(rankings), dtype=float)
        self._weights.setflags(write=False)

        self._precedence_cache: np.ndarray | None = None
        self._weighted_precedence_cache: np.ndarray | None = None
        self._margin_cache: np.ndarray | None = None
        self._weighted_margin_cache: np.ndarray | None = None
        self._position_cache: np.ndarray | None = None
        self._unit_weights_cache: np.ndarray | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_orders(
        cls,
        orders: Iterable[Sequence[int]],
        labels: Sequence[str] | None = None,
        weights: Sequence[float] | None = None,
    ) -> "RankingSet":
        """Build a ranking set from raw candidate-order sequences."""
        rankings = [Ranking(order) for order in orders]
        return cls(rankings, labels=labels, weights=weights)

    @classmethod
    def from_position_matrix(
        cls,
        positions: np.ndarray,
        labels: Sequence[str] | None = None,
        weights: Sequence[float] | None = None,
        validate: bool = True,
        copy: bool = True,
    ) -> "RankingSet":
        """Bulk-build a ranking set from an ``m x n`` candidate-position matrix.

        Row ``r`` maps candidate id -> 0-based position in base ranking ``r``
        (the same layout :meth:`position_matrix` returns, so the two are
        inverses).  This is the fast path for batched generators such as
        :func:`repro.datagen.mallows.sample_mallows`: the per-ranking order
        arrays are produced by one vectorised scatter, the member
        :class:`Ranking` objects skip re-validation, and the position-matrix
        cache is pre-seeded so downstream kernels (precedence matrix, batched
        Kendall tau) never re-stack the per-ranking arrays.

        Parameters
        ----------
        positions:
            Integer matrix of shape ``(m, n)``; every row must be a
            permutation of ``0..n-1``.
        validate:
            When ``True`` (default) every row's permutation property is
            checked (vectorised).  Trusted internal callers can disable it.
        copy:
            When ``True`` (default) the pre-seeded cache is decoupled from
            the caller's array, so later caller-side mutation cannot desync
            :meth:`position_matrix` from the member rankings.  Callers that
            hand over ownership of a freshly built matrix (e.g. the batched
            Mallows sampler) pass ``False`` to skip the redundant copy; the
            array is then frozen read-only in place.
        """
        position_matrix = np.ascontiguousarray(positions, dtype=np.int64)
        if copy and isinstance(positions, np.ndarray) and np.shares_memory(
            position_matrix, positions
        ):
            position_matrix = position_matrix.copy()
        if position_matrix.ndim != 2 or position_matrix.shape[1] == 0:
            raise RankingError(
                "position matrix must be 2-D with at least one candidate, "
                f"got shape {position_matrix.shape}"
            )
        m, n = position_matrix.shape
        if m == 0:
            raise RankingError("a ranking set must contain at least one ranking")
        if validate:
            expected = np.arange(n, dtype=np.int64)
            if not np.array_equal(np.sort(position_matrix, axis=1), np.broadcast_to(expected, (m, n))):
                bad = int(
                    np.flatnonzero(
                        (np.sort(position_matrix, axis=1) != expected).any(axis=1)
                    )[0]
                )
                raise RankingError(
                    f"row {bad} of the position matrix is not a permutation of 0..{n - 1}"
                )
        # Scatter positions -> orders: order[r, positions[r, c]] = c.
        orders = np.empty((m, n), dtype=np.int64)
        orders[np.arange(m)[:, None], position_matrix] = np.arange(n, dtype=np.int64)
        rankings = [Ranking(orders[r], validate=False) for r in range(m)]
        ranking_set = cls(rankings, labels=labels, weights=weights)
        position_matrix.setflags(write=False)
        ranking_set._position_cache = position_matrix
        return ranking_set

    @classmethod
    def from_score_columns(
        cls,
        score_columns: dict[str, Sequence[float]],
        descending: bool = True,
    ) -> "RankingSet":
        """Build one base ranking per score column (e.g. one per exam subject)."""
        labels = list(score_columns)
        rankings = [
            Ranking.from_scores(scores, descending=descending)
            for scores in score_columns.values()
        ]
        return cls(rankings, labels=labels)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def n_candidates(self) -> int:
        """Number of candidates every base ranking covers."""
        return self._n

    @property
    def n_rankings(self) -> int:
        """Number of base rankings ``|R|``."""
        return len(self._rankings)

    def __len__(self) -> int:
        return len(self._rankings)

    def __iter__(self) -> Iterator[Ranking]:
        return iter(self._rankings)

    def __getitem__(self, index: int) -> Ranking:
        return self._rankings[index]

    @property
    def rankings(self) -> tuple[Ranking, ...]:
        """The base rankings as a tuple."""
        return self._rankings

    @property
    def labels(self) -> tuple[str, ...]:
        """Per-ranking labels."""
        return self._labels

    @property
    def weights(self) -> np.ndarray:
        """Per-ranking non-negative weights (read-only array)."""
        return self._weights

    @property
    def unit_weights(self) -> np.ndarray:
        """Cached read-only all-ones weight vector for unweighted computations.

        Kept on the set so hot callers (e.g. the batched Kendall tau) do not
        allocate a fresh ``np.ones`` array on every call.
        """
        if self._unit_weights_cache is None:
            unit = np.ones(self.n_rankings, dtype=float)
            unit.setflags(write=False)
            self._unit_weights_cache = unit
        return self._unit_weights_cache

    def with_weights(self, weights: Sequence[float]) -> "RankingSet":
        """Return a copy of this set with different per-ranking weights."""
        return RankingSet(list(self._rankings), labels=self._labels, weights=weights)

    def label_of(self, index: int) -> str:
        """Return the label of ranking ``index``."""
        return self._labels[index]

    # ------------------------------------------------------------------
    # aggregate matrices
    # ------------------------------------------------------------------
    #: Target byte budget for one boolean comparison block of the chunked
    #: broadcast (keeps peak memory bounded at ~64 MiB regardless of scale).
    _CHUNK_BYTE_BUDGET = 1 << 26

    def _position_chunks(self) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(start, block)`` slices of the position matrix.

        Blocks are sized so the ``k x n x n`` boolean comparison tensor built
        from each stays within :data:`_CHUNK_BYTE_BUDGET` bytes.
        """
        positions = self.position_matrix()
        rows_per_chunk = max(1, self._CHUNK_BYTE_BUDGET // max(1, self._n * self._n))
        for start in range(0, self.n_rankings, rows_per_chunk):
            yield start, positions[start : start + rows_per_chunk]

    def precedence_matrix(self, weighted: bool = False) -> np.ndarray:
        """Return the precedence matrix ``W`` of Definition 11.

        ``W[a, b]`` counts the base rankings in which ``b`` precedes ``a``
        (i.e. the number of disagreements incurred by placing ``a`` above
        ``b`` in the consensus).  With ``weighted=True`` each ranking
        contributes its weight instead of 1.

        Computed as a chunked accumulation over the ``m x n`` position matrix
        through the configured kernel backend (:mod:`repro.kernels`; the
        default backend is a vectorised broadcast — O(m n^2) numpy work with
        bounded peak memory instead of a Python loop over the m rankings).
        Both variants are cached because several aggregators request them for
        the same (immutable) ranking set.
        """
        if weighted and self._weighted_precedence_cache is not None:
            return self._weighted_precedence_cache
        if not weighted and self._precedence_cache is not None:
            return self._precedence_cache
        from repro.kernels import resolve_backend

        kernels = resolve_backend(None)
        weights = self._weights if weighted else self.unit_weights
        matrix = np.zeros((self._n, self._n), dtype=float)
        for start, block in self._position_chunks():
            kernels.precedence_accumulate(
                matrix, block, weights[start : start + block.shape[0]]
            )
        np.fill_diagonal(matrix, 0.0)
        matrix.setflags(write=False)
        if weighted:
            self._weighted_precedence_cache = matrix
        else:
            self._precedence_cache = matrix
        return matrix

    def margin_matrix(self, weighted: bool = False) -> np.ndarray:
        """Return the pairwise margin matrix ``M = W - W^T``.

        ``M[a, b]`` is the net number of base rankings preferring ``b`` to
        ``a`` — the objective change of demoting ``a`` below ``b`` from
        adjacent positions, which is the quantity every swap-based local
        search reads per candidate move.  Cached (like the precedence matrix
        it derives from) because each
        :class:`~repro.aggregation.incremental.KemenyDeltaEngine` built over
        this set starts from it.
        """
        if weighted and self._weighted_margin_cache is not None:
            return self._weighted_margin_cache
        if not weighted and self._margin_cache is not None:
            return self._margin_cache
        precedence = self.precedence_matrix(weighted=weighted)
        margin = precedence - precedence.T
        margin.setflags(write=False)
        if weighted:
            self._weighted_margin_cache = margin
        else:
            self._margin_cache = margin
        return margin

    def kendall_tau_vector(self, ranking: Ranking) -> np.ndarray:
        """Exact Kendall tau distance from ``ranking`` to every base ranking.

        One batched O(m n^2 / chunk) computation over the position matrix
        instead of m separate merge sorts; the per-ranking counts are exact
        integers.  This is the kernel behind
        :func:`repro.core.distances.kendall_tau_to_set` and the PD-loss
        metric.
        """
        if ranking.n_candidates != self._n:
            raise RankingError(
                "ranking and ranking set cover different universes: "
                f"{ranking.n_candidates} vs {self._n} candidates"
            )
        reference = ranking.positions
        reference_precedes = reference[:, np.newaxis] < reference[np.newaxis, :]
        distances = np.empty(self.n_rankings, dtype=np.int64)
        for start, block in self._position_chunks():
            precedes = block[:, :, np.newaxis] < block[:, np.newaxis, :]
            # In-place comparison keeps one k x n x n tensor live, honouring
            # the chunk byte budget.
            disagreements = np.not_equal(
                precedes, reference_precedes[np.newaxis, :, :], out=precedes
            )
            # Each disagreeing unordered pair is counted at (a, b) and (b, a).
            distances[start : start + block.shape[0]] = (
                disagreements.sum(axis=(1, 2)) // 2
            )
        return distances

    def pairwise_support(self, weighted: bool = False) -> np.ndarray:
        """Return ``S`` with ``S[a, b]`` = number of rankings preferring ``a`` to ``b``.

        This is the transpose of :meth:`precedence_matrix` and the matrix the
        Copeland and Schulze methods reason over.
        """
        return self.precedence_matrix(weighted=weighted).T

    def position_matrix(self) -> np.ndarray:
        """Return an ``m x n`` matrix of 0-based positions.

        Row ``i`` holds the positions of every candidate in base ranking
        ``i``; used by positional methods such as Borda and footrule.
        """
        if self._position_cache is None:
            matrix = np.vstack([ranking.positions for ranking in self._rankings])
            matrix.setflags(write=False)
            self._position_cache = matrix
        return self._position_cache

    def mean_positions(self) -> np.ndarray:
        """Return the average 0-based position of every candidate."""
        return self.position_matrix().mean(axis=0)

    # ------------------------------------------------------------------
    # incremental (streaming) updates
    # ------------------------------------------------------------------
    def _precedence_delta(
        self, position_rows: np.ndarray, row_weights: np.ndarray
    ) -> np.ndarray:
        """Summed weighted precedence contribution of the given position rows.

        Each ranking is a rank-1-style contribution to the precedence matrix:
        ``precedes[a, b] = positions[b] < positions[a]`` scaled by its weight.
        Chunked exactly like :meth:`precedence_matrix` so one call stays
        within :data:`_CHUNK_BYTE_BUDGET` bytes of boolean workspace.
        """
        from repro.kernels import resolve_backend

        kernels = resolve_backend(None)
        n = self._n
        delta = np.zeros((n, n), dtype=float)
        rows_per_chunk = max(1, self._CHUNK_BYTE_BUDGET // max(1, n * n))
        for start in range(0, position_rows.shape[0], rows_per_chunk):
            block = position_rows[start : start + rows_per_chunk]
            kernels.precedence_accumulate(
                delta, block, row_weights[start : start + block.shape[0]]
            )
        np.fill_diagonal(delta, 0.0)
        return delta

    def _patched_precedence(
        self,
        cache: np.ndarray | None,
        position_rows: np.ndarray,
        row_weights: np.ndarray,
        sign: float,
    ) -> np.ndarray | None:
        """Patch a cached precedence matrix by +/- the given rows' contribution.

        Returns ``None`` when the cache was never materialised (the child set
        then computes lazily as usual).  The patch is bit-identical to a
        from-scratch recomputation whenever every weight's contributions are
        exactly representable and accumulate without rounding — always true
        for unweighted sets (integer-valued entries) and for integer or
        dyadic-rational weights.
        """
        if cache is None:
            return None
        delta = self._precedence_delta(position_rows, row_weights)
        patched = cache + delta if sign > 0 else cache - delta
        np.fill_diagonal(patched, 0.0)
        patched.setflags(write=False)
        return patched

    @staticmethod
    def _derive_margins(child: "RankingSet") -> None:
        """Re-derive the child's margin caches from its patched precedence caches.

        Uses the same ``W - W^T`` expression as :meth:`margin_matrix`, so a
        margin derived from a bit-identical patched precedence matrix is
        itself bit-identical to the from-scratch value.
        """
        for weighted in (False, True):
            precedence = (
                child._weighted_precedence_cache if weighted else child._precedence_cache
            )
            if precedence is None:
                continue
            margin = precedence - precedence.T
            margin.setflags(write=False)
            if weighted:
                child._weighted_margin_cache = margin
            else:
                child._margin_cache = margin

    def with_added(
        self,
        rankings: Sequence[Ranking],
        labels: Sequence[str] | None = None,
        weights: Sequence[float] | None = None,
    ) -> "RankingSet":
        """Return a new set with ``rankings`` appended, patching cached matrices.

        The child's position matrix is the parent's with the new rows stacked
        on, and every precedence/margin cache the parent had materialised is
        patched by *adding* each new ranking's precedence contribution —
        O(k n^2) work for k added rankings instead of the O(m n^2) rebuild.
        This is the core update primitive of the streaming consensus engine
        (:mod:`repro.streaming`); caches the parent never materialised stay
        lazy on the child.
        """
        added = list(rankings)
        if not added:
            raise RankingError("with_added needs at least one ranking")
        extra_labels = (
            list(labels)
            if labels is not None
            else [f"r{self.n_rankings + i + 1}" for i in range(len(added))]
        )
        if weights is None:
            extra_weights = np.ones(len(added), dtype=float)
        else:
            extra_weights = np.asarray(weights, dtype=float)
            if extra_weights.shape != (len(added),):
                raise ValidationError(
                    f"weights must have one entry per added ranking; got shape "
                    f"{extra_weights.shape} for {len(added)} rankings"
                )
        child = RankingSet(
            list(self._rankings) + added,
            labels=list(self._labels) + extra_labels,
            weights=np.concatenate([self._weights, extra_weights]),
        )
        added_positions = np.vstack([ranking.positions for ranking in added])
        if self._position_cache is not None:
            position_matrix = np.vstack([self._position_cache, added_positions])
            position_matrix.setflags(write=False)
            child._position_cache = position_matrix
        child._precedence_cache = self._patched_precedence(
            self._precedence_cache,
            added_positions,
            np.ones(len(added), dtype=float),
            sign=1.0,
        )
        child._weighted_precedence_cache = self._patched_precedence(
            self._weighted_precedence_cache, added_positions, extra_weights, sign=1.0
        )
        self._derive_margins(child)
        return child

    def with_removed(self, indexes: Sequence[int]) -> "RankingSet":
        """Return a new set without the rankings at ``indexes``, patching caches.

        The inverse of :meth:`with_added`: every cache the parent had
        materialised is patched by *subtracting* the removed rankings'
        precedence contributions (exact for unweighted sets and integer /
        dyadic weights, where every entry is an exactly-representable sum).
        Removing every ranking is rejected — a :class:`RankingSet` is never
        empty; streaming callers represent the empty profile explicitly.
        """
        removal = sorted(set(int(index) for index in indexes))
        if not removal:
            raise RankingError("with_removed needs at least one index")
        for index in removal:
            if not 0 <= index < self.n_rankings:
                raise RankingError(
                    f"ranking index {index} out of range for {self.n_rankings} rankings"
                )
        removal_set = set(removal)
        keep = [i for i in range(self.n_rankings) if i not in removal_set]
        if not keep:
            raise RankingError("cannot remove every ranking from a set")
        child = RankingSet(
            [self._rankings[i] for i in keep],
            labels=[self._labels[i] for i in keep],
            weights=self._weights[keep],
        )
        removed_positions = np.vstack(
            [self._rankings[i].positions for i in removal]
        )
        removed_weights = self._weights[removal]
        if self._position_cache is not None:
            position_matrix = self._position_cache[keep]
            position_matrix.setflags(write=False)
            child._position_cache = position_matrix
        child._precedence_cache = self._patched_precedence(
            self._precedence_cache,
            removed_positions,
            np.ones(len(removal), dtype=float),
            sign=-1.0,
        )
        child._weighted_precedence_cache = self._patched_precedence(
            self._weighted_precedence_cache, removed_positions, removed_weights, sign=-1.0
        )
        self._derive_margins(child)
        return child

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def subset(self, indexes: Sequence[int]) -> "RankingSet":
        """Return a new set containing only the rankings at ``indexes``."""
        indexes = list(indexes)
        if not indexes:
            raise RankingError("cannot build an empty ranking subset")
        return RankingSet(
            [self._rankings[i] for i in indexes],
            labels=[self._labels[i] for i in indexes],
            weights=[float(self._weights[i]) for i in indexes],
        )

    def extended_with(self, rankings: Sequence[Ranking], labels: Sequence[str] | None = None) -> "RankingSet":
        """Return a new set with additional rankings appended."""
        extra_labels = (
            list(labels)
            if labels is not None
            else [f"r{self.n_rankings + i + 1}" for i in range(len(rankings))]
        )
        return RankingSet(
            list(self._rankings) + list(rankings),
            labels=list(self._labels) + extra_labels,
        )

    def to_order_lists(self) -> list[list[int]]:
        """Return the base rankings as plain lists of candidate ids."""
        return [ranking.to_list() for ranking in self._rankings]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RankingSet(n_rankings={self.n_rankings}, "
            f"n_candidates={self.n_candidates})"
        )
