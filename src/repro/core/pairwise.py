"""Pairwise machinery shared by the fairness metrics and aggregators.

The MANI-Rank criteria are defined entirely in terms of *pairs* of candidates
(Section II-B of the paper):

* ``ω(X) = n(n-1)/2`` — total number of unordered pairs (Equation 2),
* ``ω_M(G) = |G| (|X| - |G|)`` — number of *mixed* pairs containing exactly one
  member of group ``G`` (Equation 3),
* the count of mixed pairs in which a group member is *favored* (appears
  higher), which feeds the FPR score (Definition 4).

Everything here is vectorised on top of a ranking's position array so the
fairness metrics are O(n) per group after the ranking is built.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.candidates import CandidateTable, Group
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import FairnessError

__all__ = [
    "total_pairs",
    "mixed_pairs",
    "total_mixed_pairs",
    "favored_mixed_pairs",
    "favored_mixed_pairs_by_group",
    "favored_mixed_pairs_by_group_naive",
    "precedence_matrix",
    "pairwise_contest_wins",
    "group_of",
]


def total_pairs(n_candidates: int) -> int:
    """Return ``ω(X) = n(n-1)/2``, the number of unordered candidate pairs."""
    if n_candidates < 0:
        raise FairnessError("n_candidates must be non-negative")
    return n_candidates * (n_candidates - 1) // 2


def mixed_pairs(group_size: int, n_candidates: int) -> int:
    """Return ``ω_M(G) = |G| * (|X| - |G|)``: pairs with exactly one group member.

    This is Equation (3) of the paper and the denominator of the FPR score.
    """
    if group_size < 0 or n_candidates < 0:
        raise FairnessError("group_size and n_candidates must be non-negative")
    if group_size > n_candidates:
        raise FairnessError(
            f"group of size {group_size} cannot exceed the universe of "
            f"{n_candidates} candidates"
        )
    return group_size * (n_candidates - group_size)


def total_mixed_pairs(group_sizes: Sequence[int], n_candidates: int) -> int:
    """Return the number of pairs joining candidates of *different* groups.

    This is Equation (4): total pairs minus the within-group pairs of every
    group of the partition described by ``group_sizes``.
    """
    sizes = list(group_sizes)
    if sum(sizes) != n_candidates:
        raise FairnessError(
            f"group sizes {sizes} do not partition {n_candidates} candidates"
        )
    within = sum(total_pairs(size) for size in sizes)
    return total_pairs(n_candidates) - within


def favored_mixed_pairs(ranking: Ranking, members: Sequence[int]) -> int:
    """Count mixed pairs in which a member of ``members`` is favored.

    A mixed pair is favored for the group when the group member appears
    *above* the non-member.  The count is the numerator of the FPR score
    (Definition 4).  Computed in O(n) using a single pass over the ranking:
    walking from best to worst, a group member at position ``p`` is favored
    over every non-member that appears after it.
    """
    n = ranking.n_candidates
    member_mask = np.zeros(n, dtype=bool)
    member_mask[np.asarray(list(members), dtype=np.int64)] = True
    ordered_membership = member_mask[ranking.order]
    # For each position, the number of non-members appearing strictly after it.
    non_members_after = np.cumsum(~ordered_membership[::-1])[::-1] - (~ordered_membership)
    return int(non_members_after[ordered_membership].sum())


def favored_mixed_pairs_by_group(
    ranking: Ranking,
    membership: np.ndarray,
    n_groups: int,
    backend: object | None = None,
) -> np.ndarray:
    """Favored-pair counts for every group of a partition.

    Parameters
    ----------
    ranking:
        The ranking to evaluate.
    membership:
        Array mapping candidate id -> group index (a partition of the
        candidates, e.g. from
        :meth:`repro.core.candidates.CandidateTable.group_membership_array`).
    n_groups:
        Number of groups in the partition.
    backend:
        Compute-kernel backend (:mod:`repro.kernels`): ``None`` (the process
        default), a registered backend name, or a backend instance.

    Returns
    -------
    numpy.ndarray
        ``counts[g]`` is the number of mixed pairs in which a member of group
        ``g`` appears above a candidate of any other group.  The default
        backend's kernel is fully vectorised: O(n * n_groups) numpy work with
        no per-position Python loop, which is effectively O(n) for the
        handful of groups the paper considers.
    """
    from repro.kernels import resolve_backend

    return resolve_backend(backend).favored_mixed_pairs_by_group(
        ranking.order, membership, n_groups
    )


def favored_mixed_pairs_by_group_naive(
    ranking: Ranking, membership: np.ndarray, n_groups: int
) -> np.ndarray:
    """Position-by-position reference for :func:`favored_mixed_pairs_by_group`.

    The original O(n) Python loop, retained as the ground truth the property
    tests compare the vectorised kernel against.
    """
    ordered_groups = membership[ranking.order]
    n = ordered_groups.shape[0]
    counts = np.zeros(n_groups, dtype=np.int64)
    # remaining[g] = how many candidates of group g appear at or after the
    # current position while scanning best -> worst.
    remaining = np.bincount(ordered_groups, minlength=n_groups).astype(np.int64)
    for position in range(n):
        group = ordered_groups[position]
        remaining[group] -= 1
        others_after = (n - position - 1) - remaining[group]
        counts[group] += others_after
    return counts


def precedence_matrix(rankings: RankingSet, weighted: bool = False) -> np.ndarray:
    """Return the precedence matrix ``W`` of Definition 11 for a ranking set.

    Thin functional wrapper over
    :meth:`repro.core.ranking_set.RankingSet.precedence_matrix` so callers that
    work with free functions do not need to know about the caching method.
    """
    return rankings.precedence_matrix(weighted=weighted)


def pairwise_contest_wins(rankings: RankingSet, weighted: bool = False) -> np.ndarray:
    """Return, for each candidate, the number of pairwise contests it wins.

    A candidate ``a`` wins the contest against ``b`` when at least half of the
    base rankings prefer ``a`` (ties count as a win for both sides, following
    Copeland's convention as described in Section III-B).
    """
    support = rankings.pairwise_support(weighted=weighted)
    wins = (support >= support.T).astype(np.int64)
    np.fill_diagonal(wins, 0)
    return wins.sum(axis=1)


def group_of(table: CandidateTable, attribute: str, value: object) -> Group:
    """Convenience lookup of a single group; see :meth:`CandidateTable.group`."""
    return table.group(attribute, value)
