"""Abstract interface for pluggable compute-kernel backends.

The incremental engines (:class:`repro.aggregation.incremental.KemenyDeltaEngine`
and :class:`repro.fairness.incremental.FairnessState`) and the shared kernels in
:mod:`repro.core` route their hot inner loops through a :class:`KernelBackend`.
The default ``numpy`` backend contains the loop bodies extracted verbatim from
the engines, so it is bit-identical to the pre-seam code by construction.
Alternative backends (``numba`` when importable) must reproduce the numpy
backend bit-for-bit on unweighted integer-margin inputs; the cross-backend
property suites in ``tests/test_kernel_backends.py`` enforce that contract.

Conventions shared by every backend:

- ``order`` is an ``int64`` numpy array holding candidate ids best-to-worst
  and is mutated **in place** by :meth:`KernelBackend.sweep_adjacent`.
- ``margin`` is the dense ``float64`` margin matrix ``M = W - W^T`` where
  ``margin[a, b] > 0`` means a majority of rankings place ``b`` before ``a``.
- Group vectors (``favored`` counts, parity denominators) and membership
  vectors are built through :meth:`KernelBackend.group_vector` and
  :meth:`KernelBackend.membership_vector` so each backend can pick the
  representation its kernels index fastest (plain lists for numpy/CPython,
  ``int64`` arrays for numba).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, ClassVar, Sequence

import numpy as np

__all__ = ["KernelBackend"]


class KernelBackend(ABC):
    """One compute-kernel implementation covering the repo's hot inner loops."""

    #: Registry key; subclasses must override.
    name: ClassVar[str] = ""

    #: Whether the backend JIT-compiles its kernels.
    compiled: ClassVar[bool] = False

    def compile_status(self) -> dict[str, Any]:
        """Describe the backend for ``/stats`` and ``/healthz`` payloads."""
        return {"name": self.name, "compiled": self.compiled, "detail": self.detail()}

    def detail(self) -> str:
        """One-line human-readable description of the implementation."""
        return "pure numpy/CPython kernels"

    def warmup(self) -> None:
        """Force any lazy compilation. No-op for interpreted backends."""

    # ------------------------------------------------------------------
    # Representation hooks
    # ------------------------------------------------------------------

    def group_vector(self, values: Sequence[int]) -> Any:
        """Return the backend's mutable per-group integer vector (length n_groups)."""
        if isinstance(values, np.ndarray):
            return values.tolist()
        return list(values)

    def membership_vector(self, membership: np.ndarray) -> Any:
        """Return the backend's read-only candidate→group lookup (length n)."""
        return membership.tolist()

    # ------------------------------------------------------------------
    # Kemeny delta-engine kernels
    # ------------------------------------------------------------------

    @abstractmethod
    def build_sweep_mask(self, order: np.ndarray, margin: np.ndarray) -> np.ndarray:
        """Return the boolean mask of improving adjacent pairs.

        ``mask[i]`` is true when swapping ``order[i]`` and ``order[i + 1]``
        strictly lowers the Kemeny objective, i.e.
        ``margin[order[i], order[i + 1]] > 0``.
        """

    @abstractmethod
    def sweep_adjacent(
        self,
        order: np.ndarray,
        margin: np.ndarray,
        mask: np.ndarray,
        track_objective: bool,
    ) -> tuple[bool, float]:
        """Run one carry-run bubble pass in place over ``order``.

        Both ``order`` and ``mask`` are mutated.  Returns
        ``(swapped, improvement)`` where ``improvement`` is the total objective
        decrease of the pass (only accumulated when ``track_objective``).
        """

    @abstractmethod
    def move_deltas(
        self,
        margin: np.ndarray,
        candidate: int,
        order: np.ndarray,
        position: int,
    ) -> np.ndarray:
        """Score moving ``candidate`` (at ``position``) to every target position.

        Returns a ``float64`` array ``deltas`` of length ``len(order)`` where
        ``deltas[t]`` is the objective change of the block move to position
        ``t`` (``deltas[position] == 0``).
        """

    # ------------------------------------------------------------------
    # Fairness parity kernels
    # ------------------------------------------------------------------

    @abstractmethod
    def parity_after_swap(
        self,
        favored: Sequence[int],
        denominators: Sequence[int],
        group_u: int,
        group_v: int,
        gap: int,
    ) -> float:
        """Parity after transferring ``gap`` favored pairs from ``group_u`` to ``group_v``.

        ``favored`` and ``denominators`` are backend group vectors (see
        :meth:`group_vector`); the call must not mutate them.
        """

    @abstractmethod
    def parity_after_deltas(
        self,
        favored: Sequence[int],
        deltas: Sequence[int],
        denominators: Sequence[int],
    ) -> float:
        """Parity after adding ``deltas[g]`` to each group's favored count."""

    @abstractmethod
    def move_histogram(
        self,
        membership: Any,
        window: Sequence[int],
        candidate: int,
        falling: bool,
        n_groups: int,
    ) -> Sequence[int]:
        """Per-group favored-count deltas for a block move over ``window``.

        ``membership`` is a backend membership vector; ``window`` lists the
        candidate ids the mover passes over.  The mover's own group receives
        minus the number of mixed pairs crossed; every other group gains the
        number of its members crossed.  The histogram is negated when the
        mover rises (``falling`` false).
        """

    # ------------------------------------------------------------------
    # Shared core kernels
    # ------------------------------------------------------------------

    @abstractmethod
    def favored_mixed_pairs_by_group(
        self,
        order: np.ndarray,
        membership: np.ndarray,
        n_groups: int,
    ) -> np.ndarray:
        """Count, per group, mixed pairs whose favored member is in that group.

        ``order`` lists candidate ids best-to-worst; ``membership`` maps
        candidate id to group id.  Returns an ``int64`` array of length
        ``n_groups``.
        """

    @abstractmethod
    def precedence_accumulate(
        self,
        matrix: np.ndarray,
        positions: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        """Accumulate one block of rankings into a precedence matrix in place.

        ``positions`` is a ``(block, n)`` array of candidate positions and
        ``weights`` the per-ranking weights; ``matrix[a, b]`` accumulates the
        total weight of rankings that place ``b`` before ``a``.
        """

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} name={self.name!r} compiled={self.compiled}>"
