"""Pluggable compute-kernel backends for the hot inner loops.

The incremental engines (:class:`~repro.aggregation.incremental.KemenyDeltaEngine`,
:class:`~repro.fairness.incremental.FairnessState`) and the shared kernels in
:mod:`repro.core` route their hot loops through a :class:`KernelBackend`
picked from a small registry, mirroring the multi-backend pattern of
:mod:`repro.optimize.milp_backend`:

* ``numpy`` — always available; the original loops extracted verbatim, so it
  is bit-identical to the pre-seam code by construction.  This is the
  default.
* ``numba`` — registered only when :mod:`numba` imports; the same loops as
  lazy JIT-compiled ``nogil`` kernels, bit-identical to ``numpy`` on
  unweighted inputs (enforced by the cross-backend property suite).

Backend resolution order for :func:`active_backend` (what engines use when
built without an explicit ``backend=`` argument):

1. a process-wide override installed via :func:`set_default_backend` (the CLI
   ``--kernel-backend`` flag lands here),
2. the ``MANI_RANK_BACKEND`` environment variable,
3. ``"numpy"``.

Backend instances are stateless (pure kernels), so one shared instance per
name is handed out; :func:`create_backend` builds a fresh instance for
callers that want isolation.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Any, Iterator

from repro.exceptions import KernelError
from repro.kernels import numba_backend as _numba_module
from repro.kernels.base import KernelBackend
from repro.kernels.numba_backend import NumbaKernelBackend
from repro.kernels.numpy_backend import NumpyKernelBackend

__all__ = [
    "KernelBackend",
    "NumpyKernelBackend",
    "NumbaKernelBackend",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "register_backend",
    "available_backends",
    "unavailable_backends",
    "create_backend",
    "get_backend",
    "resolve_backend",
    "active_backend",
    "active_backend_name",
    "set_default_backend",
    "use_backend",
    "describe_backends",
]

#: Environment variable consulted when no explicit default is installed.
BACKEND_ENV_VAR = "MANI_RANK_BACKEND"

#: Name of the backend used when nothing else is configured.
DEFAULT_BACKEND = "numpy"

_REGISTRY: dict[str, type[KernelBackend]] = {}
#: name -> reason, for backends that exist but cannot run in this interpreter.
_UNAVAILABLE: dict[str, str] = {}

_LOCK = threading.Lock()
_INSTANCES: dict[str, KernelBackend] = {}
_DEFAULT_OVERRIDE: str | None = None


def register_backend(cls: type[KernelBackend]) -> type[KernelBackend]:
    """Register a :class:`KernelBackend` subclass under ``cls.name``.

    Usable as a decorator by third-party backends.  Re-registering a name
    replaces the previous class (and drops its shared instance).
    """
    name = cls.name
    if not name:
        raise KernelError(f"backend class {cls.__name__} has an empty name")
    with _LOCK:
        _REGISTRY[name] = cls
        _INSTANCES.pop(name, None)
        _UNAVAILABLE.pop(name, None)
    return cls


def available_backends() -> tuple[str, ...]:
    """Names of the registered, runnable backends (sorted)."""
    return tuple(sorted(_REGISTRY))


def unavailable_backends() -> dict[str, str]:
    """Known-but-unusable backends mapped to the reason they are unusable."""
    return dict(_UNAVAILABLE)


def create_backend(name: str | None = None) -> KernelBackend:
    """Build a fresh instance of backend ``name`` (default: the active name)."""
    resolved = name if name is not None else active_backend_name()
    try:
        cls = _REGISTRY[resolved]
    except KeyError:
        raise KernelError(_unknown_backend_message(resolved)) from None
    return cls()


def get_backend(name: str) -> KernelBackend:
    """Return the shared instance of backend ``name`` (created on first use)."""
    with _LOCK:
        instance = _INSTANCES.get(name)
        if instance is None:
            try:
                cls = _REGISTRY[name]
            except KeyError:
                raise KernelError(_unknown_backend_message(name)) from None
            instance = cls()
            _INSTANCES[name] = instance
    return instance


def active_backend_name() -> str:
    """The name :func:`active_backend` resolves to right now.

    Resolution order: :func:`set_default_backend` override, then the
    ``MANI_RANK_BACKEND`` environment variable, then ``"numpy"``.
    """
    if _DEFAULT_OVERRIDE is not None:
        return _DEFAULT_OVERRIDE
    from_env = os.environ.get(BACKEND_ENV_VAR, "").strip()
    return from_env if from_env else DEFAULT_BACKEND


def active_backend() -> KernelBackend:
    """The shared instance of the currently configured default backend."""
    return get_backend(active_backend_name())


def resolve_backend(backend: KernelBackend | str | None) -> KernelBackend:
    """Normalise an engine's ``backend=`` argument to a :class:`KernelBackend`.

    ``None`` resolves to :func:`active_backend`; a string resolves through the
    registry; an instance passes through unchanged.
    """
    if backend is None:
        return active_backend()
    if isinstance(backend, KernelBackend):
        return backend
    if isinstance(backend, str):
        return get_backend(backend)
    raise KernelError(
        "backend must be None, a backend name, or a KernelBackend instance; "
        f"got {type(backend).__name__}"
    )


def set_default_backend(name: str | None) -> None:
    """Install (or with ``None`` clear) the process-wide default backend.

    Validates eagerly so misconfiguration surfaces at selection time, not on
    the first hot-loop call deep inside an engine.
    """
    global _DEFAULT_OVERRIDE
    if name is not None and name not in _REGISTRY:
        raise KernelError(_unknown_backend_message(name))
    _DEFAULT_OVERRIDE = name


@contextmanager
def use_backend(name: str) -> Iterator[KernelBackend]:
    """Temporarily make ``name`` the process default (test/benchmark helper)."""
    previous = _DEFAULT_OVERRIDE
    set_default_backend(name)
    try:
        yield active_backend()
    finally:
        set_default_backend(previous)


def describe_backends() -> dict[str, Any]:
    """Registry snapshot for ``/stats``, ``/healthz``, and the CLI."""
    active = active_backend()
    return {
        "active": active.compile_status(),
        "available": list(available_backends()),
        "unavailable": unavailable_backends(),
        "env_var": BACKEND_ENV_VAR,
    }


def _unknown_backend_message(name: str) -> str:
    message = (
        f"unknown kernel backend {name!r}; available: "
        f"{', '.join(available_backends())}"
    )
    reason = _UNAVAILABLE.get(name)
    if reason is not None:
        message += f" ({name} is known but unavailable: {reason})"
    return message


register_backend(NumpyKernelBackend)
if _numba_module.AVAILABLE:  # pragma: no cover - exercised only with numba
    register_backend(NumbaKernelBackend)
else:
    _UNAVAILABLE[NumbaKernelBackend.name] = _numba_module.UNAVAILABLE_REASON
