"""Default compute-kernel backend: the engines' original numpy/CPython loops.

Every method body here is the hot loop extracted *verbatim* from the engine it
used to live in (:class:`~repro.aggregation.incremental.KemenyDeltaEngine`,
:class:`~repro.fairness.incremental.FairnessState`'s ``_EntityStats``, and the
shared kernels in :mod:`repro.core`), so routing through this backend is
bit-identical to the pre-seam code by construction — same operations in the
same order on the same representations.  Do not "improve" these loops in
place: alternative implementations belong in a new backend, gated by the
cross-backend bit-identity suite.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.kernels.base import KernelBackend

__all__ = ["NumpyKernelBackend"]


class NumpyKernelBackend(KernelBackend):
    """Interpreted kernels on numpy arrays and plain Python lists."""

    name = "numpy"
    compiled = False

    def detail(self) -> str:
        return f"numpy {np.__version__} + CPython list loops"

    # ------------------------------------------------------------------
    # Kemeny delta-engine kernels
    # ------------------------------------------------------------------

    def build_sweep_mask(self, order: np.ndarray, margin: np.ndarray) -> np.ndarray:
        gathered = margin[order[:-1], order[1:]]
        return gathered > 0.0

    def sweep_adjacent(
        self,
        order: np.ndarray,
        margin: np.ndarray,
        mask: np.ndarray,
        track_objective: bool,
    ) -> tuple[bool, float]:
        p = int(mask.argmax())
        if not mask[p]:
            return False, 0.0
        n = order.shape[0]
        improvement = 0.0
        while True:
            carry = int(order[p])
            tail = order[p + 1 :]
            losses = margin[carry, tail]
            stops = losses <= 0.0
            stop_index = int(stops.argmax())
            run_length = stop_index if stops[stop_index] else tail.shape[0]
            # run_length >= 1: the pair at p was marked improving.
            q = p + run_length
            if track_objective:
                improvement += float(losses[:run_length].sum())
            order[p:q] = order[p + 1 : q + 1]
            order[q] = carry
            # Patch the mask.  Pairs p..q-2 are the old pairs p+1..q-1
            # shifted left.  Pair q-1 is (old order[q], carry): the carry
            # lost against old order[q], so the reverse margin is negative.
            # Pair q is (carry, old order[q+1]): the carry won, so not
            # improving.  Pair p-1 gained a new right-hand element and is
            # recomputed (the scan already passed it; the patch is for the
            # next pass).
            mask[p : q - 1] = mask[p + 1 : q]
            mask[q - 1] = False
            if q < n - 1:
                mask[q] = False
            if p > 0:
                mask[p - 1] = margin[order[p - 1], order[p]] > 0.0
            # Resume the scan at the next marked pair after the run.
            remainder = mask[q + 1 :]
            if remainder.size == 0:
                break
            offset = int(remainder.argmax())
            if not remainder[offset]:
                break
            p = q + 1 + offset
        return True, improvement

    def move_deltas(
        self,
        margin: np.ndarray,
        candidate: int,
        order: np.ndarray,
        position: int,
    ) -> np.ndarray:
        n = order.shape[0]
        gathered = margin[candidate, order]
        prefix = np.empty(n + 1, dtype=float)
        prefix[0] = 0.0
        np.cumsum(gathered, out=prefix[1:])
        deltas = np.empty(n, dtype=float)
        deltas[: position + 1] = prefix[position] - prefix[: position + 1]
        deltas[position + 1 :] = prefix[position + 1] - prefix[position + 2 :]
        return deltas

    # ------------------------------------------------------------------
    # Fairness parity kernels
    # ------------------------------------------------------------------

    def parity_after_swap(
        self,
        favored: Sequence[int],
        denominators: Sequence[int],
        group_u: int,
        group_v: int,
        gap: int,
    ) -> float:
        n_groups = len(favored)
        first_count = favored[0]
        if group_u == 0:
            first_count -= gap
        elif group_v == 0:
            first_count += gap
        highest = lowest = first_count / denominators[0]
        for group in range(1, n_groups):
            count = favored[group]
            if group == group_u:
                count -= gap
            elif group == group_v:
                count += gap
            score = count / denominators[group]
            if score > highest:
                highest = score
            elif score < lowest:
                lowest = score
        return highest - lowest

    def parity_after_deltas(
        self,
        favored: Sequence[int],
        deltas: Sequence[int],
        denominators: Sequence[int],
    ) -> float:
        n_groups = len(favored)
        highest = lowest = (favored[0] + deltas[0]) / denominators[0]
        for group in range(1, n_groups):
            score = (favored[group] + deltas[group]) / denominators[group]
            if score > highest:
                highest = score
            elif score < lowest:
                lowest = score
        return highest - lowest

    def move_histogram(
        self,
        membership: Any,
        window: Sequence[int],
        candidate: int,
        falling: bool,
        n_groups: int,
    ) -> Sequence[int]:
        counts = [0] * n_groups
        for other in window:
            counts[membership[other]] += 1
        group = membership[candidate]
        mixed = len(window) - counts[group]
        counts[group] = -mixed
        if not falling:
            counts = [-count for count in counts]
        return counts

    # ------------------------------------------------------------------
    # Shared core kernels
    # ------------------------------------------------------------------

    def favored_mixed_pairs_by_group(
        self,
        order: np.ndarray,
        membership: np.ndarray,
        n_groups: int,
    ) -> np.ndarray:
        ordered_groups = membership[order]
        n = ordered_groups.shape[0]
        counts = np.zeros(n_groups, dtype=np.int64)
        for group in range(n_groups):
            # Positions of the group's members, best to worst.  The k-th member
            # (0-based) has size-1-k same-group candidates after it, so its
            # favored (mixed) pairs are the remaining candidates below it.
            member_positions = np.flatnonzero(ordered_groups == group)
            size = member_positions.shape[0]
            if size == 0:
                continue
            same_group_after = size - 1 - np.arange(size, dtype=np.int64)
            counts[group] = int(((n - 1 - member_positions) - same_group_after).sum())
        return counts

    def precedence_accumulate(
        self,
        matrix: np.ndarray,
        positions: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        # precedes[r, a, b] <=> positions_r[b] < positions_r[a]
        precedes = positions[:, np.newaxis, :] < positions[:, :, np.newaxis]
        matrix += np.einsum("r,rab->ab", weights, precedes)
