"""Optional JIT compute-kernel backend on top of :mod:`numba`.

The module is always importable: when numba is missing it degrades to
``AVAILABLE = False`` plus a human-readable ``UNAVAILABLE_REASON`` and the
registry simply does not offer the backend.  When numba is present, the same
loops as :mod:`repro.kernels.numpy_backend` are expressed as scalar
``@njit(nogil=True)`` kernels — same decisions, same arithmetic on the same
exact integer-valued values, so results are bit-identical to the numpy
backend on unweighted inputs (the cross-backend property suite enforces it).

Compilation is lazy (first call per signature); :meth:`NumbaKernelBackend.warmup`
forces it up front on tiny inputs so serving paths do not pay the JIT cost
mid-request.  ``nogil=True`` lets the kernels release the GIL, which is what
makes the opt-in thread parallelism in ``ScenarioGrid.run`` worthwhile under
this backend.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.exceptions import KernelError
from repro.kernels.base import KernelBackend

__all__ = ["AVAILABLE", "UNAVAILABLE_REASON", "NumbaKernelBackend"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba
except ImportError as _exc:  # numba absent: backend stays unregistered
    numba = None
    UNAVAILABLE_REASON = f"numba is not importable ({_exc})"
else:  # pragma: no cover - exercised only where numba is installed
    UNAVAILABLE_REASON = ""

AVAILABLE = numba is not None


if AVAILABLE:  # pragma: no cover - exercised only where numba is installed
    _njit = numba.njit(cache=True, nogil=True, fastmath=False)

    @_njit
    def _build_sweep_mask(order, margin):
        n = order.shape[0]
        mask = np.empty(n - 1, dtype=np.bool_)
        for i in range(n - 1):
            mask[i] = margin[order[i], order[i + 1]] > 0.0
        return mask

    @_njit
    def _sweep_adjacent(order, margin, mask, track_objective):
        n = order.shape[0]
        p = -1
        for i in range(mask.shape[0]):
            if mask[i]:
                p = i
                break
        if p < 0:
            return False, 0.0
        improvement = 0.0
        while True:
            carry = order[p]
            # Carry run: shift the tail left until the carry wins a
            # comparison (first non-positive margin ends the run).
            q = p
            run_gain = 0.0
            for j in range(p + 1, n):
                loss = margin[carry, order[j]]
                if loss <= 0.0:
                    break
                order[j - 1] = order[j]
                q = j
                run_gain += loss
            order[q] = carry
            if track_objective:
                improvement += run_gain
            # Identical mask patch to the numpy backend: left-shift the
            # run's pairs, clear the two pairs adjacent to the landing
            # spot, recompute the pair entering from the left.
            for i in range(p, q - 1):
                mask[i] = mask[i + 1]
            mask[q - 1] = False
            if q < n - 1:
                mask[q] = False
            if p > 0:
                mask[p - 1] = margin[order[p - 1], order[p]] > 0.0
            nxt = -1
            for i in range(q + 1, mask.shape[0]):
                if mask[i]:
                    nxt = i
                    break
            if nxt < 0:
                break
            p = nxt
        return True, improvement

    @_njit
    def _move_deltas(margin, candidate, order, position):
        n = order.shape[0]
        prefix = np.empty(n + 1, dtype=np.float64)
        prefix[0] = 0.0
        running = 0.0
        for i in range(n):
            running += margin[candidate, order[i]]
            prefix[i + 1] = running
        deltas = np.empty(n, dtype=np.float64)
        anchor = prefix[position]
        for target in range(position + 1):
            deltas[target] = anchor - prefix[target]
        anchor = prefix[position + 1]
        for target in range(position + 1, n):
            deltas[target] = anchor - prefix[target + 1]
        return deltas

    @_njit
    def _parity_after_swap(favored, denominators, group_u, group_v, gap):
        n_groups = favored.shape[0]
        first_count = favored[0]
        if group_u == 0:
            first_count -= gap
        elif group_v == 0:
            first_count += gap
        highest = first_count / denominators[0]
        lowest = highest
        for group in range(1, n_groups):
            count = favored[group]
            if group == group_u:
                count -= gap
            elif group == group_v:
                count += gap
            score = count / denominators[group]
            if score > highest:
                highest = score
            elif score < lowest:
                lowest = score
        return highest - lowest

    @_njit
    def _parity_after_deltas(favored, deltas, denominators):
        n_groups = favored.shape[0]
        highest = (favored[0] + deltas[0]) / denominators[0]
        lowest = highest
        for group in range(1, n_groups):
            score = (favored[group] + deltas[group]) / denominators[group]
            if score > highest:
                highest = score
            elif score < lowest:
                lowest = score
        return highest - lowest

    @_njit
    def _move_histogram(membership, window, candidate, falling, n_groups):
        counts = np.zeros(n_groups, dtype=np.int64)
        for i in range(window.shape[0]):
            counts[membership[window[i]]] += 1
        group = membership[candidate]
        mixed = window.shape[0] - counts[group]
        counts[group] = -mixed
        if not falling:
            for g in range(n_groups):
                counts[g] = -counts[g]
        return counts

    @_njit
    def _favored_mixed_pairs_by_group(order, membership, n_groups):
        n = order.shape[0]
        counts = np.zeros(n_groups, dtype=np.int64)
        remaining = np.zeros(n_groups, dtype=np.int64)
        for i in range(n):
            remaining[membership[order[i]]] += 1
        for position in range(n):
            group = membership[order[position]]
            remaining[group] -= 1
            counts[group] += (n - position - 1) - remaining[group]
        return counts

    @_njit
    def _precedence_accumulate(matrix, positions, weights):
        n = matrix.shape[0]
        for r in range(positions.shape[0]):
            weight = weights[r]
            for a in range(n):
                position_a = positions[r, a]
                for b in range(n):
                    if positions[r, b] < position_a:
                        matrix[a, b] += weight


class NumbaKernelBackend(KernelBackend):
    """JIT-compiled kernels; registered only when :mod:`numba` imports."""

    name = "numba"
    compiled = True

    def __init__(self) -> None:
        if not AVAILABLE:
            raise KernelError(
                f"the numba kernel backend is unavailable: {UNAVAILABLE_REASON}"
            )
        self._warmed = False

    def detail(self) -> str:  # pragma: no cover - needs numba
        return f"numba {numba.__version__} njit(nogil) kernels, lazy-compiled"

    def compile_status(self) -> dict[str, Any]:  # pragma: no cover - needs numba
        status = super().compile_status()
        status["warmed"] = self._warmed
        return status

    def warmup(self) -> None:  # pragma: no cover - needs numba
        """Compile every kernel on tiny inputs (one-time, idempotent)."""
        if self._warmed:
            return
        order = np.array([1, 0], dtype=np.int64)
        margin = np.array([[0.0, 1.0], [-1.0, 0.0]], dtype=np.float64)
        mask = _build_sweep_mask(order, margin)
        _sweep_adjacent(order.copy(), margin, mask.copy(), True)
        _move_deltas(margin, 0, order, 0)
        ones = np.ones(2, dtype=np.int64)
        _parity_after_swap(ones, ones, 0, 1, 1)
        _parity_after_deltas(ones, np.zeros(2, dtype=np.int64), ones)
        membership = np.array([0, 1], dtype=np.int64)
        _move_histogram(membership, order, 0, True, 2)
        _favored_mixed_pairs_by_group(order, membership, 2)
        _precedence_accumulate(
            np.zeros((2, 2), dtype=np.float64),
            np.array([[0, 1]], dtype=np.int64),
            np.ones(1, dtype=np.float64),
        )
        self._warmed = True

    # ------------------------------------------------------------------
    # Representation hooks: numba kernels index int64 arrays directly.
    # ------------------------------------------------------------------

    def group_vector(self, values: Sequence[int]) -> np.ndarray:  # pragma: no cover
        return np.asarray(values, dtype=np.int64)

    def membership_vector(self, membership: np.ndarray) -> np.ndarray:  # pragma: no cover
        return np.ascontiguousarray(membership, dtype=np.int64)

    # ------------------------------------------------------------------
    # Kernels (thin wrappers normalising argument representations)
    # ------------------------------------------------------------------

    def build_sweep_mask(self, order, margin):  # pragma: no cover - needs numba
        return _build_sweep_mask(order, margin)

    def sweep_adjacent(self, order, margin, mask, track_objective):  # pragma: no cover
        swapped, improvement = _sweep_adjacent(order, margin, mask, track_objective)
        return bool(swapped), float(improvement)

    def move_deltas(self, margin, candidate, order, position):  # pragma: no cover
        return _move_deltas(margin, candidate, order, position)

    def parity_after_swap(
        self, favored, denominators, group_u, group_v, gap
    ):  # pragma: no cover - needs numba
        return float(_parity_after_swap(favored, denominators, group_u, group_v, gap))

    def parity_after_deltas(
        self, favored, deltas, denominators
    ):  # pragma: no cover - needs numba
        return float(
            _parity_after_deltas(favored, np.asarray(deltas, dtype=np.int64), denominators)
        )

    def move_histogram(
        self, membership, window, candidate, falling, n_groups
    ):  # pragma: no cover - needs numba
        return _move_histogram(
            membership,
            np.asarray(window, dtype=np.int64),
            candidate,
            falling,
            n_groups,
        )

    def favored_mixed_pairs_by_group(
        self, order, membership, n_groups
    ):  # pragma: no cover - needs numba
        return _favored_mixed_pairs_by_group(
            order, np.ascontiguousarray(membership, dtype=np.int64), n_groups
        )

    def precedence_accumulate(self, matrix, positions, weights):  # pragma: no cover
        _precedence_accumulate(matrix, positions, weights)
