"""Incremental consensus engine over a mutable ranking profile.

:class:`StreamingConsensusEngine` owns the live profile of a streaming
deployment.  Submitting or retracting rankings patches the cached
position/precedence/margin matrices of the underlying
:class:`~repro.core.ranking_set.RankingSet` (via
:meth:`~repro.core.ranking_set.RankingSet.with_added` /
:meth:`~repro.core.ranking_set.RankingSet.with_removed`) and updates the
content-address fingerprint incrementally — O(k n^2) per update of k
rankings instead of the O(m n^2) rebuild.

Two consensus paths with different cost/freshness trade-offs:

* :meth:`consensus` runs the exact batch pipeline on the patched state and
  is **bit-identical** to :func:`repro.cache.service.compute_consensus_payload`
  on a from-scratch rebuild of the same profile (the expensive O(m n^2)
  matrix and PD-loss work is replaced by cache patches plus an O(n^2)
  precedence-matrix read).
* :meth:`repair` warm-starts Make-MR-Fair and the fairness-preserving local
  search from the *previous* consensus instead of a cold seed, so one
  update costs a handful of local-search passes — the ``update-and-repair``
  operation gated by ``benchmarks/test_perf_streaming.py``.

Both paths retain from-scratch references (:meth:`rebuild_reference`,
:meth:`repair_reference`) that the property tests keep bit-identical under
randomized add/remove sequences.
"""

from __future__ import annotations

import bisect
import hashlib
import json
from collections.abc import Mapping, Sequence

import numpy as np

from repro.cache.fingerprint import fingerprint_candidate_table
from repro.cache.service import compute_consensus_payload, resolve_method
from repro.core.candidates import CandidateTable
from repro.core.distances import kemeny_objective
from repro.core.pairwise import total_pairs
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import ValidationError
from repro.fair.local_repair import (
    fair_insertion_kemenization_reference,
    fair_local_kemenization_reference,
    fair_local_search,
)
from repro.fair.make_mr_fair import make_mr_fair, make_mr_fair_reference
from repro.fair.registry import canonical_fair_method_name
from repro.fairness.parity import parity_scores
from repro.fairness.report import fairness_row
from repro.fairness.thresholds import FairnessThresholds
from repro.io.serialization import canonical_json

__all__ = ["StreamingConsensusEngine"]


def _ranking_token(ranking: Ranking, weight: float) -> str:
    """Per-ranking fingerprint token, mirroring :func:`fingerprint_ranking_set`.

    Keeping the exact byte layout of the batch fingerprint is what lets the
    engine maintain the profile fingerprint incrementally: the sorted token
    list is updated with one ``bisect`` insertion/removal per ranking, and
    hashing the joined tokens reproduces the batch digest bit-for-bit.
    """
    return hashlib.sha256(
        ranking.order.astype("<i8", copy=False).tobytes() + repr(float(weight)).encode()
    ).hexdigest()


def _coerce_ranking(order: Ranking | Sequence[int], n_candidates: int) -> Ranking:
    """Validate one submitted order against the engine's candidate universe."""
    ranking = order if isinstance(order, Ranking) else Ranking(order)
    if ranking.n_candidates != n_candidates:
        raise ValidationError(
            f"submitted ranking covers {ranking.n_candidates} candidates; the "
            f"profile universe has {n_candidates}"
        )
    return ranking


class StreamingConsensusEngine:
    """Mutable ranking profile with incremental matrices and warm-started repair.

    Parameters
    ----------
    table:
        The candidate table (group schema) of the profile's universe.
    method:
        Registered aggregation method used by :meth:`consensus`; canonicalised
        through the registry at construction.
    strategy:
        Optional local-repair strategy name; canonicalised through
        :func:`repro.aggregation.search.get_strategy`.
    delta:
        Fairness threshold(s); see :class:`FairnessThresholds`.
    rankings:
        Optional seed profile.  The engine also starts empty — an empty
        profile is a legal streaming state (unlike :class:`RankingSet`,
        which is never empty), and :meth:`consensus` raises until rankings
        are submitted.
    """

    def __init__(
        self,
        table: CandidateTable,
        method: str = "fair-borda",
        strategy: str | None = None,
        delta: FairnessThresholds | float | Mapping[str, float] = 0.1,
        rankings: RankingSet | None = None,
    ) -> None:
        """See the class docstring for the parameter contract."""
        self._table = table
        self._method = canonical_fair_method_name(method)
        if strategy is not None:
            from repro.aggregation.search import get_strategy

            self._strategy: str | None = get_strategy(strategy).name
        else:
            self._strategy = None
        # Resolve once so an unknown method/strategy fails at construction.
        resolve_method(self._method, self._strategy)
        self._thresholds = FairnessThresholds.coerce(delta)
        self._schema = fingerprint_candidate_table(table)
        self._set: RankingSet | None = None
        self._tokens: list[str] = []
        self._version = 0
        self._previous: Ranking | None = None
        self._payload: dict | None = None
        self._payload_version = -1
        if rankings is not None:
            if rankings.n_candidates != table.n_candidates:
                raise ValidationError(
                    "seed rankings and candidate table cover different universes: "
                    f"{rankings.n_candidates} vs {table.n_candidates} candidates"
                )
            self._set = rankings
            self._tokens = sorted(
                _ranking_token(ranking, weight)
                for ranking, weight in zip(rankings.rankings, rankings.weights)
            )

    # ------------------------------------------------------------------
    # profile state
    # ------------------------------------------------------------------
    @property
    def table(self) -> CandidateTable:
        """The candidate table of the profile's universe."""
        return self._table

    @property
    def method(self) -> str:
        """Canonical name of the aggregation method."""
        return self._method

    @property
    def strategy(self) -> str | None:
        """Canonical name of the local-repair strategy, if any."""
        return self._strategy

    @property
    def thresholds(self) -> FairnessThresholds:
        """The fairness thresholds."""
        return self._thresholds

    @property
    def schema_fingerprint(self) -> str:
        """Fingerprint of the candidate table (fixed for the engine's lifetime)."""
        return self._schema

    @property
    def profile_version(self) -> int:
        """Monotonic counter, bumped once per successful add/remove batch."""
        return self._version

    @property
    def n_rankings(self) -> int:
        """Number of rankings currently in the profile (0 when empty)."""
        return 0 if self._set is None else self._set.n_rankings

    @property
    def is_empty(self) -> bool:
        """Whether the profile currently holds no rankings."""
        return self._set is None

    @property
    def rankings(self) -> RankingSet | None:
        """The live (cache-patched) ranking set, or ``None`` when empty."""
        return self._set

    @property
    def last_consensus(self) -> Ranking | None:
        """The most recent consensus from either path (the warm-start seed)."""
        return self._previous

    @property
    def profile_fingerprint(self) -> str | None:
        """Incrementally-maintained profile fingerprint, or ``None`` when empty.

        Bit-identical to :func:`repro.cache.fingerprint.fingerprint_ranking_set`
        on a from-scratch rebuild of the current profile — the property tests
        hold this under randomized add/remove sequences.
        """
        if self._set is None:
            return None
        body = f"n={self._table.n_candidates};" + ";".join(self._tokens)
        return hashlib.sha256(body.encode()).hexdigest()

    # ------------------------------------------------------------------
    # incremental updates
    # ------------------------------------------------------------------
    def add_rankings(
        self,
        orders: Sequence[Ranking | Sequence[int]],
        weights: Sequence[float] | None = None,
        labels: Sequence[str] | None = None,
    ) -> int:
        """Submit a batch of rankings, patching the cached matrices in place.

        Returns the new profile version.  Duplicate submissions are legal —
        the profile is a weighted multiset, so each copy contributes its own
        precedence increment and fingerprint token.
        """
        added = [_coerce_ranking(order, self._table.n_candidates) for order in orders]
        if not added:
            raise ValidationError("add_rankings needs at least one ranking")
        if weights is None:
            batch_weights = np.ones(len(added), dtype=float)
        else:
            batch_weights = np.asarray(list(weights), dtype=float)
            if batch_weights.shape != (len(added),):
                raise ValidationError(
                    "weights must have one entry per submitted ranking"
                )
        if self._set is None:
            self._set = RankingSet(added, labels=labels, weights=batch_weights)
        else:
            self._set = self._set.with_added(
                added, labels=labels, weights=batch_weights
            )
        for ranking, weight in zip(added, batch_weights):
            bisect.insort(self._tokens, _ranking_token(ranking, float(weight)))
        self._version += 1
        return self._version

    def remove_rankings(
        self,
        orders: Sequence[Ranking | Sequence[int]],
        weights: Sequence[float] | None = None,
    ) -> int:
        """Retract a batch of rankings, patching the cached matrices in place.

        Each entry retracts *one* copy matching both the order and the weight
        (default 1.0), so retracting a duplicated submission leaves the other
        copies in the profile.  Returns the new profile version.

        Raises
        ------
        ValidationError
            If any requested ranking/weight pair is not present in the
            profile (nothing is removed in that case), or the profile is
            already empty.
        """
        targets = [_coerce_ranking(order, self._table.n_candidates) for order in orders]
        if not targets:
            raise ValidationError("remove_rankings needs at least one ranking")
        if weights is None:
            batch_weights = [1.0] * len(targets)
        else:
            batch_weights = [float(weight) for weight in weights]
            if len(batch_weights) != len(targets):
                raise ValidationError(
                    "weights must have one entry per retracted ranking"
                )
        if self._set is None:
            raise ValidationError("cannot remove rankings from an empty profile")
        positions = self._set.position_matrix()
        set_weights = self._set.weights
        chosen: list[int] = []
        taken: set[int] = set()
        for ranking, weight in zip(targets, batch_weights):
            matches = np.flatnonzero(
                (positions == ranking.positions).all(axis=1) & (set_weights == weight)
            )
            index = next((int(i) for i in matches if int(i) not in taken), None)
            if index is None:
                raise ValidationError(
                    f"no ranking with order {ranking.to_list()} and weight "
                    f"{weight} is present in the profile"
                )
            taken.add(index)
            chosen.append(index)
        if len(chosen) == self._set.n_rankings:
            self._set = None
        else:
            self._set = self._set.with_removed(chosen)
        for ranking, weight in zip(targets, batch_weights):
            token = _ranking_token(ranking, weight)
            slot = bisect.bisect_left(self._tokens, token)
            self._tokens.pop(slot)
        self._version += 1
        return self._version

    # ------------------------------------------------------------------
    # consensus paths
    # ------------------------------------------------------------------
    def _require_profile(self) -> RankingSet:
        """Return the live set or raise the canonical empty-profile error."""
        if self._set is None:
            raise ValidationError(
                "the streaming profile is empty; submit rankings before "
                "requesting a consensus"
            )
        return self._set

    def _fast_pd_loss(self, consensus: Ranking, rankings: RankingSet) -> float:
        """PD loss from the cached precedence matrix, bit-identical to batch.

        The sum of per-ranking Kendall tau distances to the consensus equals
        the Kemeny objective — the precedence-matrix entries above the
        consensus diagonal — and both are exact integers below 2^53, so
        ``int(objective) / (pairs * m)`` reproduces
        :func:`repro.fairness.pd_loss.pd_loss` bit-for-bit at O(n^2) cost
        instead of O(m n^2).
        """
        pairs = total_pairs(rankings.n_candidates)
        if pairs == 0:
            return 0.0
        disagreements = int(kemeny_objective(consensus, rankings))
        return disagreements / (pairs * rankings.n_rankings)

    def consensus(self) -> dict:
        """Exact batch consensus of the current profile from the patched state.

        Bit-identical to
        ``compute_consensus_payload(self.rebuild(), table, method, strategy,
        delta)`` — the cold O(m n^2) precedence build and PD-loss pass are
        replaced by the incremental cache patches and an O(n^2) read.  The
        payload is cached per profile version, so repeated reads between
        updates are free.
        """
        rankings = self._require_profile()
        if self._payload is not None and self._payload_version == self._version:
            return self._payload
        aggregator = resolve_method(self._method, self._strategy)
        result = aggregator.aggregate_with_diagnostics(
            rankings, self._table, self._thresholds
        )
        consensus = result.ranking
        payload = {
            "method": self._method,
            "method_label": aggregator.name,
            "strategy": self._strategy,
            "delta": {
                "default": self._thresholds.default,
                "per_entity": self._thresholds.per_entity,
            },
            "consensus": {
                "order": consensus.to_list(),
                "names": [self._table.name_of(candidate) for candidate in consensus],
            },
            "unaware_order": (
                result.unaware_ranking.to_list() if result.unaware_ranking else None
            ),
            "pd_loss": self._fast_pd_loss(consensus, rankings),
            "parity": parity_scores(consensus, self._table),
            "fairness": fairness_row(consensus, self._table),
            "diagnostics": result.diagnostics,
        }
        payload = json.loads(canonical_json(payload))
        self._previous = consensus
        self._payload = payload
        self._payload_version = self._version
        return payload

    def repair(self) -> dict:
        """Warm-started update-and-repair from the previous consensus.

        Instead of re-seeding from scratch, the previous consensus is
        corrected with Make-MR-Fair (ARP/IRP feasibility depends only on the
        ranking and the group schema, not the profile, so a feasible
        consensus usually needs zero swaps) and polished with the
        fairness-preserving local search over the patched ranking set —
        warm-starting the ``KemenyDeltaEngine`` + ``FairnessState`` pair
        from the previous order.  Falls back to :meth:`consensus` when no
        previous consensus exists yet.
        """
        rankings = self._require_profile()
        if self._previous is None:
            payload = self.consensus()
            return json.loads(
                canonical_json({**payload, "seeded_from": "cold-start"})
            )
        fair = make_mr_fair(self._previous, self._table, self._thresholds)
        search = fair_local_search(
            rankings,
            fair.ranking,
            self._table,
            self._thresholds,
            strategy=self._strategy or "adjacent-swap",
        )
        payload = self._repair_payload(fair, search, rankings)
        self._previous = search.ranking
        self._payload = None
        self._payload_version = -1
        return payload

    def _repair_payload(self, fair, search, rankings: RankingSet) -> dict:
        """Assemble the JSON-safe payload shared by repair and its reference."""
        consensus = search.ranking
        payload = {
            "method": self._method,
            "strategy": self._strategy,
            "seeded_from": "previous-consensus",
            "consensus": {
                "order": consensus.to_list(),
                "names": [self._table.name_of(candidate) for candidate in consensus],
            },
            "pd_loss": self._fast_pd_loss(consensus, rankings),
            "parity": parity_scores(consensus, self._table),
            "diagnostics": {
                "fairness_swaps": fair.n_swaps,
                "repair_swaps": search.n_swaps,
                "repair_moves": search.n_moves,
                "repair_passes": search.n_passes,
                "repair_objective": search.objective,
            },
        }
        return json.loads(canonical_json(payload))

    # ------------------------------------------------------------------
    # from-scratch references
    # ------------------------------------------------------------------
    def rebuild(self) -> RankingSet:
        """Rebuild the current profile from scratch, sharing no caches.

        The returned set re-derives every position/precedence/margin matrix
        on demand; it is the ground truth the property tests compare the
        patched caches against, byte for byte.
        """
        rankings = self._require_profile()
        return RankingSet(
            [Ranking(ranking.order.copy()) for ranking in rankings.rankings],
            labels=list(rankings.labels),
            weights=np.array(rankings.weights, dtype=float, copy=True),
        )

    def rebuild_reference(self) -> dict:
        """From-scratch consensus payload of the current profile.

        ``rebuild + re-aggregate`` through the batch pipeline; the retained
        reference that :meth:`consensus` must match bit-for-bit.
        """
        return compute_consensus_payload(
            self.rebuild(),
            self._table,
            method=self._method,
            strategy=self._strategy,
            delta=self._thresholds,
        )

    def repair_reference(self, previous: Ranking) -> dict:
        """From-scratch update-and-repair: reference for :meth:`repair`.

        Rebuilds the profile, corrects ``previous`` with
        :func:`make_mr_fair_reference`, and polishes it with the
        from-scratch local-repair references — the same pipeline
        :meth:`repair` runs incrementally.
        """
        self._require_profile()
        rebuilt = self.rebuild()
        fair = make_mr_fair_reference(previous, self._table, self._thresholds)
        name = self._strategy or "adjacent-swap"
        if name == "adjacent-swap":
            search = fair_local_kemenization_reference(
                rebuilt, fair.ranking, self._table, self._thresholds
            )
        elif name == "insertion":
            search = fair_insertion_kemenization_reference(
                rebuilt, fair.ranking, self._table, self._thresholds
            )
        else:
            search = fair_local_search(
                rebuilt, fair.ranking, self._table, self._thresholds, strategy=name
            )
        payload = dict(self._repair_payload(fair, search, rebuilt))
        # The reference recomputes PD loss the O(m n^2) way; equality with the
        # cached-matrix fast path is part of the bit-identity contract.
        from repro.fairness.pd_loss import pd_loss

        payload["pd_loss"] = pd_loss(rebuilt, search.ranking)
        return json.loads(canonical_json(payload))
