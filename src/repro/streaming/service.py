"""Streaming consensus wired into the content-addressed result cache.

:class:`StreamingConsensusService` pairs a
:class:`~repro.streaming.engine.StreamingConsensusEngine` with the two-tier
:class:`~repro.cache.store.ResultCache` from the batch serving stack:

* :meth:`aggregate` serves the current profile's consensus under the exact
  batch cache key — the engine's incrementally-maintained fingerprint slots
  straight into :class:`~repro.cache.fingerprint.CacheKey`, so a streamed
  result and a batch result for the same profile share one content address.
* :meth:`update` applies an add/remove batch and then *invalidates* every
  cache entry served for the old profile, recording the new profile version
  in the cache stats (``invalidations`` / ``profile_version`` counters) so
  dashboards can distinguish invalidation from LRU eviction.

All entry points are serialised behind one lock: the HTTP front-end calls
into the service from an executor thread per request.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Sequence

from repro.cache.fingerprint import CacheKey, fingerprint_thresholds
from repro.cache.store import ResultCache
from repro.exceptions import ValidationError
from repro.streaming.engine import StreamingConsensusEngine
from repro.streaming.replay import StreamEvent

__all__ = ["StreamingConsensusService"]


class StreamingConsensusService:
    """Thread-safe streaming facade: update, invalidate, serve from cache.

    Parameters
    ----------
    engine:
        The streaming consensus engine holding the live profile.
    cache:
        The result cache shared with the batch serving path; defaults to a
        memory-only LRU.
    """

    def __init__(
        self, engine: StreamingConsensusEngine, cache: ResultCache | None = None
    ) -> None:
        """See the class docstring for the parameter contract."""
        self._engine = engine
        self._cache = cache if cache is not None else ResultCache()
        self._lock = threading.Lock()
        self._live: set[str] = set()

    @property
    def engine(self) -> StreamingConsensusEngine:
        """The underlying streaming engine."""
        return self._engine

    @property
    def cache(self) -> ResultCache:
        """The underlying result cache."""
        return self._cache

    def describe(self) -> dict:
        """JSON-safe snapshot of the engine configuration and profile state."""
        with self._lock:
            return {
                "method": self._engine.method,
                "strategy": self._engine.strategy,
                "delta": {
                    "default": self._engine.thresholds.default,
                    "per_entity": self._engine.thresholds.per_entity,
                },
                "n_rankings": self._engine.n_rankings,
                "profile_version": self._engine.profile_version,
                "profile": self._engine.profile_fingerprint,
            }

    def update(
        self,
        add: Sequence[StreamEvent] = (),
        remove: Sequence[StreamEvent] = (),
    ) -> dict:
        """Apply one add/remove batch, then invalidate the old profile's entries.

        ``add`` and ``remove`` are :class:`StreamEvent` sequences (the ``op``
        field is ignored here; membership in the batch decides the
        direction).  Adds are applied before removes, so a batch may submit
        and retract within one call.  Every cache entry served for the
        previous profile is invalidated, keyed on the new profile version.
        """
        if not add and not remove:
            raise ValidationError(
                "an update must add or remove at least one ranking"
            )
        with self._lock:
            if add:
                labels = [event.label for event in add]
                self._engine.add_rankings(
                    [list(event.order) for event in add],
                    weights=[event.weight for event in add],
                    labels=labels if any(label is not None for label in labels) else None,
                )
            if remove:
                self._engine.remove_rankings(
                    [list(event.order) for event in remove],
                    weights=[event.weight for event in remove],
                )
            invalidated = self._cache.invalidate(
                self._live, profile_version=self._engine.profile_version
            )
            self._live.clear()
            return {
                "profile_version": self._engine.profile_version,
                "n_rankings": self._engine.n_rankings,
                "added": len(add),
                "removed": len(remove),
                "invalidated": invalidated,
                "profile": self._engine.profile_fingerprint,
            }

    def aggregate(self) -> dict:
        """Serve the current profile's consensus, computing on a cache miss.

        The key is built from the engine's incremental fingerprint, so it is
        identical to the batch :func:`repro.cache.fingerprint.cache_key` of a
        rebuilt profile — cached entries are shared across the streaming and
        batch paths, and invalidated (not merely evicted) on profile change.
        """
        with self._lock:
            profile = self._engine.profile_fingerprint
            if profile is None:
                raise ValidationError(
                    "the streaming profile is empty; POST /update with "
                    "rankings before requesting a consensus"
                )
            key = CacheKey(
                profile=profile,
                schema=self._engine.schema_fingerprint,
                method=self._engine.method,
                strategy=self._engine.strategy,
                thresholds=fingerprint_thresholds(self._engine.thresholds),
            )
            digest = key.digest
            payload = self._cache.get(digest)
            cached = payload is not None
            if payload is None:
                started = time.perf_counter()
                payload = self._engine.consensus()
                # Report the observed compute cost so the shared cache's
                # cost-aware policy can price streamed entries too.
                self._cache.put(
                    digest, payload, compute_seconds=time.perf_counter() - started
                )
            self._live.add(digest)
            return {
                "key": digest,
                "cached": cached,
                "result": payload,
                "profile_version": self._engine.profile_version,
            }

    def repair(self) -> dict:
        """Warm-started update-and-repair of the current profile (uncached).

        The repaired order is a fast approximation refreshed from the
        previous consensus; it intentionally bypasses the cache, which only
        stores exact batch-identical payloads.
        """
        with self._lock:
            return {
                "result": self._engine.repair(),
                "profile_version": self._engine.profile_version,
            }

    def stats(self) -> dict:
        """JSON-safe snapshot of the cache counters."""
        return self._cache.stats().to_dict()
