"""Streaming consensus: incremental profile updates and warm-started repair.

The batch pipeline treats a ranking profile as frozen — every submitted or
retracted ranking forces a full precedence/margin recompute and a cold
aggregation run.  This package makes profiles mutable:

* :class:`~repro.streaming.engine.StreamingConsensusEngine` patches the
  cached position/precedence/margin matrices of the live
  :class:`~repro.core.ranking_set.RankingSet` in place (each ranking is a
  rank-1-style precedence contribution), refreshes the profile fingerprint
  incrementally, and warm-starts Make-MR-Fair plus the
  :class:`~repro.aggregation.incremental.KemenyDeltaEngine` /
  :class:`~repro.fairness.incremental.FairnessState` local search from the
  previous consensus instead of a cold seed.
* :class:`~repro.streaming.service.StreamingConsensusService` wires the
  engine into the content-addressed
  :class:`~repro.cache.store.ResultCache`, invalidating cached entries
  keyed on the new profile version after every update.
* :mod:`~repro.streaming.replay` reads JSONL event logs for the
  ``mani-rank stream`` CLI subcommand and the ``/update`` endpoint.

Every incremental path keeps a from-scratch reference (``rebuild`` +
re-aggregate) that property tests hold bit-identical under randomized
add/remove sequences.
"""

from repro.streaming.engine import StreamingConsensusEngine
from repro.streaming.replay import StreamEvent, apply_events, read_events, resolve_order
from repro.streaming.service import StreamingConsensusService

__all__ = [
    "StreamEvent",
    "StreamingConsensusEngine",
    "StreamingConsensusService",
    "apply_events",
    "read_events",
    "resolve_order",
]
