"""JSONL event logs for the streaming engine.

One event per line::

    {"op": "add", "ranking": ["ana", "ben", ...], "weight": 1.0, "label": "j1"}
    {"op": "remove", "ranking": ["ana", "ben", ...], "weight": 1.0}

``ranking`` lists candidates best-to-worst, as names (resolved through the
candidate table) or integer ids; ``weight`` defaults to 1.0 and ``label`` is
optional.  :func:`read_events` parses and validates a log,
:func:`apply_events` replays it event-by-event against a
:class:`~repro.streaming.engine.StreamingConsensusEngine` — exercising the
same incremental path one update at a time that the ``/update`` endpoint
takes in batches.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.core.candidates import CandidateTable
from repro.exceptions import ValidationError
from repro.streaming.engine import StreamingConsensusEngine

__all__ = ["StreamEvent", "apply_events", "read_events", "resolve_order"]

_OPS = ("add", "remove")


def resolve_order(ranking: Sequence[object], table: CandidateTable) -> list[int]:
    """Resolve a best-to-worst candidate list (names or ids) to integer ids."""
    order: list[int] = []
    for entry in ranking:
        if isinstance(entry, str):
            order.append(table.id_of(entry))
        elif isinstance(entry, int) and not isinstance(entry, bool):
            order.append(entry)
        else:
            raise ValidationError(
                f"ranking entries must be candidate names or integer ids; got "
                f"{entry!r}"
            )
    return order


@dataclass(frozen=True)
class StreamEvent:
    """One parsed profile update: submit or retract a single weighted ranking."""

    op: str
    order: tuple[int, ...]
    weight: float = 1.0
    label: str | None = None


def read_events(path: str | Path, table: CandidateTable) -> list[StreamEvent]:
    """Parse a JSONL event log, resolving candidate names through ``table``.

    Raises
    ------
    ValidationError
        On malformed JSON, unknown ``op`` values, or missing fields — the
        message carries the 1-based line number.
    """
    events: list[StreamEvent] = []
    text = Path(path).read_text(encoding="utf-8")
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValidationError(
                f"{path}:{line_number}: invalid JSON: {error}"
            ) from error
        if not isinstance(record, dict):
            raise ValidationError(
                f"{path}:{line_number}: each event must be a JSON object"
            )
        op = record.get("op")
        if op not in _OPS:
            raise ValidationError(
                f"{path}:{line_number}: op must be one of {_OPS}; got {op!r}"
            )
        ranking = record.get("ranking")
        if not isinstance(ranking, list) or not ranking:
            raise ValidationError(
                f"{path}:{line_number}: 'ranking' must be a non-empty list"
            )
        try:
            order = resolve_order(ranking, table)
        except (ValidationError, KeyError) as error:
            raise ValidationError(f"{path}:{line_number}: {error}") from error
        weight = record.get("weight", 1.0)
        if not isinstance(weight, (int, float)) or isinstance(weight, bool):
            raise ValidationError(
                f"{path}:{line_number}: 'weight' must be a number"
            )
        label = record.get("label")
        if label is not None and not isinstance(label, str):
            raise ValidationError(
                f"{path}:{line_number}: 'label' must be a string"
            )
        events.append(
            StreamEvent(op=op, order=tuple(order), weight=float(weight), label=label)
        )
    if not events:
        raise ValidationError(f"{path}: the event log is empty")
    return events


def apply_events(
    engine: StreamingConsensusEngine, events: Sequence[StreamEvent]
) -> int:
    """Replay events one at a time; returns the final profile version."""
    version = engine.profile_version
    for event in events:
        if event.op == "add":
            version = engine.add_rankings(
                [list(event.order)],
                weights=[event.weight],
                labels=[event.label] if event.label is not None else None,
            )
        else:
            version = engine.remove_rankings(
                [list(event.order)], weights=[event.weight]
            )
    return version
