"""Stable high-level facade for the MANI-Rank reproduction.

The internal packages (:mod:`repro.core`, :mod:`repro.aggregation`,
:mod:`repro.fair`, ...) are free to move and rename symbols between PRs; this
module is the one import surface with a compatibility promise.  It covers the
five verbs a typical caller needs — load a preference profile, aggregate it
into a consensus, repair a ranking to MANI-Rank fairness, evaluate fairness,
and open a consensus cache — plus the compute-kernel backend registry
(:mod:`repro.kernels`) for introspection and selection.

Stability policy
----------------

* Names exported here (``repro.api.__all__``) keep their signature semantics;
  new keyword arguments may be added with defaults that preserve behaviour.
* Internal modules may change without notice; import from ``repro.api`` (or
  the top-level ``repro`` re-exports) in downstream code.
* Deprecated aliases warn with :class:`DeprecationWarning` for at least two
  PRs before removal (see ``docs/api.md``).

Example
-------

>>> import repro.api as api
>>> from repro import CandidateTable, RankingSet
>>> table = CandidateTable({"Gender": ["M", "W", "M", "W"]})
>>> rankings = RankingSet.from_orders([[0, 1, 2, 3], [1, 0, 3, 2], [0, 2, 1, 3]])
>>> payload = api.aggregate(rankings, table, method="fair-borda", delta=0.2)
>>> payload["consensus"]["order"]  # doctest: +ELLIPSIS
[...]
>>> api.evaluate_fairness(payload["consensus"]["order"], table, delta=0.2).satisfied
True
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import NamedTuple

from repro.cache.service import ConsensusCacheService, compute_consensus_payload
from repro.cache.store import ResultCache
from repro.core.candidates import CandidateTable
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.fair.make_mr_fair import MakeMRFairResult, make_mr_fair
from repro.fair.sharding import make_mr_fair_sharded
from repro.fairness.parity import ManiRankReport, evaluate_mani_rank
from repro.fairness.thresholds import FairnessThresholds
from repro.io.csv_io import read_candidate_table, read_ranking_set
from repro.kernels import (
    BACKEND_ENV_VAR,
    KernelBackend,
    active_backend,
    active_backend_name,
    available_backends,
    create_backend,
    describe_backends,
    get_backend,
    resolve_backend,
    set_default_backend,
    unavailable_backends,
    use_backend,
)

__all__ = [
    # the five facade verbs
    "load_profile",
    "aggregate",
    "repair",
    "evaluate_fairness",
    "open_cache",
    "Profile",
    # kernel-backend registry (re-exported from repro.kernels)
    "KernelBackend",
    "BACKEND_ENV_VAR",
    "available_backends",
    "unavailable_backends",
    "create_backend",
    "get_backend",
    "resolve_backend",
    "active_backend",
    "active_backend_name",
    "set_default_backend",
    "use_backend",
    "describe_backends",
]


class Profile(NamedTuple):
    """A preference profile: the base rankings plus their candidate table."""

    rankings: RankingSet
    table: CandidateTable


def load_profile(
    candidates_path: str | Path, rankings_path: str | Path
) -> Profile:
    """Load a preference profile from its two CSV files.

    ``candidates_path`` is a candidate-table CSV (``name`` + one column per
    protected attribute); ``rankings_path`` is a ranking-set CSV whose rows
    list candidate names best-to-worst.  Malformed files raise
    :class:`~repro.exceptions.ValidationError` with ``path:row`` positions.
    """
    table = read_candidate_table(candidates_path)
    rankings = read_ranking_set(rankings_path, table)
    return Profile(rankings, table)


def aggregate(
    rankings: RankingSet,
    table: CandidateTable,
    method: str = "fair-borda",
    strategy: str | None = None,
    delta: FairnessThresholds | float | Mapping[str, float] = 0.1,
    backend: KernelBackend | str | None = None,
) -> dict:
    """Aggregate a profile into a fair consensus and return the JSON payload.

    A thin wrapper over
    :func:`~repro.cache.service.compute_consensus_payload` that additionally
    accepts a compute-kernel ``backend`` (name, instance, or ``None`` for the
    process default); the backend is installed for the duration of the call
    only.
    """
    if backend is None:
        return compute_consensus_payload(
            rankings, table, method=method, strategy=strategy, delta=delta
        )
    with use_backend(resolve_backend(backend).name):
        return compute_consensus_payload(
            rankings, table, method=method, strategy=strategy, delta=delta
        )


def repair(
    rankings: Ranking | Sequence[Ranking],
    table: CandidateTable,
    delta: FairnessThresholds | float | Mapping[str, float],
    max_swaps: int | None = None,
    n_shards: int | None = None,
    backend: KernelBackend | str | None = None,
) -> MakeMRFairResult | list[MakeMRFairResult]:
    """Repair ranking(s) to MANI-Rank fairness with Make-MR-Fair.

    Pass a single :class:`~repro.core.ranking.Ranking` to repair it in
    process (``n_shards`` is ignored), or a sequence of rankings to repair
    the batch — sharded across a process pool when ``n_shards`` is ``None``
    (one shard per CPU) or greater than one, bit-identical to the serial
    loop either way.
    """
    if isinstance(rankings, Ranking):
        return make_mr_fair(
            rankings, table, delta, max_swaps=max_swaps, backend=backend
        )
    return make_mr_fair_sharded(
        rankings,
        table,
        delta,
        max_swaps=max_swaps,
        n_shards=n_shards,
        backend=backend,
    )


def evaluate_fairness(
    ranking: Ranking | Sequence[int],
    table: CandidateTable,
    delta: FairnessThresholds | float | Mapping[str, float],
) -> ManiRankReport:
    """Evaluate MANI-Rank fairness (FPR/ARP/IRP) and return the full report.

    Accepts a :class:`~repro.core.ranking.Ranking` or a plain best-to-worst
    candidate-id sequence (as found in aggregation payloads).
    """
    if not isinstance(ranking, Ranking):
        ranking = Ranking(ranking)
    return evaluate_mani_rank(ranking, table, delta)


def open_cache(
    directory: str | Path | None = None,
    memory_capacity: int | None = 256,
    **cache_options: object,
) -> ConsensusCacheService:
    """Open a consensus cache service backed by a two-tier result store.

    ``directory=None`` gives a memory-only cache; otherwise results are also
    persisted as content-addressed blobs under ``directory``.  Extra keyword
    arguments (``policy``, ``ttl``, ``retry``, ``breaker``, ...) are
    forwarded to :class:`~repro.cache.store.ResultCache`.
    """
    cache = ResultCache(
        memory_capacity=memory_capacity, directory=directory, **cache_options
    )
    return ConsensusCacheService(cache)
