"""MANI-Rank: multi-attribute and intersectional group fairness for consensus ranking.

Reproduction of Cachel, Rundensteiner & Harrison, *MANI-Rank: Multiple
Attribute and Intersectional Group Fairness for Consensus Ranking*
(ICDE 2022).  The package provides:

* :mod:`repro.core` — candidates, protected attributes, rankings, ranking
  sets, and rank distances;
* :mod:`repro.fairness` — the MANI-Rank criteria (FPR, ARP, IRP), PD loss and
  Price of Fairness;
* :mod:`repro.aggregation` — fairness-unaware consensus methods (Borda,
  Copeland, Schulze, exact Kemeny, ...);
* :mod:`repro.fair` — the MFCR solutions (Fair-Kemeny, Fair-Copeland,
  Fair-Schulze, Fair-Borda) and the paper's baselines;
* :mod:`repro.datagen` — Mallows sampling, fairness-controlled modal
  rankings, and the case-study datasets;
* :mod:`repro.experiments` — one module per paper table/figure;
* :mod:`repro.io` — CSV/JSON persistence;
* :mod:`repro.cache` — the content-addressed consensus cache and the
  ``mani-rank serve`` HTTP front-end;
* :mod:`repro.kernels` — pluggable compute-kernel backends for the hot
  inner loops (``numpy`` always, ``numba`` when importable);
* :mod:`repro.api` — the stable high-level facade with the compatibility
  promise (see ``docs/api.md``).

Quickstart
----------

>>> from repro import CandidateTable, RankingSet, FairKemenyAggregator, evaluate_mani_rank
>>> table = CandidateTable(
...     {
...         "Gender": ["M", "M", "W", "W", "M", "M", "W", "W"],
...         "Race": ["A", "B", "A", "B", "A", "B", "A", "B"],
...     }
... )
>>> rankings = RankingSet.from_orders(
...     [[0, 1, 4, 5, 2, 3, 6, 7], [1, 0, 5, 4, 3, 2, 7, 6], [0, 4, 1, 5, 2, 6, 3, 7]]
... )
>>> fair = FairKemenyAggregator().aggregate(rankings, table, delta=0.2)
>>> evaluate_mani_rank(fair, table, delta=0.2).satisfied
True
"""

from repro.aggregation import (
    BordaAggregator,
    CopelandAggregator,
    FootruleAggregator,
    KemenyAggregator,
    KemenyDeltaEngine,
    LocalSearchKemenyAggregator,
    PickAPermAggregator,
    SchulzeAggregator,
    get_aggregator,
)
from repro.core import (
    CandidateTable,
    Group,
    ProtectedAttribute,
    Ranking,
    RankingSet,
    kendall_tau,
    normalized_kendall_tau,
    spearman_footrule,
)
from repro.exceptions import (
    AggregationError,
    InfeasibleProblemError,
    RankingError,
    ReproError,
    ValidationError,
)
from repro.fair import (
    CorrectFairestPermBaseline,
    FairBordaAggregator,
    FairCopelandAggregator,
    FairKemenyAggregator,
    FairSchulzeAggregator,
    KemenyWeightedBaseline,
    PickFairestPermBaseline,
    UnawareKemenyBaseline,
    get_fair_method,
    make_mr_fair,
)
from repro.cache import (
    CacheStats,
    ConsensusCacheService,
    ResultCache,
)
from repro.kernels import (
    active_backend_name,
    available_backends,
    set_default_backend,
    use_backend,
)
from repro.fairness import (
    FairnessTable,
    FairnessThresholds,
    arp,
    evaluate_mani_rank,
    fpr,
    fpr_by_group,
    irp,
    mani_rank_satisfied,
    parity_scores,
    pd_loss,
    price_of_fairness,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "CandidateTable",
    "ProtectedAttribute",
    "Group",
    "Ranking",
    "RankingSet",
    "kendall_tau",
    "normalized_kendall_tau",
    "spearman_footrule",
    # fairness
    "fpr",
    "fpr_by_group",
    "arp",
    "irp",
    "parity_scores",
    "mani_rank_satisfied",
    "evaluate_mani_rank",
    "pd_loss",
    "price_of_fairness",
    "FairnessThresholds",
    "FairnessTable",
    # aggregation
    "BordaAggregator",
    "CopelandAggregator",
    "SchulzeAggregator",
    "KemenyAggregator",
    "PickAPermAggregator",
    "FootruleAggregator",
    "KemenyDeltaEngine",
    "LocalSearchKemenyAggregator",
    "get_aggregator",
    # fair methods
    "make_mr_fair",
    "FairKemenyAggregator",
    "FairBordaAggregator",
    "FairCopelandAggregator",
    "FairSchulzeAggregator",
    "UnawareKemenyBaseline",
    "KemenyWeightedBaseline",
    "PickFairestPermBaseline",
    "CorrectFairestPermBaseline",
    "get_fair_method",
    # consensus cache + serving
    "CacheStats",
    "ConsensusCacheService",
    "ResultCache",
    # compute-kernel backends
    "available_backends",
    "active_backend_name",
    "set_default_backend",
    "use_backend",
    # exceptions
    "ReproError",
    "ValidationError",
    "RankingError",
    "AggregationError",
    "InfeasibleProblemError",
]


# --- deprecated top-level aliases -------------------------------------------
#
# Kept importable through ``__getattr__`` with a once-per-name
# DeprecationWarning; scheduled for removal two PRs after PR 10 (see
# ``docs/api.md`` for the stability policy).
_DEPRECATED_ALIASES = {
    "cache_key": ("repro.cache", "cache_key"),
    "compute_consensus_payload": ("repro.cache", "compute_consensus_payload"),
}
_warned_aliases: set = set()


def __getattr__(name: str):
    """Resolve deprecated top-level aliases with a one-time warning."""
    target = _DEPRECATED_ALIASES.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module_name, attribute = target
    if name not in _warned_aliases:
        _warned_aliases.add(name)
        import warnings

        warnings.warn(
            f"'repro.{name}' is deprecated and will be removed two PRs after "
            f"PR 10; import it from '{module_name}' (or use the 'repro.api' "
            "facade) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
