"""Command-line interface for the MANI-Rank reproduction.

Usage::

    mani-rank list                         # list the reproducible experiments
    mani-rank run figure4                  # run one experiment at ci scale
    mani-rank run table4 --scale paper     # full-size run
    mani-rank run figure5 --output out.json --quiet
    mani-rank aggregate rankings.csv candidates.csv --method fair-borda --delta 0.1
    mani-rank aggregate rankings.csv candidates.csv --strategy insertion
    mani-rank aggregate rankings.csv candidates.csv --kernel-backend numpy
    mani-rank stream events.jsonl candidates.csv --verify
    mani-rank serve --port 8340 --cache-dir ~/.cache/mani-rank

The ``aggregate`` subcommand runs a fair consensus method on user-supplied CSV
files (formats documented in :mod:`repro.io.csv_io`).  ``--strategy`` appends
a fairness-preserving local-search repair to a seeded method (Fair-Borda,
Fair-Copeland, Fair-Schulze, ...): ``adjacent-swap`` harvests the Kemeny-
improving adjacent transpositions that stay MANI-Rank feasible, ``insertion``
additionally applies fairness-filtered block moves (never recovering less
objective than ``adjacent-swap``), and ``combined`` explores block moves
first and polishes with adjacent swaps — see
:mod:`repro.aggregation.search` and :mod:`repro.fair.local_repair`.

``stream`` replays a JSONL event log (one ``add``/``remove`` per line)
through the incremental :class:`~repro.streaming.engine.StreamingConsensusEngine`
— matrices are patched per event instead of rebuilt — and prints the final
consensus; ``--verify`` additionally recomputes it from scratch and fails if
the two payloads are not bit-identical, and ``--dump-profile`` writes the
materialized profile as a rankings CSV for cross-checking with ``aggregate``.

``serve`` starts the asyncio HTTP front-end over the content-addressed
consensus cache (:mod:`repro.cache`): ``/aggregate`` and ``/fairness`` answer
repeated queries from a memory-over-disk cache, ``/stats`` reports the
hit/miss/eviction counters.  ``--cache-policy`` selects the memory tier's
replacement policy (``lru``, ``cost-aware``, ``clock``) and ``--cache-ttl``
expires entries older than the given seconds.  ``aggregate --cache-dir``
reuses the same disk tier across CLI invocations (same policy/TTL flags).  The serving stack degrades instead of dying:
``--max-inflight``/``--queue-depth`` bound concurrent compute (excess is shed
as 503 + ``Retry-After``), ``--read-timeout`` bounds slow clients (408),
``--drain-timeout`` bounds the graceful drain on SIGTERM, a disk circuit
breaker turns persistent cache-dir faults into memory-only service, and
``/healthz``/``/readyz`` answer liveness/readiness probes.  See
``docs/serving.md``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.aggregation.search import available_strategies
from repro.cache.eviction import available_policies
from repro.experiments import available_experiments, run_experiment
from repro.fair.registry import describe_fair_methods
from repro.io.csv_io import read_candidate_table, read_ranking_set

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``mani-rank`` command."""
    parser = argparse.ArgumentParser(
        prog="mani-rank",
        description="MANI-Rank reproduction: fair consensus ranking experiments",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list reproducible experiments and fair methods")

    run_parser = subparsers.add_parser("run", help="run a paper experiment")
    run_parser.add_argument("experiment", help="experiment id, e.g. figure4 or table1")
    run_parser.add_argument(
        "--scale",
        default="ci",
        choices=("ci", "paper"),
        help="workload size preset (default: ci)",
    )
    run_parser.add_argument("--seed", type=int, default=None, help="override the RNG seed")
    run_parser.add_argument(
        "--output", default=None, help="write the result to this JSON file"
    )
    run_parser.add_argument(
        "--quiet", action="store_true", help="do not print the result table"
    )

    aggregate_parser = subparsers.add_parser(
        "aggregate", help="run a fair consensus method on CSV inputs"
    )
    aggregate_parser.add_argument("rankings_csv", help="ranking set CSV (see repro.io)")
    aggregate_parser.add_argument("candidates_csv", help="candidate table CSV (see repro.io)")
    aggregate_parser.add_argument(
        "--method", default="fair-borda", help="fair method name or paper label (A1-B4)"
    )
    aggregate_parser.add_argument(
        "--delta", type=float, default=0.1, help="MANI-Rank fairness threshold"
    )
    aggregate_parser.add_argument(
        "--strategy",
        default=None,
        choices=available_strategies(),
        help=(
            "post-process a seeded method with a fairness-preserving "
            "local-search repair using this neighbourhood strategy"
        ),
    )
    aggregate_parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "reuse the consensus disk cache at this directory: repeated "
            "queries replay the stored result instead of recomputing"
        ),
    )
    aggregate_parser.add_argument(
        "--cache-policy",
        default="lru",
        choices=available_policies(),
        help=(
            "memory-tier eviction policy for the cache: cost-aware keeps "
            "expensive-to-recompute results longer (default: lru)"
        ),
    )
    aggregate_parser.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        help=(
            "expire cached results older than this many seconds (both "
            "tiers); default: never expire"
        ),
    )
    _add_kernel_backend_flag(aggregate_parser)

    stream_parser = subparsers.add_parser(
        "stream",
        help="replay a JSONL add/remove event log through the streaming engine",
    )
    stream_parser.add_argument(
        "events_jsonl", help="JSONL event log (one add/remove event per line)"
    )
    stream_parser.add_argument("candidates_csv", help="candidate table CSV (see repro.io)")
    stream_parser.add_argument(
        "--method", default="fair-borda", help="fair method name or paper label (A1-B4)"
    )
    stream_parser.add_argument(
        "--delta", type=float, default=0.1, help="MANI-Rank fairness threshold"
    )
    stream_parser.add_argument(
        "--strategy",
        default=None,
        choices=available_strategies(),
        help="fairness-preserving local-search repair strategy",
    )
    stream_parser.add_argument(
        "--verify",
        action="store_true",
        help=(
            "recompute the consensus from a from-scratch rebuild of the final "
            "profile and fail unless it is bit-identical to the streamed result"
        ),
    )
    stream_parser.add_argument(
        "--dump-profile",
        default=None,
        help="write the final materialized profile to this rankings CSV",
    )
    stream_parser.add_argument(
        "--output", default=None, help="write the consensus payload to this JSON file"
    )
    _add_kernel_backend_flag(stream_parser)

    serve_parser = subparsers.add_parser(
        "serve", help="serve cached consensus queries over HTTP (see docs/serving.md)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8340, help="bind port (0 picks a free port)"
    )
    serve_parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist cached results as JSON blobs under this directory",
    )
    serve_parser.add_argument(
        "--memory-capacity",
        type=int,
        default=256,
        help="max results held in the memory tier (default: 256)",
    )
    serve_parser.add_argument(
        "--cache-policy",
        default="lru",
        choices=available_policies(),
        help=(
            "memory-tier eviction policy: cost-aware keeps expensive-to-"
            "recompute results longer, clock approximates LRU with O(1) "
            "touches (default: lru)"
        ),
    )
    serve_parser.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        help=(
            "expire cached results older than this many seconds (both "
            "tiers); default: never expire"
        ),
    )
    serve_parser.add_argument(
        "--max-requests",
        type=int,
        default=None,
        help="shut down cleanly after this many requests (smoke testing)",
    )
    serve_parser.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help=(
            "admission-control budget: concurrent compute requests beyond "
            "this (plus --queue-depth waiters) are shed as 503 (default: 64)"
        ),
    )
    serve_parser.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="requests allowed to wait for an in-flight slot (default: 16)",
    )
    serve_parser.add_argument(
        "--read-timeout",
        type=float,
        default=10.0,
        help=(
            "seconds granted to each read phase (request line, headers, "
            "body) before answering 408 (default: 10)"
        ),
    )
    serve_parser.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        help=(
            "seconds granted to in-flight requests during shutdown before "
            "they are cancelled (default: 5)"
        ),
    )
    _add_kernel_backend_flag(serve_parser)
    return parser


def _add_kernel_backend_flag(subparser: argparse.ArgumentParser) -> None:
    """Add the shared ``--kernel-backend`` selection flag to a subcommand."""
    from repro.kernels import BACKEND_ENV_VAR, available_backends

    subparser.add_argument(
        "--kernel-backend",
        default=None,
        metavar="NAME",
        help=(
            "compute-kernel backend for the hot inner loops "
            f"(available here: {', '.join(available_backends())}; also "
            f"selectable via ${BACKEND_ENV_VAR}; default: numpy)"
        ),
    )


def _install_kernel_backend(args: argparse.Namespace) -> int:
    """Install the requested kernel backend process-wide; 0 on success.

    Unknown or unavailable names print the registry's explanation (which
    includes *why* a backend is unavailable, e.g. numba not importable)
    instead of a bare traceback.
    """
    name = getattr(args, "kernel_backend", None)
    if name is None:
        return 0
    from repro.exceptions import KernelError
    from repro.kernels import set_default_backend

    try:
        set_default_backend(name)
    except KernelError as error:
        print(f"mani-rank: {error}", file=sys.stderr)
        return 2
    return 0


def _command_list() -> int:
    print("Experiments (mani-rank run <id>):")
    for name, description in available_experiments().items():
        print(f"  {name:<10} {description}")
    print()
    print("Fair consensus methods (mani-rank aggregate --method <name>):")
    for name, label in describe_fair_methods().items():
        print(f"  {name:<22} {label}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    kwargs: dict[str, object] = {"scale": args.scale}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    result = run_experiment(args.experiment, **kwargs)
    if not args.quiet:
        print(result.to_text())
    if args.output:
        result.save(args.output)
        print(f"\nresult written to {args.output}")
    return 0


def _command_aggregate(args: argparse.Namespace) -> int:
    from repro.cache.service import ConsensusCacheService, compute_consensus_payload
    from repro.cache.store import ResultCache
    from repro.core.candidates import CandidateTable

    table = read_candidate_table(args.candidates_csv)
    rankings = read_ranking_set(args.rankings_csv, table)
    if args.cache_dir is not None:
        service = ConsensusCacheService(
            ResultCache(
                directory=args.cache_dir,
                policy=args.cache_policy,
                ttl=args.cache_ttl,
            )
        )
        response = service.aggregate(
            rankings, table, method=args.method, strategy=args.strategy, delta=args.delta
        )
        payload = response["result"]
    else:
        response = None
        payload = compute_consensus_payload(
            rankings, table, method=args.method, strategy=args.strategy, delta=args.delta
        )
    print(f"method: {payload['method_label']}   delta: {args.delta}")
    if response is not None:
        state = "hit" if response["cached"] else "miss"
        print(f"cache: {state} ({response['key'][:12]}, {args.cache_dir})")
    if "repair_strategy" in payload["diagnostics"]:
        print(f"local repair: {payload['diagnostics']['repair_strategy']}")
    print("consensus (best to worst):")
    print("  " + ", ".join(payload["consensus"]["names"]))
    print(f"PD loss: {payload['pd_loss']:.4f}")
    for entity, score in payload["parity"].items():
        label = "IRP" if entity == CandidateTable.INTERSECTION else f"ARP {entity}"
        print(f"{label}: {score:.4f}")
    return 0


def _command_stream(args: argparse.Namespace) -> int:
    from repro.core.candidates import CandidateTable
    from repro.io.serialization import dump_json
    from repro.streaming.engine import StreamingConsensusEngine
    from repro.streaming.replay import apply_events, read_events

    table = read_candidate_table(args.candidates_csv)
    events = read_events(args.events_jsonl, table)
    engine = StreamingConsensusEngine(
        table, method=args.method, strategy=args.strategy, delta=args.delta
    )
    apply_events(engine, events)
    payload = engine.consensus()
    n_adds = sum(1 for event in events if event.op == "add")
    fingerprint = engine.profile_fingerprint or ""
    print(
        f"replayed {len(events)} events ({n_adds} adds, "
        f"{len(events) - n_adds} removes)"
    )
    print(
        f"profile: {engine.n_rankings} rankings, version "
        f"{engine.profile_version}, fingerprint {fingerprint[:12]}"
    )
    print(f"method: {payload['method_label']}   delta: {args.delta}")
    print("consensus (best to worst):")
    print("  " + ", ".join(payload["consensus"]["names"]))
    print(f"PD loss: {payload['pd_loss']:.4f}")
    for entity, score in payload["parity"].items():
        label = "IRP" if entity == CandidateTable.INTERSECTION else f"ARP {entity}"
        print(f"{label}: {score:.4f}")
    if args.verify:
        reference = engine.rebuild_reference()
        if payload != reference:
            print(
                "verify: FAILED — streamed consensus differs from the "
                "from-scratch rebuild reference",
                file=sys.stderr,
            )
            return 1
        print("verify: bit-identical to the from-scratch rebuild reference")
    if args.dump_profile:
        from repro.io.csv_io import write_ranking_set

        write_ranking_set(engine.rankings, table, args.dump_profile)
        print(f"profile written to {args.dump_profile}")
    if args.output:
        dump_json(payload, args.output)
        print(f"consensus payload written to {args.output}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.cache.http import run_server
    from repro.cache.service import ConsensusCacheService
    from repro.cache.store import ResultCache

    cache = ResultCache(
        memory_capacity=args.memory_capacity,
        directory=args.cache_dir,
        policy=args.cache_policy,
        ttl=args.cache_ttl,
    )

    def _announce(address: tuple[str, int]) -> None:
        host, port = address
        print(f"serving on http://{host}:{port}", flush=True)

    return run_server(
        ConsensusCacheService(cache),
        host=args.host,
        port=args.port,
        max_requests=args.max_requests,
        on_ready=_announce,
        max_inflight=args.max_inflight,
        queue_depth=args.queue_depth,
        read_timeout=args.read_timeout,
        drain_timeout=args.drain_timeout,
    )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``mani-rank`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "aggregate":
        return _install_kernel_backend(args) or _command_aggregate(args)
    if args.command == "stream":
        return _install_kernel_backend(args) or _command_stream(args)
    if args.command == "serve":
        return _install_kernel_backend(args) or _command_serve(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
