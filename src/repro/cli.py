"""Command-line interface for the MANI-Rank reproduction.

Usage::

    mani-rank list                         # list the reproducible experiments
    mani-rank run figure4                  # run one experiment at ci scale
    mani-rank run table4 --scale paper     # full-size run
    mani-rank run figure5 --output out.json --quiet
    mani-rank aggregate rankings.csv candidates.csv --method fair-borda --delta 0.1
    mani-rank aggregate rankings.csv candidates.csv --strategy insertion

The ``aggregate`` subcommand runs a fair consensus method on user-supplied CSV
files (formats documented in :mod:`repro.io.csv_io`).  ``--strategy`` appends
a fairness-preserving local-search repair to a seeded method (Fair-Borda,
Fair-Copeland, Fair-Schulze, ...): ``adjacent-swap`` harvests the Kemeny-
improving adjacent transpositions that stay MANI-Rank feasible, ``insertion``
additionally applies fairness-filtered block moves (never recovering less
objective than ``adjacent-swap``), and ``combined`` explores block moves
first and polishes with adjacent swaps — see
:mod:`repro.aggregation.search` and :mod:`repro.fair.local_repair`.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.aggregation.search import available_strategies
from repro.exceptions import AggregationError
from repro.experiments import available_experiments, run_experiment
from repro.fair.registry import available_fair_methods, get_fair_method
from repro.fair.seeded import SeededFairAggregator
from repro.fairness.parity import parity_scores
from repro.fairness.pd_loss import pd_loss
from repro.io.csv_io import read_candidate_table, read_ranking_set

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``mani-rank`` command."""
    parser = argparse.ArgumentParser(
        prog="mani-rank",
        description="MANI-Rank reproduction: fair consensus ranking experiments",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list reproducible experiments and fair methods")

    run_parser = subparsers.add_parser("run", help="run a paper experiment")
    run_parser.add_argument("experiment", help="experiment id, e.g. figure4 or table1")
    run_parser.add_argument(
        "--scale",
        default="ci",
        choices=("ci", "paper"),
        help="workload size preset (default: ci)",
    )
    run_parser.add_argument("--seed", type=int, default=None, help="override the RNG seed")
    run_parser.add_argument(
        "--output", default=None, help="write the result to this JSON file"
    )
    run_parser.add_argument(
        "--quiet", action="store_true", help="do not print the result table"
    )

    aggregate_parser = subparsers.add_parser(
        "aggregate", help="run a fair consensus method on CSV inputs"
    )
    aggregate_parser.add_argument("rankings_csv", help="ranking set CSV (see repro.io)")
    aggregate_parser.add_argument("candidates_csv", help="candidate table CSV (see repro.io)")
    aggregate_parser.add_argument(
        "--method", default="fair-borda", help="fair method name or paper label (A1-B4)"
    )
    aggregate_parser.add_argument(
        "--delta", type=float, default=0.1, help="MANI-Rank fairness threshold"
    )
    aggregate_parser.add_argument(
        "--strategy",
        default=None,
        choices=available_strategies(),
        help=(
            "post-process a seeded method with a fairness-preserving "
            "local-search repair using this neighbourhood strategy"
        ),
    )
    return parser


def _command_list() -> int:
    print("Experiments (mani-rank run <id>):")
    for name, description in available_experiments().items():
        print(f"  {name:<10} {description}")
    print()
    print("Fair consensus methods (mani-rank aggregate --method <name>):")
    for name in available_fair_methods():
        print(f"  {name}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    kwargs: dict[str, object] = {"scale": args.scale}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    result = run_experiment(args.experiment, **kwargs)
    if not args.quiet:
        print(result.to_text())
    if args.output:
        result.save(args.output)
        print(f"\nresult written to {args.output}")
    return 0


def _command_aggregate(args: argparse.Namespace) -> int:
    table = read_candidate_table(args.candidates_csv)
    rankings = read_ranking_set(args.rankings_csv, table)
    method = get_fair_method(args.method)
    if args.strategy is not None:
        if not isinstance(method, SeededFairAggregator):
            raise AggregationError(
                f"--strategy requires a seeded method (Fair-Borda, "
                f"Fair-Copeland, ...); {method.name!r} does not run the "
                "local-search repair"
            )
        method = method.with_local_repair(args.strategy)
    result = method.aggregate_with_diagnostics(rankings, table, args.delta)
    consensus = result.ranking
    print(f"method: {method.name}   delta: {args.delta}")
    if "repair_strategy" in result.diagnostics:
        print(f"local repair: {result.diagnostics['repair_strategy']}")
    print("consensus (best to worst):")
    print("  " + ", ".join(table.name_of(candidate) for candidate in consensus))
    print(f"PD loss: {pd_loss(rankings, consensus):.4f}")
    for entity, score in parity_scores(consensus, table).items():
        label = "IRP" if entity == table.INTERSECTION else f"ARP {entity}"
        print(f"{label}: {score:.4f}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``mani-rank`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "aggregate":
        return _command_aggregate(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
