"""Benchmark: regenerate Figure 6 (runtime vs number of base rankings)."""

from __future__ import annotations


from repro.experiments import figure6


def test_figure6_scalability_rankings(benchmark, bench_scale, save_result):
    result = benchmark.pedantic(
        figure6.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_result(result)

    counts = sorted({record["n_rankings"] for record in result.records})
    labels = {record["label"] for record in result.records}
    assert len(counts) >= 2

    # Every (method, count) pair produced a measurement.
    for count in counts:
        assert {r["label"] for r in result.filtered(n_rankings=count)} == labels

    # Paper shape: Fair-Borda sits in the fastest tier — on the largest
    # workload it is not slower than the slowest method by definition, and it
    # beats the seeded pairwise methods (Fair-Schulze / Fair-Copeland).
    largest = max(counts)
    runtimes = {r["label"]: r["runtime_s"] for r in result.filtered(n_rankings=largest)}
    if "A3" in runtimes:
        pairwise = [runtimes[label] for label in ("A2", "A4") if label in runtimes]
        if pairwise:
            assert runtimes["A3"] <= max(pairwise) + 0.05

    # Runtime grows (weakly) with the number of rankings for every method.
    for label in labels:
        series = [
            record["runtime_s"]
            for record in sorted(
                result.filtered(label=label), key=lambda r: r["n_rankings"]
            )
        ]
        assert series[-1] >= series[0] * 0.5  # allow noise, forbid wild inversions
