"""Shared configuration for the paper-reproduction benchmark suite.

Every benchmark runs one experiment module (one paper table or figure) at the
``ci`` scale through ``pytest-benchmark`` and writes the regenerated
rows/series to ``benchmarks/results/`` as both JSON and readable text, so the
numbers behind each figure can be inspected after a run.

Set the environment variable ``MANI_RANK_BENCH_SCALE=paper`` to run the
full-size configurations instead (slow without a commercial ILP solver; see
DESIGN.md and EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.reporting import ExperimentResult

RESULTS_DIRECTORY = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Scale preset used by every benchmark (``ci`` unless overridden)."""
    return os.environ.get("MANI_RANK_BENCH_SCALE", "ci")


@pytest.fixture(scope="session")
def results_directory() -> Path:
    """Directory collecting the regenerated tables/figures."""
    RESULTS_DIRECTORY.mkdir(exist_ok=True)
    return RESULTS_DIRECTORY


@pytest.fixture(scope="session")
def perf_output_directory() -> Path | None:
    """Redirect target for the ``perf_*`` benchmarks' persisted payloads.

    ``None`` (the default) keeps the standard behaviour: full-scale runs
    write the committed baselines under ``benchmarks/results/`` and smoke
    runs assert without persisting.  Setting ``MANI_RANK_PERF_RESULTS_DIR``
    makes every perf run — smoke included — persist to that directory
    instead, which is how the CI perf-smoke job captures fresh results as an
    uploadable artifact and compares them against the committed baseline
    (``benchmarks/perf_summary.py``) without ever overwriting it.
    """
    override = os.environ.get("MANI_RANK_PERF_RESULTS_DIR")
    if not override:
        return None
    path = Path(override)
    path.mkdir(parents=True, exist_ok=True)
    return path


@pytest.fixture
def save_result(results_directory):
    """Persist an experiment result as JSON + text next to the benchmarks."""

    def _save(result: ExperimentResult) -> None:
        result.save(results_directory / f"{result.experiment}.json")
        text_path = results_directory / f"{result.experiment}.txt"
        text_path.write_text(result.to_text() + "\n")

    return _save
