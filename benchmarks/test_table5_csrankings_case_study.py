"""Benchmark: regenerate Table V (CSRankings 20-year consensus case study)."""

from __future__ import annotations

import numpy as np

from repro.experiments import table5


def test_table5_csrankings_case_study(benchmark, bench_scale, save_result):
    result = benchmark.pedantic(
        table5.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_result(result)
    delta = result.parameters["delta"]

    yearly = [r for r in result.records if r["ranking"].isdigit()]
    kemeny = next(r for r in result.records if r["ranking"] == "Kemeny")
    fair = [r for r in result.records if r["ranking"].startswith("Fair-")]
    assert len(yearly) >= 5
    assert fair

    # Paper shape: yearly rankings favour Northeast over South and Private
    # over Public; the Kemeny consensus keeps (or amplifies) that bias.
    for record in yearly:
        assert record["Location=Northeast"] > record["Location=South"]
    mean_location_arp = float(np.mean([record["Location"] for record in yearly]))
    assert mean_location_arp > 0.2
    assert kemeny["Location"] >= mean_location_arp - 0.1
    assert kemeny["Location=Northeast"] > kemeny["Location=South"]

    # The fair methods remove the bias.
    for record in fair:
        assert record["Location"] <= delta + 1e-6
        assert record["Type"] <= delta + 1e-6
        assert record["IRP"] <= delta + 1e-6
