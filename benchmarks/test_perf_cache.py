"""Load-test benchmark of the content-addressed consensus cache.

Replays Mallows-grid consensus queries through
:class:`repro.cache.service.ConsensusCacheService` under a Zipf popularity
distribution — the skewed-reuse workload the caching literature measures
hit-rate against ("A unified approach to the performance analysis of caching
systems", Martina et al.) — over a memory-LRU-tier-over-disk
:class:`~repro.cache.store.ResultCache` sized *below* the distinct-query
count, so the run exercises evictions and disk-tier promotions, not just
memory hits (the explicit eviction accounting motivated by "Compact CAR").

Results are written to ``benchmarks/results/perf_cache.{json,txt}``: per-query
cold-compute seconds, replay latency percentiles (overall / warm-hit / miss),
the cache counters, and the acceptance speedup.  Set
``MANI_RANK_PERF_SCALE=smoke`` for the reduced CI configuration (asserts
without persisting unless ``MANI_RANK_PERF_RESULTS_DIR`` redirects output).

Hard assertions guarding the tentpole:

* every replayed response is **bit-identical** to the cold computation of the
  same query — across memory hits, disk promotions, and recomputed misses;
* at the acceptance configuration (n = 200 candidates, m = 500 rankings at
  full scale) the warm-cache aggregate is >= 10x faster than recomputing
  (>= 5x at smoke scale; ``MANI_RANK_PERF_MIN_SPEEDUP`` overrides for noisy
  shared runners);
* the replay's hit rate clears the scale's floor, and the counters reconcile
  exactly with the replay (requests, hits + misses, per-response flags).
"""

from __future__ import annotations

import json
import os
import time
import timeit

import numpy as np

from repro.cache.service import ConsensusCacheService, compute_consensus_payload
from repro.cache.store import ResultCache
from repro.datagen.attributes import scalability_table
from repro.datagen.fair_modal import calibrated_modal_ranking
from repro.datagen.mallows import sample_mallows
from repro.experiments.reporting import render_table

_SCALE_PARAMETERS = {
    "full": {
        "profiles": ((200, 500, 0.3), (200, 500, 1.0), (100, 200, 0.3)),
        "methods": ("fair-borda", "fair-borda-insertion", "fair-copeland"),
        "deltas": (0.05, 0.1),
        "n_requests": 300,
        "memory_capacity": 8,
        "zipf_exponent": 1.1,
        "min_speedup": 10.0,
        "min_hit_rate": 0.55,
    },
    "smoke": {
        "profiles": ((60, 100, 0.3), (60, 100, 1.0)),
        "methods": ("fair-borda", "fair-borda-insertion"),
        "deltas": (0.1,),
        "n_requests": 80,
        "memory_capacity": 2,
        "zipf_exponent": 1.1,
        "min_speedup": 5.0,
        "min_hit_rate": 0.5,
    },
}

#: Modal-ranking parity targets of the synthetic profiles (as in the other
#: perf benchmarks): mildly unfair seeds so Make-MR-Fair has real work to do.
_MODAL_TARGETS = {"Race": 0.3, "Gender": 0.5}


def _best_of(function, repeat: int = 5) -> float:
    """Minimum wall-clock seconds over ``repeat`` single runs."""
    return min(timeit.repeat(function, number=1, repeat=repeat))


def _percentiles(latencies_s: list[float]) -> dict[str, float]:
    values = np.asarray(latencies_s, dtype=float) * 1000.0
    return {
        "p50_ms": float(np.percentile(values, 50)),
        "p90_ms": float(np.percentile(values, 90)),
        "p99_ms": float(np.percentile(values, 99)),
        "mean_ms": float(values.mean()),
    }


def test_perf_cache(results_directory, perf_output_directory, tmp_path):
    scale = os.environ.get("MANI_RANK_PERF_SCALE", "full")
    parameters = _SCALE_PARAMETERS[scale]

    # ------------------------------------------------------------------
    # build the Mallows-grid query universe
    # ------------------------------------------------------------------
    datasets = {}
    for n_candidates, n_rankings, theta in parameters["profiles"]:
        table = scalability_table(n_candidates, rng=7)
        modal = calibrated_modal_ranking(table, _MODAL_TARGETS, rng=7)
        rankings = sample_mallows(modal, theta, n_rankings, rng=11)
        rankings.precedence_matrix()  # warm the shared cached kernel
        datasets[(n_candidates, n_rankings, theta)] = (rankings, table)

    queries = [
        {
            "profile": profile,
            "method": method,
            "strategy": None,
            "delta": delta,
        }
        for profile in parameters["profiles"]
        for method in parameters["methods"]
        for delta in parameters["deltas"]
    ]

    def run_cold(query) -> dict:
        rankings, table = datasets[query["profile"]]
        return compute_consensus_payload(
            rankings,
            table,
            method=query["method"],
            strategy=query["strategy"],
            delta=query["delta"],
        )

    # Cold ground truth (and recompute cost) for every distinct query.
    query_rows = []
    cold_payloads = []
    for query in queries:
        start = time.perf_counter()
        cold_payloads.append(run_cold(query))
        n_candidates, n_rankings, theta = query["profile"]
        query_rows.append(
            {
                "n_candidates": n_candidates,
                "n_rankings": n_rankings,
                "theta": theta,
                "method": query["method"],
                "delta": query["delta"],
                "cold_s": time.perf_counter() - start,
                "requests": 0,
                "hits": 0,
            }
        )

    # ------------------------------------------------------------------
    # Zipf-popularity replay through the two-tier cache
    # ------------------------------------------------------------------
    rng = np.random.default_rng(2022)
    ranks = np.arange(1, len(queries) + 1, dtype=float)
    popularity = ranks ** -parameters["zipf_exponent"]
    popularity /= popularity.sum()
    # Assign popularity ranks to queries at random so heavy hitters are not
    # systematically the first-constructed (cheapest) configurations.
    rank_to_query = rng.permutation(len(queries))
    request_stream = rank_to_query[
        rng.choice(len(queries), size=parameters["n_requests"], p=popularity)
    ]

    service = ConsensusCacheService(
        ResultCache(
            memory_capacity=parameters["memory_capacity"],
            directory=tmp_path / "cache",
        )
    )
    latencies, warm_latencies, miss_latencies = [], [], []
    for query_index in request_stream:
        query = queries[query_index]
        rankings, table = datasets[query["profile"]]
        start = time.perf_counter()
        response = service.aggregate(
            rankings,
            table,
            method=query["method"],
            strategy=query["strategy"],
            delta=query["delta"],
        )
        elapsed = time.perf_counter() - start
        latencies.append(elapsed)
        (warm_latencies if response["cached"] else miss_latencies).append(elapsed)
        query_rows[query_index]["requests"] += 1
        query_rows[query_index]["hits"] += int(response["cached"])
        # Bit-identity: every replayed result — memory hit, disk promotion,
        # or recomputed miss — equals the cold computation exactly.
        assert response["result"] == cold_payloads[query_index]

    stats = service.cache.stats()
    distinct_served = sum(1 for row in query_rows if row["requests"])
    assert stats.requests == parameters["n_requests"]
    assert stats.hits == len(warm_latencies)
    assert stats.misses == len(miss_latencies) == distinct_served
    hit_rate = stats.hit_rate
    assert hit_rate >= parameters["min_hit_rate"], (
        f"replay hit rate {hit_rate:.2f} below the "
        f"{parameters['min_hit_rate']:.2f} floor (K={len(queries)} distinct, "
        f"Q={parameters['n_requests']} requests)"
    )
    # The memory tier is sized below the distinct-query count, so the replay
    # must have exercised the eviction path.
    assert stats.evictions > 0

    # ------------------------------------------------------------------
    # acceptance gate: warm-cache aggregate vs recompute
    # ------------------------------------------------------------------
    acceptance_index = max(
        range(len(queries)),
        key=lambda i: (
            queries[i]["profile"][0] * queries[i]["profile"][1],
            queries[i]["method"] == "fair-borda",
        ),
    )
    acceptance = queries[acceptance_index]
    rankings, table = datasets[acceptance["profile"]]

    def run_warm():
        return service.aggregate(
            rankings,
            table,
            method=acceptance["method"],
            strategy=acceptance["strategy"],
            delta=acceptance["delta"],
        )

    warm_response = run_warm()
    assert warm_response["cached"] is True
    assert warm_response["result"] == cold_payloads[acceptance_index]
    warm_s = _best_of(run_warm)
    recompute_s = _best_of(lambda: run_cold(acceptance), repeat=3)
    speedup = recompute_s / warm_s
    min_speedup = float(
        os.environ.get("MANI_RANK_PERF_MIN_SPEEDUP", parameters["min_speedup"])
    )
    assert speedup >= min_speedup, (
        f"warm-cache aggregate only {speedup:.1f}x faster than recompute at "
        f"n={acceptance['profile'][0]}, m={acceptance['profile'][1]} "
        f"(required {min_speedup}x)"
    )

    # ------------------------------------------------------------------
    # persist the baseline — full scale only (smoke never overwrites it);
    # MANI_RANK_PERF_RESULTS_DIR redirects persistence to a scratch directory
    # ------------------------------------------------------------------
    if perf_output_directory is not None:
        results_directory = perf_output_directory
    elif scale != "full":
        return
    payload = {
        "benchmark": "perf_cache",
        "scale": scale,
        "parameters": {
            "profiles": [list(profile) for profile in parameters["profiles"]],
            "methods": list(parameters["methods"]),
            "deltas": list(parameters["deltas"]),
            "n_requests": parameters["n_requests"],
            "memory_capacity": parameters["memory_capacity"],
            "zipf_exponent": parameters["zipf_exponent"],
            "modal_targets": _MODAL_TARGETS,
        },
        "distinct_queries": len(queries),
        "hit_rate": hit_rate,
        "cache_stats": stats.to_dict(),
        "latency": {
            "overall": _percentiles(latencies),
            "warm_hits": _percentiles(warm_latencies),
            "cold_misses": _percentiles(miss_latencies),
        },
        "acceptance": {
            "n_candidates": acceptance["profile"][0],
            "n_rankings": acceptance["profile"][1],
            "theta": acceptance["profile"][2],
            "method": acceptance["method"],
            "delta": acceptance["delta"],
            "recompute_s": recompute_s,
            "warm_s": warm_s,
            "speedup": speedup,
        },
        "queries": query_rows,
    }
    (results_directory / "perf_cache.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    latency_rows = [
        {"requests": label, **values}
        for label, values in (
            ("overall", payload["latency"]["overall"]),
            ("warm_hits", payload["latency"]["warm_hits"]),
            ("cold_misses", payload["latency"]["cold_misses"]),
        )
    ]
    text = "\n\n".join(
        [
            f"perf_cache (scale={scale})",
            f"Zipf replay: {parameters['n_requests']} requests over "
            f"{len(queries)} distinct queries, hit rate {hit_rate:.3f}, "
            f"evictions {stats.evictions}, disk hits {stats.disk_hits}",
            "Warm-cache acceptance: "
            f"n={acceptance['profile'][0]}, m={acceptance['profile'][1]}, "
            f"method={acceptance['method']}: recompute {recompute_s:.4f}s vs "
            f"warm {warm_s * 1000:.3f}ms ({speedup:.1f}x)",
            "Latency percentiles\n" + render_table(latency_rows, digits=3),
            "Distinct queries\n" + render_table(query_rows, digits=4),
        ]
    )
    (results_directory / "perf_cache.txt").write_text(text + "\n")
