"""Unit tests for the perf baseline-vs-current summary script.

``perf_summary.py`` is run by the CI perf-smoke job (appending its output to
``$GITHUB_STEP_SUMMARY``); these tests pin its contract on synthetic payload
directories so workflow edits cannot silently break the report.
"""

from __future__ import annotations

import json

import perf_summary


def _write_payload(directory, name, scale, sections):
    payload = {"benchmark": name, "scale": scale, "parameters": {}}
    payload.update(sections)
    (directory / f"{name}.json").write_text(json.dumps(payload))


def test_render_summary_pairs_rows_by_configuration(tmp_path):
    baseline = tmp_path / "baseline"
    current = tmp_path / "current"
    baseline.mkdir()
    current.mkdir()
    _write_payload(
        baseline,
        "perf_example",
        "full",
        {
            "search": [
                {"n_candidates": 10, "engine_s": 0.1, "reference_s": 1.0, "speedup": 10.0},
                # Untimed reference at the largest configuration: skipped.
                {"n_candidates": 99, "engine_s": 0.5, "reference_s": None, "speedup": None},
            ]
        },
    )
    _write_payload(
        current,
        "perf_example",
        "smoke",
        {
            "search": [
                {"n_candidates": 10, "engine_s": 0.2, "reference_s": 0.8, "speedup": 4.0},
                {"n_candidates": 5, "engine_s": 0.1, "reference_s": 0.3, "speedup": 3.0},
            ]
        },
    )
    output = perf_summary.render_summary(baseline, current)
    assert "| perf_example | search | n_candidates=10 | 10.0x | 4.0x |" in output
    assert "| perf_example | search | n_candidates=5 | — | 3.0x |" in output
    assert "n_candidates=99" not in output
    assert "scale: full" in output and "scale: smoke" in output


def test_configuration_labels_keep_float_axes_and_drop_outputs(tmp_path):
    baseline = tmp_path / "baseline"
    current = tmp_path / "current"
    baseline.mkdir()
    current.mkdir()
    # Two sweep points differing only in a float axis (theta) with identical
    # counter outputs must stay distinct rows; n_swaps/engine_s must not leak
    # into the configuration key (they would break baseline/current pairing).
    rows = [
        {"n_candidates": 10, "theta": 0.2, "n_swaps": 5, "engine_s": 0.1, "speedup": 4.0},
        {"n_candidates": 10, "theta": 0.6, "n_swaps": 5, "engine_s": 0.1, "speedup": 8.0},
    ]
    _write_payload(baseline, "perf_sweep", "full", {"rows": rows})
    _write_payload(
        current,
        "perf_sweep",
        "smoke",
        {
            "rows": [
                {"n_candidates": 10, "theta": 0.2, "n_swaps": 9, "engine_s": 0.4, "speedup": 2.0}
            ]
        },
    )
    output = perf_summary.render_summary(baseline, current)
    assert "| perf_sweep | rows | n_candidates=10, theta=0.2 | 4.0x | 2.0x |" in output
    assert "| perf_sweep | rows | n_candidates=10, theta=0.6 | 8.0x | — |" in output
    assert "n_swaps" not in output
    assert "engine_s" not in output


def test_render_summary_reports_missing_current_benchmarks(tmp_path):
    baseline = tmp_path / "baseline"
    current = tmp_path / "current"
    baseline.mkdir()
    current.mkdir()
    _write_payload(
        baseline,
        "perf_only_in_baseline",
        "full",
        {"rows": [{"case": "a", "speedup": 2.0}]},
    )
    output = perf_summary.render_summary(baseline, current)
    assert "perf_only_in_baseline" in output
    assert "no current run" in output


def test_render_summary_handles_empty_directories(tmp_path):
    output = perf_summary.render_summary(tmp_path, tmp_path)
    assert "No perf payloads" in output


def test_main_writes_to_stdout(tmp_path, capsys):
    assert perf_summary.main(["--baseline", str(tmp_path), "--current", str(tmp_path)]) == 0
    assert "Perf benchmarks" in capsys.readouterr().out
