"""Benchmark: regenerate Table I (Mallows dataset fairness profiles)."""

from __future__ import annotations

from repro.experiments import table1


def test_table1_mallows_datasets(benchmark, bench_scale, save_result):
    result = benchmark.pedantic(
        table1.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_result(result)

    by_name = {record["dataset"]: record for record in result.records}
    assert set(by_name) == {"Low-Fair", "Medium-Fair", "High-Fair"}
    # Paper shape: the three profiles are strictly ordered by unfairness.
    assert by_name["Low-Fair"]["ARP Gender"] > by_name["Medium-Fair"]["ARP Gender"]
    assert by_name["Medium-Fair"]["ARP Gender"] > by_name["High-Fair"]["ARP Gender"]
    assert by_name["Low-Fair"]["IRP"] > by_name["Medium-Fair"]["IRP"] > by_name["High-Fair"]["IRP"]
    # Achieved values stay within a reasonable distance of the paper targets.
    # The attribute targets are calibrated directly; the IRP is emergent (see
    # DESIGN.md) so it gets a wider band, especially on the small ci universe.
    for record in result.records:
        assert abs(record["ARP Gender"] - record["ARP Gender (paper)"]) < 0.15
        assert abs(record["ARP Race"] - record["ARP Race (paper)"]) < 0.15
        assert abs(record["IRP"] - record["IRP (paper)"]) < 0.35
