"""Benchmark: regenerate Table III (Fair-Borda runtime vs |X| at Δ = 0.33)."""

from __future__ import annotations

from repro.experiments import table3


def test_table3_fairborda_candidate_scale(benchmark, bench_scale, save_result):
    result = benchmark.pedantic(
        table3.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_result(result)

    rows = sorted(result.records, key=lambda record: record["n_candidates"])
    assert len(rows) >= 2
    assert all(record["runtime_s"] > 0 for record in rows)

    # Paper shape (Table III): runtime increases with the candidate count and
    # grows faster than linearly once the Make-MR-Fair correction dominates.
    runtimes = [record["runtime_s"] for record in rows]
    assert runtimes[-1] > runtimes[0]
