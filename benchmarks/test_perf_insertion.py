"""Performance benchmark of the insertion (block-move) local-search strategy.

Times the engine-backed insertion search
(:func:`repro.aggregation.search.local_search` with ``strategy="insertion"``,
i.e. :class:`~repro.aggregation.search.InsertionStrategy` on the
:class:`~repro.aggregation.incremental.KemenyDeltaEngine`) against the
retained from-scratch ground truth
(:func:`repro.aggregation.search.insertion_local_search_reference`), and the
fairness-constrained insertion repair
(:func:`repro.fair.local_repair.fair_insertion_kemenization`) against *its*
from-scratch reference, on the synthetic-experiment regimes.

Results are written to ``benchmarks/results/perf_insertion.{json,txt}``,
extending the PR-2 hot-path / PR-3 datagen / PR-4 local-search perf
trajectory.  Set ``MANI_RANK_PERF_SCALE=smoke`` for the reduced CI
configuration (asserts without persisting unless
``MANI_RANK_PERF_RESULTS_DIR`` redirects the output).

Each unconstrained configuration is timed from two seeds, as in
``test_perf_local_search``: the Borda consensus (near locally optimal) and
the *cold* reversed-Borda seed (an adversarially bad upstream ranking, the
acceptance workload).  Hard assertions guarding the tentpole:

* the engine-backed insertion search returns the **identical** ranking to
  the from-scratch reference from both seeds;
* its final objective is never worse than the adjacent-swap strategy's on
  the same seed (the dominance guarantee of the variable-neighbourhood
  schedule);
* at the acceptance configuration (n = 200 candidates, m = 500 rankings at
  full scale) the cold-seed insertion search is >= 5x faster than the
  reference (>= 2x at smoke scale, where fixed per-call overheads weigh
  more);
* the fairness-constrained insertion repair matches its reference's final
  ranking and move counts, and is >= 5x faster at its largest configuration
  (the reference rescoring is O(n^2) Kemeny evaluations per pass, so it is
  benchmarked on smaller grids).
"""

from __future__ import annotations

import json
import os
import timeit

import numpy as np

from repro.aggregation.borda import BordaAggregator
from repro.aggregation.search import (
    insertion_local_search_reference,
    local_search,
)
from repro.core.distances import kemeny_objective
from repro.core.ranking import Ranking
from repro.datagen.attributes import scalability_table
from repro.datagen.fair_modal import calibrated_modal_ranking
from repro.datagen.mallows import sample_mallows
from repro.experiments.reporting import render_table
from repro.fair.local_repair import (
    fair_insertion_kemenization,
    fair_insertion_kemenization_reference,
)
from repro.fair.make_mr_fair import make_mr_fair

_SCALE_PARAMETERS = {
    "full": {
        "configurations": ((100, 200), (200, 500)),
        "fair_configurations": ((30, 60), (50, 100)),
        "theta": 0.3,
        "min_speedup": 5.0,
        "fair_min_speedup": 5.0,
    },
    "smoke": {
        "configurations": ((40, 60), (60, 100)),
        "fair_configurations": ((15, 25), (20, 40)),
        "theta": 0.3,
        "min_speedup": 2.0,
        "fair_min_speedup": 2.0,
    },
}

#: Generous pass budget so both implementations always run to convergence.
_MAX_PASSES = 1000

#: Modal-ranking parity targets and threshold of the fair-repair benchmark.
_REPAIR_TARGETS = {"Race": 0.3, "Gender": 0.5}
_REPAIR_DELTA = 0.05


def _best_of(function, repeat: int = 5) -> float:
    """Minimum wall-clock seconds over ``repeat`` single runs."""
    return min(timeit.repeat(function, number=1, repeat=repeat))


def test_perf_insertion(results_directory, perf_output_directory):
    scale = os.environ.get("MANI_RANK_PERF_SCALE", "full")
    parameters = _SCALE_PARAMETERS[scale]
    theta = parameters["theta"]

    # ------------------------------------------------------------------
    # insertion search: engine strategy vs from-scratch reference
    # ------------------------------------------------------------------
    search_rows = []
    for n_candidates, n_rankings in parameters["configurations"]:
        modal = Ranking(
            np.random.default_rng(n_candidates).permutation(n_candidates)
        )
        rankings = sample_mallows(modal, theta, n_rankings, rng=17)
        rankings.precedence_matrix()  # warm the shared cached kernel
        borda = BordaAggregator().aggregate(rankings)
        cold = Ranking(borda.order[::-1].copy())

        for seed_label, seed in (("borda", borda), ("cold", cold)):
            engine_ranking = local_search(
                rankings, seed, strategy="insertion", max_passes=_MAX_PASSES
            )
            reference_ranking = insertion_local_search_reference(
                rankings, seed, max_passes=_MAX_PASSES
            )
            assert engine_ranking == reference_ranking
            # Dominance: never worse than the adjacent-swap strategy.
            adjacent_ranking = local_search(
                rankings, seed, strategy="adjacent-swap", max_passes=_MAX_PASSES
            )
            assert kemeny_objective(engine_ranking, rankings) <= kemeny_objective(
                adjacent_ranking, rankings
            )

            engine_s = _best_of(
                lambda: local_search(
                    rankings, seed, strategy="insertion", max_passes=_MAX_PASSES
                )
            )
            reference_s = _best_of(
                lambda: insertion_local_search_reference(
                    rankings, seed, max_passes=_MAX_PASSES
                )
            )
            search_rows.append(
                {
                    "n_candidates": n_candidates,
                    "n_rankings": n_rankings,
                    "seed": seed_label,
                    "engine_s": engine_s,
                    "reference_s": reference_s,
                    "speedup": reference_s / engine_s,
                }
            )

    # The speedup gate applies at the acceptance configuration: the largest
    # cold-seed workload timed.  MANI_RANK_PERF_MIN_SPEEDUP loosens the gate
    # where timings are noisy but the run should still regenerate results.
    min_speedup = float(
        os.environ.get("MANI_RANK_PERF_MIN_SPEEDUP", parameters["min_speedup"])
    )
    acceptance = max(
        (row for row in search_rows if row["seed"] == "cold"),
        key=lambda row: row["n_candidates"] * row["n_rankings"],
    )
    assert acceptance["speedup"] >= min_speedup, (
        f"engine-backed insertion search only {acceptance['speedup']:.1f}x "
        f"faster than the from-scratch reference at "
        f"n={acceptance['n_candidates']}, m={acceptance['n_rankings']} "
        f"(required {min_speedup}x)"
    )

    # ------------------------------------------------------------------
    # fairness-constrained insertion repair vs from-scratch reference
    # ------------------------------------------------------------------
    repair_rows = []
    for n_candidates, n_rankings in parameters["fair_configurations"]:
        table = scalability_table(n_candidates, rng=7)
        modal = calibrated_modal_ranking(table, _REPAIR_TARGETS, rng=7)
        rankings = sample_mallows(modal, theta, n_rankings, rng=11)
        rankings.precedence_matrix()
        corrected = make_mr_fair(
            BordaAggregator().aggregate(rankings), table, _REPAIR_DELTA
        ).ranking

        engine_repair = fair_insertion_kemenization(
            rankings, corrected, table, _REPAIR_DELTA, max_passes=_MAX_PASSES
        )
        reference_repair = fair_insertion_kemenization_reference(
            rankings, corrected, table, _REPAIR_DELTA, max_passes=_MAX_PASSES
        )
        assert engine_repair.ranking == reference_repair.ranking
        assert engine_repair.n_swaps == reference_repair.n_swaps
        assert engine_repair.n_moves == reference_repair.n_moves

        engine_s = _best_of(
            lambda: fair_insertion_kemenization(
                rankings, corrected, table, _REPAIR_DELTA, max_passes=_MAX_PASSES
            )
        )
        reference_s = _best_of(
            lambda: fair_insertion_kemenization_reference(
                rankings, corrected, table, _REPAIR_DELTA, max_passes=_MAX_PASSES
            ),
            repeat=3,
        )
        repair_rows.append(
            {
                "n_candidates": n_candidates,
                "n_rankings": n_rankings,
                "n_swaps": engine_repair.n_swaps,
                "n_moves": engine_repair.n_moves,
                "engine_s": engine_s,
                "reference_s": reference_s,
                "speedup": reference_s / engine_s,
            }
        )

    fair_min_speedup = float(
        os.environ.get(
            "MANI_RANK_PERF_MIN_SPEEDUP", parameters["fair_min_speedup"]
        )
    )
    fair_acceptance = max(
        repair_rows, key=lambda row: row["n_candidates"] * row["n_rankings"]
    )
    assert fair_acceptance["speedup"] >= fair_min_speedup, (
        f"fair insertion repair only {fair_acceptance['speedup']:.1f}x faster "
        f"than the from-scratch reference at "
        f"n={fair_acceptance['n_candidates']}, "
        f"m={fair_acceptance['n_rankings']} (required {fair_min_speedup}x)"
    )

    # ------------------------------------------------------------------
    # persist the trajectory — full scale only, so a smoke run (CI, quick
    # local checks) never overwrites the committed full-scale baseline;
    # MANI_RANK_PERF_RESULTS_DIR redirects persistence (any scale) to a
    # scratch directory the CI perf-smoke job uploads and compares
    # ------------------------------------------------------------------
    if perf_output_directory is not None:
        results_directory = perf_output_directory
    elif scale != "full":
        return
    payload = {
        "benchmark": "perf_insertion",
        "scale": scale,
        "parameters": {
            "configurations": [list(pair) for pair in parameters["configurations"]],
            "fair_configurations": [
                list(pair) for pair in parameters["fair_configurations"]
            ],
            "theta": theta,
            "max_passes": _MAX_PASSES,
            "repair_targets": _REPAIR_TARGETS,
            "repair_delta": _REPAIR_DELTA,
        },
        "insertion_search": search_rows,
        "fair_insertion_repair": repair_rows,
    }
    (results_directory / "perf_insertion.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    text = "\n\n".join(
        [
            f"perf_insertion (scale={scale})",
            "Insertion local search (delta engine vs from-scratch reference)\n"
            + render_table(search_rows, digits=4),
            "Fair insertion repair (incremental engines vs from-scratch)\n"
            + render_table(repair_rows, digits=4),
        ]
    )
    (results_directory / "perf_insertion.txt").write_text(text + "\n")
