"""Performance benchmark of the pluggable compute-kernel backends.

Times the two engine hot paths on every *known* kernel backend
(:mod:`repro.kernels`):

* ``sweep`` — a full carry-run local-Kemenization
  (``KemenyDeltaEngine.sweep_adjacent`` to convergence) from a shuffled
  start on Mallows-like random profiles;
* ``repair`` — ``make_mr_fair`` at the paper's tight Δ = 0.1 (the
  parity-update storm the numba kernels target).

Results are written to ``benchmarks/results/perf_kernels.{json,txt}``.  The
committed baseline records the environment it ran in: where numba is not
installed the numba columns are ``null`` and the payload carries the
registry's reason, and the test ends in a *visible skip* (after persisting)
so a ``-rs`` run shows exactly why the JIT leg did not execute.

Where numba IS available, two hard gates run instead of the skip:

* bit-identity — both workloads must return identical orders / swap counts
  on both backends (the property suite covers this broadly; the benchmark
  re-checks at benchmark scale);
* speedup — the numba backend must be >= 5x faster than numpy on the
  acceptance workload (>= 2x at smoke scale; override with
  ``MANI_RANK_PERF_MIN_SPEEDUP``).  Warmup (JIT compilation) is excluded
  from the timings via :meth:`NumbaKernelBackend.warmup`.
"""

from __future__ import annotations

import json
import os
import timeit

import numpy as np
import pytest

from repro.aggregation.borda import BordaAggregator
from repro.aggregation.incremental import KemenyDeltaEngine
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.datagen.attributes import scalability_table
from repro.datagen.fair_modal import calibrated_modal_ranking
from repro.datagen.mallows import sample_mallows
from repro.experiments.reporting import render_table
from repro.fair.make_mr_fair import make_mr_fair
from repro.kernels import get_backend
from repro.kernels.numba_backend import AVAILABLE as NUMBA_AVAILABLE
from repro.kernels.numba_backend import UNAVAILABLE_REASON

#: Modal-ranking fairness targets matching the Figure 7 scalability dataset.
_MODAL_TARGETS = {"Race": 0.31, "Gender": 0.44}

_SCALE_PARAMETERS = {
    "full": {
        "sweep_n": 500,
        "sweep_m": 100,
        "repair_n": 400,
        "delta": 0.1,
        "min_speedup": 5.0,
    },
    "smoke": {
        "sweep_n": 80,
        "sweep_m": 20,
        "repair_n": 60,
        "delta": 0.1,
        "min_speedup": 2.0,
    },
}


def _best_of(function, repeat: int = 3) -> float:
    """Minimum wall-clock seconds over ``repeat`` single runs."""
    return min(timeit.repeat(function, number=1, repeat=repeat))


def _sweep_workload(parameters, backend_name: str):
    """Fresh-engine local-Kemenization to convergence; returns (run, probe)."""
    n, m = parameters["sweep_n"], parameters["sweep_m"]
    rng = np.random.default_rng(19)
    rankings = RankingSet([Ranking(rng.permutation(n).tolist()) for _ in range(m)])
    precedence = rankings.precedence_matrix()
    initial = Ranking(rng.permutation(n).tolist())

    def run():
        engine = KemenyDeltaEngine(precedence, initial, backend=backend_name)
        sweeps = 0
        while engine.sweep_adjacent():
            sweeps += 1
        return engine.order_list, engine.objective, sweeps

    return run


def _repair_workload(parameters, backend_name: str):
    n = parameters["repair_n"]
    table = scalability_table(n, rng=7)
    modal = calibrated_modal_ranking(table, _MODAL_TARGETS, rng=7)
    rankings = sample_mallows(modal, 0.6, 50, rng=7)
    seed = BordaAggregator().aggregate(rankings)
    delta = parameters["delta"]

    def run():
        result = make_mr_fair(seed, table, delta, backend=backend_name)
        return result.ranking.to_list(), result.n_swaps

    return run


def test_perf_kernels(results_directory, perf_output_directory):
    scale = os.environ.get("MANI_RANK_PERF_SCALE", "full")
    parameters = _SCALE_PARAMETERS[scale]
    min_speedup = float(
        os.environ.get("MANI_RANK_PERF_MIN_SPEEDUP", parameters["min_speedup"])
    )

    workloads = [
        ("sweep", f"n={parameters['sweep_n']}, m={parameters['sweep_m']}"),
        ("repair", f"n={parameters['repair_n']}, delta={parameters['delta']}"),
    ]
    builders = {"sweep": _sweep_workload, "repair": _repair_workload}

    rows = []
    acceptance_speedup = None
    for workload, configuration in workloads:
        numpy_run = builders[workload](parameters, "numpy")
        numpy_result = numpy_run()
        row = {
            "workload": workload,
            "configuration": configuration,
            "numpy_s": _best_of(numpy_run),
            "numba_s": None,
            "speedup": None,
        }
        if NUMBA_AVAILABLE:
            get_backend("numba").warmup()
            numba_run = builders[workload](parameters, "numba")
            # Bit-identity at benchmark scale before timing anything.
            assert numba_run() == numpy_result, (
                f"numba backend diverged from numpy on the {workload} workload"
            )
            row["numba_s"] = _best_of(numba_run)
            row["speedup"] = row["numpy_s"] / row["numba_s"]
            acceptance_speedup = row["speedup"]
        rows.append(row)

    if NUMBA_AVAILABLE:
        # Gate on the last (repair) workload: the parity-update storm the
        # JIT kernels were written for.
        assert acceptance_speedup is not None
        assert acceptance_speedup >= min_speedup, (
            f"numba backend only {acceptance_speedup:.1f}x faster than numpy "
            f"(required {min_speedup}x)"
        )

    # Persist the trajectory — full scale only, unless CI redirects it.
    persist_directory = None
    if perf_output_directory is not None:
        persist_directory = perf_output_directory
    elif scale == "full":
        persist_directory = results_directory
    if persist_directory is not None:
        payload = {
            "benchmark": "perf_kernels",
            "scale": scale,
            "parameters": {
                key: value
                for key, value in parameters.items()
                if key != "min_speedup"
            },
            "numba": {
                "available": NUMBA_AVAILABLE,
                "unavailable_reason": UNAVAILABLE_REASON or None,
            },
            "workloads": rows,
        }
        (persist_directory / "perf_kernels.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )
        status = (
            "numba available"
            if NUMBA_AVAILABLE
            else f"numba unavailable: {UNAVAILABLE_REASON}"
        )
        text = "\n\n".join(
            [
                f"perf_kernels (scale={scale}; {status})",
                "kernel backends\n" + render_table(rows, digits=4),
            ]
        )
        (persist_directory / "perf_kernels.txt").write_text(text + "\n")

    if not NUMBA_AVAILABLE:
        pytest.skip(
            "numpy backend timed and persisted; the numba leg and the "
            f">= {min_speedup}x gate did not run: {UNAVAILABLE_REASON}"
        )
