"""Ablation benchmark: ILP design choices behind Fair-Kemeny.

Two design decisions documented in DESIGN.md are quantified here:

* the encoding of the MANI-Rank constraints — the paper's pairwise constraints
  (Equations 11–12) versus the compact min/max reformulation this repo uses to
  keep the problem tractable for HiGHS;
* eager versus lazy (cutting-plane) transitivity constraints for the plain
  Kemeny objective.

Both variants must return the same objective value; the benchmark records the
runtime difference.
"""

from __future__ import annotations

import pytest

from repro.aggregation.kemeny import KemenyAggregator
from repro.datagen.attributes import small_mallows_table
from repro.datagen.fair_modal import generate_mallows_dataset
from repro.fair.fair_kemeny import FairKemenyAggregator


@pytest.fixture(scope="module")
def dataset():
    return generate_mallows_dataset(
        small_mallows_table(group_size=2), "low", theta=0.6, n_rankings=25, rng=5
    )


@pytest.mark.parametrize("formulation", ["minmax", "pairwise"])
def test_ablation_parity_formulation(benchmark, dataset, formulation):
    method = FairKemenyAggregator(formulation=formulation, mip_rel_gap=None)
    result = benchmark.pedantic(
        method.aggregate_with_diagnostics,
        args=(dataset.rankings, dataset.table, 0.1),
        rounds=1,
        iterations=1,
    )
    # Both encodings are exact reformulations of the same feasible set.
    assert result.diagnostics["optimal"]
    expected = FairKemenyAggregator(mip_rel_gap=None).aggregate_with_diagnostics(
        dataset.rankings, dataset.table, 0.1
    )
    assert result.diagnostics["objective"] == pytest.approx(
        expected.diagnostics["objective"]
    )


@pytest.mark.parametrize("lazy", [False, True])
def test_ablation_triangle_generation(benchmark, dataset, lazy):
    method = KemenyAggregator(lazy_triangles=lazy)
    result = benchmark.pedantic(
        method.aggregate_with_diagnostics, args=(dataset.rankings,), rounds=1, iterations=1
    )
    reference = KemenyAggregator(lazy_triangles=not lazy).aggregate_with_diagnostics(
        dataset.rankings
    )
    assert result.diagnostics["objective"] == pytest.approx(
        reference.diagnostics["objective"]
    )
