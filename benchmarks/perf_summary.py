"""Baseline-vs-current comparison table for the perf benchmarks.

Reads every ``perf_*.json`` payload from a *baseline* directory (the
committed ``benchmarks/results/``) and a *current* directory (a fresh run,
e.g. the CI perf-smoke job's ``MANI_RANK_PERF_RESULTS_DIR`` scratch output)
and renders one GitHub-flavoured-markdown table of all timed speedup rows,
aligned by (benchmark, section, configuration).  The CI perf-smoke job
appends the output to ``$GITHUB_STEP_SUMMARY`` so every PR shows its perf
trajectory next to the committed baseline::

    python benchmarks/perf_summary.py \
        --baseline benchmarks/results --current perf-smoke-results

Raw times are not compared across directories — the baseline is recorded at
full scale on one machine and the current run typically at smoke scale on a
shared runner — so the table reports each side's *speedup* (engine vs
retained from-scratch reference, the scale-robust signal every perf payload
carries) plus its scale tag.  Stdlib only: the script must run before the
project's dependencies are installed if need be.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Row keys that are run *outputs*, not configuration axes: the speedup
#: itself, anything timed (``*_s`` by the payloads' convention), and the
#: search/repair counters.  Everything else — including float-valued axes
#: like ``theta`` or ``delta`` — identifies the row, so two sweep points
#: never collide and baseline/current rows pair by configuration alone.
_OUTPUT_KEYS = frozenset({"speedup", "seconds", "n_swaps", "n_moves", "n_passes"})


def _configuration_label(row: dict) -> str:
    """Human-readable configuration key of one speedup row."""
    parts = []
    for key, value in row.items():
        if key in _OUTPUT_KEYS or key.endswith("_s"):
            continue
        if isinstance(value, float):
            value = format(value, "g")
        parts.append(f"{key}={value}")
    return ", ".join(parts)


def _speedup_rows(payload: dict) -> dict[tuple[str, str], float]:
    """Map (section, configuration) -> speedup for one perf payload."""
    rows: dict[tuple[str, str], float] = {}
    for section, value in payload.items():
        if not isinstance(value, list):
            continue
        for row in value:
            if not isinstance(row, dict) or row.get("speedup") is None:
                # Some baselines skip the reference timing at their largest
                # configuration (speedup: null) — nothing to compare there.
                continue
            rows[(section, _configuration_label(row))] = float(row["speedup"])
    return rows


def _load_payloads(directory: Path) -> dict[str, dict]:
    """Perf payloads by benchmark name (``perf_*.json`` files only)."""
    payloads: dict[str, dict] = {}
    for path in sorted(directory.glob("perf_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        name = str(payload.get("benchmark", path.stem))
        payloads[name] = payload
    return payloads


def render_summary(baseline_directory: Path, current_directory: Path) -> str:
    """The markdown comparison of the two result directories."""
    baseline = _load_payloads(baseline_directory)
    current = _load_payloads(current_directory)
    lines = ["## Perf benchmarks: baseline vs current", ""]
    if not baseline and not current:
        lines.append("_No perf payloads found in either directory._")
        return "\n".join(lines)

    baseline_scales = {payload.get("scale", "?") for payload in baseline.values()}
    current_scales = {payload.get("scale", "?") for payload in current.values()}
    lines.append(
        f"Baseline: committed results (scale: {', '.join(sorted(baseline_scales)) or '—'}) · "
        f"Current: this run (scale: {', '.join(sorted(current_scales)) or '—'}).  "
        "Speedups are engine-vs-reference on each side's own scale; raw times "
        "are not comparable across scales."
    )
    lines.append("")
    lines.append("| benchmark | section | configuration | baseline speedup | current speedup |")
    lines.append("|---|---|---|---:|---:|")

    def _format(value: float | None) -> str:
        return f"{value:.1f}x" if value is not None else "—"

    for name in sorted(set(baseline) | set(current)):
        baseline_rows = _speedup_rows(baseline.get(name, {}))
        current_rows = _speedup_rows(current.get(name, {}))
        for section, configuration in sorted(set(baseline_rows) | set(current_rows)):
            lines.append(
                f"| {name} | {section} | {configuration} "
                f"| {_format(baseline_rows.get((section, configuration)))} "
                f"| {_format(current_rows.get((section, configuration)))} |"
            )

    missing = sorted(set(baseline) - set(current))
    if missing:
        lines.append("")
        lines.append(
            "_Benchmarks with no current run (baseline only): "
            + ", ".join(missing)
            + "; smoke configurations differ from the committed full-scale "
            "ones, so their rows pair by configuration only where they "
            "coincide._"
        )
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).parent / "results",
        help="directory holding the committed perf_*.json baselines",
    )
    parser.add_argument(
        "--current",
        type=Path,
        required=True,
        help="directory holding the fresh perf_*.json results to compare",
    )
    args = parser.parse_args(argv)
    sys.stdout.write(render_summary(args.baseline, args.current))
    return 0


if __name__ == "__main__":
    sys.exit(main())
