"""Ablation benchmark: which seed method to hand to Make-MR-Fair.

DESIGN.md calls out the choice of the fairness-unaware seed (Borda, Copeland,
Schulze, footrule, or simply the fairest base ranking) as the main design
lever of the polynomial-time MFCR methods.  This benchmark corrects every seed
on the same dataset and records (a) the runtime and (b) the PD loss of the
resulting fair consensus, reproducing the paper's observation that Condorcet
seeds (Copeland/Schulze) represent the base rankings slightly better than
Borda, while Correct-Fairest-Perm is clearly worse.
"""

from __future__ import annotations

import pytest

from repro.datagen.attributes import small_mallows_table
from repro.datagen.fair_modal import generate_mallows_dataset
from repro.fair.registry import get_fair_method
from repro.fairness.parity import mani_rank_satisfied
from repro.fairness.pd_loss import pd_loss


@pytest.fixture(scope="module")
def dataset():
    return generate_mallows_dataset(
        small_mallows_table(group_size=3), "low", theta=0.6, n_rankings=40, rng=13
    )


SEED_METHODS = ["fair-borda", "fair-copeland", "fair-schulze", "fair-footrule", "correct-fairest-perm"]


@pytest.mark.parametrize("method_name", SEED_METHODS)
def test_ablation_seed_method(benchmark, dataset, method_name):
    method = get_fair_method(method_name)
    delta = 0.1
    consensus = benchmark.pedantic(
        method.aggregate, args=(dataset.rankings, dataset.table, delta), rounds=1, iterations=1
    )
    assert mani_rank_satisfied(consensus, dataset.table, delta)
    loss = pd_loss(dataset.rankings, consensus)
    assert 0.0 <= loss <= 1.0


@pytest.mark.xfail(
    reason=(
        "Pre-existing failure carried from PR 2 (see CHANGES.md): the paper's "
        "Section IV-B claim that consensus seeds represent the base rankings "
        "at least as well as Correct-Fairest-Perm is distributional, but this "
        "test checks it on a single draw (seed 13, n=40), where "
        "correct-fairest-perm happens to land a lower PD loss (0.346 vs "
        "0.383) than every consensus seed.  Turning the check into a "
        "multi-seed average is tracked in ROADMAP 'Open items'."
    ),
    strict=False,
)
def test_seed_ablation_summary(dataset, save_result):
    """Collect the PD-loss comparison across seeds into a reproducible table."""
    from repro.experiments.reporting import ExperimentResult

    delta = 0.1
    result = ExperimentResult(
        experiment="ablation_seed",
        title="Ablation: Make-MR-Fair seed method vs PD loss (Low-Fair, delta=0.1)",
        parameters={"delta": delta, "n_candidates": dataset.table.n_candidates},
    )
    losses = {}
    for method_name in SEED_METHODS:
        consensus = get_fair_method(method_name).aggregate(
            dataset.rankings, dataset.table, delta
        )
        losses[method_name] = pd_loss(dataset.rankings, consensus)
        result.add(method=method_name, pd_loss=losses[method_name])
    save_result(result)
    # Correcting the fairest base ranking represents the base set no better
    # than correcting a genuine consensus seed (paper Section IV-B).
    best_seeded = min(losses[name] for name in SEED_METHODS[:4])
    assert best_seeded <= losses["correct-fairest-perm"] + 0.02
