"""Ablation benchmark: which seed method to hand to Make-MR-Fair.

DESIGN.md calls out the choice of the fairness-unaware seed (Borda, Copeland,
Schulze, footrule, or simply the fairest base ranking) as the main design
lever of the polynomial-time MFCR methods.  This benchmark corrects every seed
on the same dataset and records (a) the runtime and (b) the PD loss of the
resulting fair consensus, reproducing the paper's observation that Condorcet
seeds (Copeland/Schulze) represent the base rankings slightly better than
Borda, while Correct-Fairest-Perm is clearly worse.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.attributes import small_mallows_table
from repro.datagen.fair_modal import generate_mallows_dataset
from repro.fair.registry import get_fair_method
from repro.fairness.parity import mani_rank_satisfied
from repro.fairness.pd_loss import pd_loss


@pytest.fixture(scope="module")
def dataset():
    return generate_mallows_dataset(
        small_mallows_table(group_size=3), "low", theta=0.6, n_rankings=40, rng=13
    )


SEED_METHODS = ["fair-borda", "fair-copeland", "fair-schulze", "fair-footrule", "correct-fairest-perm"]


@pytest.mark.parametrize("method_name", SEED_METHODS)
def test_ablation_seed_method(benchmark, dataset, method_name):
    method = get_fair_method(method_name)
    delta = 0.1
    consensus = benchmark.pedantic(
        method.aggregate, args=(dataset.rankings, dataset.table, delta), rounds=1, iterations=1
    )
    assert mani_rank_satisfied(consensus, dataset.table, delta)
    loss = pd_loss(dataset.rankings, consensus)
    assert 0.0 <= loss <= 1.0


#: Number of independent dataset draws averaged by the summary test.  The
#: Section IV-B claim is distributional: any single draw can land on the
#: wrong side (seed 13 famously does — the source of the former xfail).
N_ABLATION_SEEDS = 12


def test_seed_ablation_summary(save_result):
    """Multi-seed PD-loss comparison across Make-MR-Fair seed methods.

    The paper's Section IV-B observation — correcting a genuine consensus
    seed represents the base rankings at least as well as correcting the
    fairest base ranking (Correct-Fairest-Perm) — is a statement about the
    data-generating process, so it is tested as an average over
    ``N_ABLATION_SEEDS`` independently drawn Low-Fair Mallows datasets
    rather than a single draw (the former single-draw check at seed 13 was
    an xfail precisely because that draw lands on the wrong side).
    """
    from repro.experiments.reporting import ExperimentResult

    delta = 0.1
    table = small_mallows_table(group_size=3)
    result = ExperimentResult(
        experiment="ablation_seed",
        title=(
            "Ablation: Make-MR-Fair seed method vs PD loss "
            f"(Low-Fair, delta=0.1, mean over {N_ABLATION_SEEDS} seeds)"
        ),
        parameters={
            "delta": delta,
            "n_candidates": table.n_candidates,
            "n_rankings": 40,
            "theta": 0.6,
            "n_seeds": N_ABLATION_SEEDS,
            "base_seed": 13,
        },
    )
    losses: dict[str, list[float]] = {name: [] for name in SEED_METHODS}
    for child in np.random.SeedSequence(13).spawn(N_ABLATION_SEEDS):
        rng = np.random.default_rng(child)
        dataset = generate_mallows_dataset(
            table, "low", theta=0.6, n_rankings=40, rng=rng
        )
        for method_name in SEED_METHODS:
            consensus = get_fair_method(method_name).aggregate(
                dataset.rankings, dataset.table, delta
            )
            assert mani_rank_satisfied(consensus, dataset.table, delta)
            losses[method_name].append(pd_loss(dataset.rankings, consensus))
    means = {name: float(np.mean(values)) for name, values in losses.items()}
    for method_name in SEED_METHODS:
        result.add(
            method=method_name,
            pd_loss_mean=means[method_name],
            pd_loss_min=float(np.min(losses[method_name])),
            pd_loss_max=float(np.max(losses[method_name])),
        )
    save_result(result)
    # Correcting the fairest base ranking represents the base set no better
    # than correcting a genuine consensus seed (paper Section IV-B), on
    # average over the data distribution.
    best_seeded = min(means[name] for name in SEED_METHODS[:4])
    assert best_seeded <= means["correct-fairest-perm"] + 0.005
