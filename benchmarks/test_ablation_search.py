"""Ablation benchmark: local-search neighbourhood strategies on the Mallows grid.

Runs the ``ablation-search`` experiment (see
:mod:`repro.experiments.ablation_search`) and checks its structural claims on
every grid cell before persisting the regenerated table:

* each (data axes, seed) cell reports all three strategies;
* the ``insertion`` strategy's Kemeny objective is **never worse** than the
  ``adjacent-swap`` strategy's — this is the acceptance guarantee of the
  strategy subsystem (the variable-neighbourhood schedule makes it
  structural, and ``tests/aggregation/test_search_strategies.py`` property-
  tests the same dominance on random inputs);
* every strategy's objective from the Borda seed is no worse than from the
  adversarial cold seed... not guaranteed — local search is a heuristic — so
  that is deliberately *not* asserted; only the per-cell dominance is.
"""

from __future__ import annotations

from collections import defaultdict

from repro.experiments import run_experiment

STRATEGIES = {"adjacent-swap", "insertion", "combined"}


def test_ablation_search_strategies(bench_scale, save_result):
    result = run_experiment("ablation-search", scale=bench_scale)

    cells: dict[tuple, dict[str, dict]] = defaultdict(dict)
    for record in result.records:
        key = (
            record["n_candidates"],
            record["n_rankings"],
            record["theta"],
            record["seed_ranking"],
        )
        cells[key][str(record["strategy"])] = record
    assert cells, "ablation produced no records"

    for key, by_strategy in cells.items():
        assert set(by_strategy) == STRATEGIES, key
        adjacent = by_strategy["adjacent-swap"]
        insertion = by_strategy["insertion"]
        # The acceptance criterion: never worse, on every grid cell.
        assert insertion["objective"] <= adjacent["objective"], key
        for record in by_strategy.values():
            assert record["objective"] >= 0.0
            assert record["search_s"] >= 0.0

    # The cold seed must leave actual work: at least one cell where the
    # bubble descent runs multiple passes (guards against the ablation
    # silently degenerating into converged no-op cells).
    assert any(
        by_strategy["adjacent-swap"]["n_passes"] > 1
        for key, by_strategy in cells.items()
        if key[3] == "cold"
    )

    save_result(result)
