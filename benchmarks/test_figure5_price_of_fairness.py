"""Benchmark: regenerate Figure 5 (Price of Fairness analysis)."""

from __future__ import annotations

import numpy as np

from repro.experiments import figure5


def test_figure5_price_of_fairness(benchmark, bench_scale, save_result):
    result = benchmark.pedantic(
        figure5.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_result(result)

    # Left panel: Fair-Kemeny PoF is non-negative everywhere, and the less
    # fair the modal ranking, the higher the average price (Low >= Medium).
    theta_rows = result.filtered(panel="theta-sweep")
    assert theta_rows
    assert all(record["PoF"] >= -1e-9 for record in theta_rows)
    mean_pof = {}
    for dataset in {record["dataset"] for record in theta_rows}:
        values = [r["PoF"] for r in theta_rows if r["dataset"] == dataset]
        mean_pof[dataset] = float(np.mean(values))
    if "Low-Fair" in mean_pof and "Medium-Fair" in mean_pof:
        assert mean_pof["Low-Fair"] >= mean_pof["Medium-Fair"] - 0.02
    if "High-Fair" in mean_pof:
        assert mean_pof["Low-Fair"] >= mean_pof["High-Fair"] - 0.02

    # Right panel: for every method the PoF decreases (weakly) as delta loosens.
    delta_rows = result.filtered(panel="delta-sweep")
    deltas = sorted({record["delta"] for record in delta_rows})
    for method in {record["method"] for record in delta_rows}:
        series = {
            record["delta"]: record["PoF"]
            for record in delta_rows
            if record["method"] == method
        }
        assert series[max(deltas)] <= series[min(deltas)] + 0.02
