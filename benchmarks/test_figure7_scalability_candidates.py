"""Benchmark: regenerate Figure 7 (runtime vs number of candidates, per Δ)."""

from __future__ import annotations

import numpy as np

from repro.experiments import figure7


def test_figure7_scalability_candidates(benchmark, bench_scale, save_result):
    result = benchmark.pedantic(
        figure7.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_result(result)

    counts = sorted({record["n_candidates"] for record in result.records})
    deltas = sorted({record["delta"] for record in result.records})
    assert len(counts) >= 2
    assert len(deltas) == 2

    # Runtime grows with the candidate count for every method at the tight delta.
    for label in {record["label"] for record in result.records}:
        series = [
            record["runtime_s"]
            for record in sorted(
                result.filtered(label=label, delta=min(deltas)),
                key=lambda r: r["n_candidates"],
            )
        ]
        assert series[-1] >= series[0] * 0.5

    # Paper shape: the looser delta is never substantially slower overall
    # (Make-MR-Fair needs fewer swaps when the requirement is loose).
    tight_total = float(
        np.sum([r["runtime_s"] for r in result.filtered(delta=min(deltas))])
    )
    loose_total = float(
        np.sum([r["runtime_s"] for r in result.filtered(delta=max(deltas))])
    )
    assert loose_total <= tight_total * 1.25
