"""Benchmark: regenerate Table IV (student merit-scholarship case study)."""

from __future__ import annotations

from repro.experiments import table4


def test_table4_exam_case_study(benchmark, bench_scale, save_result):
    result = benchmark.pedantic(
        table4.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_result(result)
    delta = result.parameters["delta"]

    base = [r for r in result.records if r["ranking"] in ("Math", "Reading", "Writing")]
    kemeny = next(r for r in result.records if r["ranking"] == "Kemeny")
    fair = [r for r in result.records if r["ranking"].startswith("Fair-")]
    assert len(base) == 3
    assert fair

    # Paper shape: base rankings and Kemeny are far from parity (Lunch is the
    # dominant bias; NatHawaii disadvantaged; IRP large).
    for record in base:
        assert record["Lunch"] > 0.15
        assert record["IRP"] > 0.3
        assert record["Race=NatHawaii"] < 0.45
    assert kemeny["Lunch"] > 0.15
    assert kemeny["IRP"] > 0.3

    # Every fair method removes the bias: all ARPs and IRP at or below delta,
    # and every group's FPR close to the 0.5 parity target.
    for record in fair:
        assert record["Gender"] <= delta + 1e-6
        assert record["Race"] <= delta + 1e-6
        assert record["Lunch"] <= delta + 1e-6
        assert record["IRP"] <= delta + 1e-6
        assert abs(record["Lunch=SubLunch"] - 0.5) <= delta
        assert abs(record["Race=NatHawaii"] - 0.5) <= delta + 0.05
