"""Performance benchmark of the batched Mallows data-generation engine.

Times the vectorised RIM sampler (:func:`repro.datagen.mallows.sample_mallows`)
against the retained scalar reference
(:func:`repro.datagen.mallows.sample_mallows_ranking_reference`) across the
synthetic-experiment regimes, plus the :meth:`RankingSet.from_position_matrix`
bulk constructor against the per-ranking list path.

Results are written to ``benchmarks/results/perf_datagen.{json,txt}`` so every
future PR inherits a data-generation perf trajectory alongside the PR-2
hot-path baseline.  Set ``MANI_RANK_PERF_SCALE=smoke`` for the reduced
configuration used by the CI perf smoke job; smoke runs assert but do not
persist results, so they never overwrite the committed full-scale baseline.

Two hard assertions guard the tentpole:

* the batched sampler draws *bit-identical* samples to the scalar reference
  for a shared seed (they consume the same generator stream);
* at the acceptance configuration (n = 200 candidates, m = 500 rankings at
  full scale) the batched sampler is >= 10x faster (>= 4x at smoke scale,
  where fixed per-call overheads weigh more).
"""

from __future__ import annotations

import json
import os
import timeit

import numpy as np

from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.datagen.mallows import (
    sample_mallows,
    sample_mallows_position_matrix,
    sample_mallows_ranking_reference,
)
from repro.experiments.reporting import render_table

_SCALE_PARAMETERS = {
    "full": {
        "sampler_configurations": ((100, 200), (200, 500)),
        "theta": 0.6,
        "construction_n": 200,
        "construction_m": 500,
        "min_speedup": 10.0,
    },
    "smoke": {
        "sampler_configurations": ((40, 60), (60, 100)),
        "theta": 0.6,
        "construction_n": 60,
        "construction_m": 100,
        "min_speedup": 4.0,
    },
}


def _best_of(function, repeat: int = 3) -> float:
    """Minimum wall-clock seconds over ``repeat`` single runs."""
    return min(timeit.repeat(function, number=1, repeat=repeat))


def _reference_sample(modal: Ranking, theta: float, m: int, seed: int) -> list[Ranking]:
    rng = np.random.default_rng(seed)
    return [sample_mallows_ranking_reference(modal, theta, rng) for _ in range(m)]


def test_perf_datagen(results_directory, perf_output_directory):
    scale = os.environ.get("MANI_RANK_PERF_SCALE", "full")
    parameters = _SCALE_PARAMETERS[scale]
    theta = parameters["theta"]

    # ------------------------------------------------------------------
    # batched vs scalar-reference Mallows sampling
    # ------------------------------------------------------------------
    sampler_rows = []
    for n_candidates, n_rankings in parameters["sampler_configurations"]:
        modal = Ranking(np.random.default_rng(n_candidates).permutation(n_candidates))

        # Tentpole guarantee: a shared seed yields bit-identical samples.
        batched = sample_mallows(modal, theta, n_rankings, rng=23)
        reference = _reference_sample(modal, theta, n_rankings, seed=23)
        assert batched.to_order_lists() == [ranking.to_list() for ranking in reference]

        batched_s = _best_of(lambda: sample_mallows(modal, theta, n_rankings, rng=23))
        reference_s = _best_of(
            lambda: _reference_sample(modal, theta, n_rankings, seed=23)
        )
        speedup = reference_s / batched_s
        sampler_rows.append(
            {
                "n_candidates": n_candidates,
                "n_rankings": n_rankings,
                "theta": theta,
                "batched_s": batched_s,
                "reference_s": reference_s,
                "speedup": speedup,
            }
        )

    # The speedup gate applies at the acceptance configuration: the largest
    # (n_candidates * n_rankings) workload timed, regardless of listing order.
    # MANI_RANK_PERF_MIN_SPEEDUP loosens the gate where timings are noisy but
    # the run should still regenerate results (the nightly shared runners).
    min_speedup = float(
        os.environ.get("MANI_RANK_PERF_MIN_SPEEDUP", parameters["min_speedup"])
    )
    acceptance = max(
        sampler_rows, key=lambda row: row["n_candidates"] * row["n_rankings"]
    )
    assert acceptance["speedup"] >= min_speedup, (
        f"batched Mallows sampler only {acceptance['speedup']:.1f}x faster than "
        f"the scalar reference at n={acceptance['n_candidates']}, "
        f"m={acceptance['n_rankings']} (required {min_speedup}x)"
    )

    # ------------------------------------------------------------------
    # RankingSet bulk construction from a position matrix
    # ------------------------------------------------------------------
    n = parameters["construction_n"]
    m = parameters["construction_m"]
    modal = Ranking(np.random.default_rng(n).permutation(n))
    positions = sample_mallows_position_matrix(
        modal, theta, m, np.random.default_rng(31)
    )
    orders = [
        Ranking.from_positions(positions[row]).to_list() for row in range(m)
    ]
    assert (
        RankingSet.from_position_matrix(positions).to_order_lists()
        == RankingSet.from_orders(orders).to_order_lists()
    )
    construction_rows = [
        {
            "constructor": "from_position_matrix",
            "configuration": f"m={m}, n={n}",
            "seconds": _best_of(lambda: RankingSet.from_position_matrix(positions)),
        },
        {
            "constructor": "from_orders (validating)",
            "configuration": f"m={m}, n={n}",
            "seconds": _best_of(lambda: RankingSet.from_orders(orders)),
        },
    ]

    # ------------------------------------------------------------------
    # persist the trajectory — full scale only, so a smoke run (CI, quick
    # local checks) never overwrites the committed full-scale baseline;
    # MANI_RANK_PERF_RESULTS_DIR redirects persistence (any scale) to a
    # scratch directory the CI perf-smoke job uploads and compares
    # ------------------------------------------------------------------
    if perf_output_directory is not None:
        results_directory = perf_output_directory
    elif scale != "full":
        return
    payload = {
        "benchmark": "perf_datagen",
        "scale": scale,
        "parameters": {
            key: value for key, value in parameters.items() if key != "min_speedup"
        },
        "sampler": sampler_rows,
        "construction": construction_rows,
    }
    (results_directory / "perf_datagen.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    text = "\n\n".join(
        [
            f"perf_datagen (scale={scale})",
            "Mallows sampling (batched vs scalar reference)\n"
            + render_table(sampler_rows, digits=4),
            "RankingSet construction\n" + render_table(construction_rows, digits=4),
        ]
    )
    (results_directory / "perf_datagen.txt").write_text(text + "\n")
