"""Benchmark: regenerate Figure 3 (constraint-formulation comparison)."""

from __future__ import annotations

from repro.experiments import figure3


def test_figure3_constraint_variants(benchmark, bench_scale, save_result):
    result = benchmark.pedantic(
        figure3.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_result(result)
    delta = result.parameters["delta"]

    # Paper shape (Figure 3): the full MANI-Rank formulation is the only one
    # keeping every fairness entity at or below delta on every theta.
    for record in result.filtered(approach="MANI-Rank"):
        assert record["ARP Gender"] <= delta + 1e-6
        assert record["ARP Race"] <= delta + 1e-6
        assert record["IRP"] <= delta + 1e-6

    # Attributes-only keeps the attributes fair but leaves the intersection
    # above the threshold somewhere in the sweep.
    attributes_only = result.filtered(approach="Attributes only")
    assert all(r["ARP Gender"] <= delta + 1e-6 for r in attributes_only)
    assert all(r["ARP Race"] <= delta + 1e-6 for r in attributes_only)
    assert any(r["IRP"] > delta for r in attributes_only)

    # Intersection-only keeps the intersection fair but leaves some attribute
    # above the threshold somewhere in the sweep.
    intersection_only = result.filtered(approach="Intersection only")
    assert all(r["IRP"] <= delta + 1e-6 for r in intersection_only)
    assert any(
        r["ARP Gender"] > delta or r["ARP Race"] > delta for r in intersection_only
    )

    # Fairness-unaware Kemeny violates the threshold.
    assert any(
        max(r["ARP Gender"], r["ARP Race"], r["IRP"]) > delta
        for r in result.filtered(approach="Kemeny (unaware)")
    )
