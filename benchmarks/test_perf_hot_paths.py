"""Performance benchmark of the swap-loop hot paths.

Times the quantities the incremental fairness engine and the vectorised
pairwise kernels were built for:

* ``make_mr_fair`` at n ∈ {100, 200, 400} candidates with 2 protected
  attributes on Mallows data at the paper's tight Δ = 0.1, on both the
  incremental engine (:func:`make_mr_fair`) and the retained from-scratch
  evaluator (:func:`make_mr_fair_reference`);
* the three shared kernels at paper scale: ``favored_mixed_pairs_by_group``
  (vs its naive reference), ``RankingSet.precedence_matrix`` (cold cache),
  and ``kendall_tau_to_set``.

Results are written to ``benchmarks/results/perf_hot_paths.{json,txt}`` so
every future PR inherits a perf trajectory to compare against.  Set
``MANI_RANK_PERF_SCALE=smoke`` for the reduced configuration used by the CI
perf smoke job; smoke runs assert but do not persist results, so they never
overwrite the committed full-scale baseline.

Two hard assertions guard the tentpole:

* the incremental engine returns the *identical* ranking and ``n_swaps`` as
  the from-scratch evaluator;
* at the acceptance configuration (the largest n both are timed at) the
  incremental engine is >= 10x faster (>= 4x at smoke scale, where fixed
  per-iteration overheads weigh more).
"""

from __future__ import annotations

import json
import os
import timeit

import numpy as np

from repro.aggregation.borda import BordaAggregator
from repro.core.distances import kendall_tau_to_set
from repro.core.pairwise import (
    favored_mixed_pairs_by_group,
    favored_mixed_pairs_by_group_naive,
)
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.datagen.attributes import scalability_table
from repro.datagen.fair_modal import calibrated_modal_ranking
from repro.datagen.mallows import sample_mallows
from repro.experiments.reporting import render_table
from repro.fair.make_mr_fair import make_mr_fair, make_mr_fair_reference

#: Modal-ranking fairness targets matching the Figure 7 scalability dataset.
_MODAL_TARGETS = {"Race": 0.31, "Gender": 0.44}

_SCALE_PARAMETERS = {
    "full": {
        "candidate_counts": (100, 200, 400),
        "reference_counts": (100, 200),
        "n_rankings": 50,
        "delta": 0.1,
        "kernel_n": 500,
        "kernel_m": 100,
        "min_speedup": 10.0,
    },
    "smoke": {
        "candidate_counts": (50, 100),
        "reference_counts": (50, 100),
        "n_rankings": 20,
        "delta": 0.1,
        "kernel_n": 120,
        "kernel_m": 30,
        "min_speedup": 4.0,
    },
}


def _best_of(function, repeat: int = 3) -> float:
    """Minimum wall-clock seconds over ``repeat`` single runs."""
    return min(timeit.repeat(function, number=1, repeat=repeat))


def test_perf_hot_paths(results_directory, perf_output_directory):
    scale = os.environ.get("MANI_RANK_PERF_SCALE", "full")
    parameters = _SCALE_PARAMETERS[scale]
    delta = parameters["delta"]

    # ------------------------------------------------------------------
    # make_mr_fair: incremental engine vs from-scratch reference
    # ------------------------------------------------------------------
    make_mr_fair_rows = []
    acceptance_speedup = None
    for n_candidates in parameters["candidate_counts"]:
        table = scalability_table(n_candidates, rng=7)
        modal = calibrated_modal_ranking(table, _MODAL_TARGETS, rng=7)
        rankings = sample_mallows(modal, 0.6, parameters["n_rankings"], rng=7)
        seed = BordaAggregator().aggregate(rankings)

        incremental = make_mr_fair(seed, table, delta)
        incremental_s = _best_of(lambda: make_mr_fair(seed, table, delta))
        row = {
            "n_candidates": n_candidates,
            "delta": delta,
            "n_swaps": incremental.n_swaps,
            "incremental_s": incremental_s,
            "reference_s": None,
            "speedup": None,
        }
        if n_candidates in parameters["reference_counts"]:
            reference = make_mr_fair_reference(seed, table, delta)
            # Tentpole guarantee: identical swap sequence and result.
            assert incremental.ranking == reference.ranking
            assert incremental.n_swaps == reference.n_swaps
            assert incremental.corrected_entities == reference.corrected_entities
            row["reference_s"] = _best_of(
                lambda: make_mr_fair_reference(seed, table, delta)
            )
            row["speedup"] = row["reference_s"] / incremental_s
            acceptance_speedup = row["speedup"]
        make_mr_fair_rows.append(row)

    # The speedup at the largest configuration both evaluators ran.
    # MANI_RANK_PERF_MIN_SPEEDUP loosens the gate where timings are noisy but
    # the run should still regenerate results (the nightly shared runners).
    min_speedup = float(
        os.environ.get("MANI_RANK_PERF_MIN_SPEEDUP", parameters["min_speedup"])
    )
    assert acceptance_speedup is not None
    assert acceptance_speedup >= min_speedup, (
        f"incremental make_mr_fair only {acceptance_speedup:.1f}x faster than "
        f"the from-scratch evaluator (required {min_speedup}x)"
    )

    # ------------------------------------------------------------------
    # shared kernels at paper scale
    # ------------------------------------------------------------------
    kernel_n = parameters["kernel_n"]
    kernel_m = parameters["kernel_m"]
    rng = np.random.default_rng(11)
    kernel_table = scalability_table(kernel_n, rng=11)
    membership = kernel_table.group_membership_array(
        kernel_table.INTERSECTION
    )
    n_groups = len(kernel_table.groups(kernel_table.INTERSECTION))
    kernel_ranking = Ranking.random(kernel_n, rng)
    assert np.array_equal(
        favored_mixed_pairs_by_group(kernel_ranking, membership, n_groups),
        favored_mixed_pairs_by_group_naive(kernel_ranking, membership, n_groups),
    )
    kernel_rows = [
        {
            "kernel": "favored_mixed_pairs_by_group",
            "configuration": f"n={kernel_n}, intersection groups",
            "vectorized_s": _best_of(
                lambda: favored_mixed_pairs_by_group(
                    kernel_ranking, membership, n_groups
                )
            ),
            "naive_s": _best_of(
                lambda: favored_mixed_pairs_by_group_naive(
                    kernel_ranking, membership, n_groups
                )
            ),
        }
    ]

    base = [Ranking.random(kernel_n, rng) for _ in range(kernel_m)]

    def _cold_precedence() -> np.ndarray:
        return RankingSet(base).precedence_matrix()

    kernel_rows.append(
        {
            "kernel": "precedence_matrix",
            "configuration": f"m={kernel_m}, n={kernel_n}, cold cache",
            "vectorized_s": _best_of(_cold_precedence),
            "naive_s": None,
        }
    )

    ranking_set = RankingSet(base)

    def _set_distance() -> float:
        return kendall_tau_to_set(kernel_ranking, ranking_set)

    kernel_rows.append(
        {
            "kernel": "kendall_tau_to_set",
            "configuration": f"m={kernel_m}, n={kernel_n}",
            "vectorized_s": _best_of(_set_distance),
            "naive_s": None,
        }
    )

    # ------------------------------------------------------------------
    # persist the trajectory — full scale only, so a smoke run (CI, quick
    # local checks) never overwrites the committed full-scale baseline;
    # MANI_RANK_PERF_RESULTS_DIR redirects persistence (any scale) to a
    # scratch directory the CI perf-smoke job uploads and compares
    # ------------------------------------------------------------------
    if perf_output_directory is not None:
        results_directory = perf_output_directory
    elif scale != "full":
        return
    payload = {
        "benchmark": "perf_hot_paths",
        "scale": scale,
        "parameters": {
            key: value
            for key, value in parameters.items()
            if key != "min_speedup"
        },
        "make_mr_fair": make_mr_fair_rows,
        "kernels": kernel_rows,
    }
    (results_directory / "perf_hot_paths.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    text = "\n\n".join(
        [
            f"perf_hot_paths (scale={scale})",
            "make_mr_fair (incremental engine vs from-scratch reference)\n"
            + render_table(make_mr_fair_rows, digits=4),
            "shared kernels\n" + render_table(kernel_rows, digits=4),
        ]
    )
    (results_directory / "perf_hot_paths.txt").write_text(text + "\n")
