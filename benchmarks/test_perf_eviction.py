"""Policy-comparison benchmark: eviction policies under the Zipf replay.

Replays the ``perf_cache`` Zipf trace (same query universe, same seed, same
popularity permutation) through one memory-only
:class:`~repro.cache.store.ResultCache` per eviction policy (``lru``,
``cost-aware``, ``clock``), with the memory tier sized *below* the distinct
working set so every policy is forced to choose victims.  The caches are
memory-only on purpose: with a disk tier attached every distinct query is
computed at most once regardless of policy (evicted entries stay servable
from disk), which would flatten the recompute-seconds signal the comparison
measures.

Each distinct query's cold payload and recompute cost are measured up front
and pinned: every cache replays the identical request stream against the
identical payloads with the identical per-entry ``compute_seconds``, so hit
placement — and therefore ``recompute_seconds_saved`` — is a deterministic
function of the policy alone.  The pinned cost is the *minimum* over
``_COST_REPEATS`` timed computations — min-of-k strips the scheduler noise
spikes that would otherwise reorder near-boundary costs between runs and
flake the cost-aware-vs-LRU gate on shared CI runners.

Hard assertions guarding the tentpole:

* every served payload is **bit-identical** to the cold computation, for all
  three policies;
* each policy's ``saved + recomputed`` recompute-seconds reconcile exactly
  with the request stream (no work is silently lost or double-counted);
* the cost-aware policy's total recompute-seconds-saved is >= the retained
  LRU reference's on the measured trace — the replacement upgrade must not
  regress the very currency it optimises.

Results are written to ``benchmarks/results/perf_eviction.{json,txt}`` with
one speedup row per policy (``saved_s`` normalised by LRU's), which the CI
perf summary pairs by policy name.  Set ``MANI_RANK_PERF_SCALE=smoke`` for
the reduced CI configuration (asserts without persisting unless
``MANI_RANK_PERF_RESULTS_DIR`` redirects output).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.cache.service import compute_consensus_payload
from repro.cache.store import ResultCache
from repro.datagen.attributes import scalability_table
from repro.datagen.fair_modal import calibrated_modal_ranking
from repro.datagen.mallows import sample_mallows
from repro.experiments.reporting import render_table

_POLICIES = ("lru", "cost-aware", "clock")

#: Mirrors ``test_perf_cache``'s trace recipe so the two benchmarks measure
#: the same workload; only the cache construction differs.
_SCALE_PARAMETERS = {
    "full": {
        "profiles": ((200, 500, 0.3), (200, 500, 1.0), (100, 200, 0.3)),
        "methods": ("fair-borda", "fair-borda-insertion", "fair-copeland"),
        "deltas": (0.05, 0.1),
        "n_requests": 300,
        "memory_capacity": 8,
        "zipf_exponent": 1.1,
    },
    "smoke": {
        # Two deltas and capacity 3 keep the distinct-query universe (8)
        # diverse enough that the policies genuinely separate — with only 4
        # queries at capacity 2 the cost-aware-vs-LRU margin sits within
        # timing noise and the gate flakes.
        "profiles": ((60, 100, 0.3), (60, 100, 1.0)),
        "methods": ("fair-borda", "fair-borda-insertion"),
        "deltas": (0.05, 0.1),
        "n_requests": 120,
        "memory_capacity": 3,
        "zipf_exponent": 1.1,
    },
}

_MODAL_TARGETS = {"Race": 0.3, "Gender": 0.5}

#: Timed repetitions per distinct query; the pinned cost is the minimum.
_COST_REPEATS = 3


def test_perf_eviction(results_directory, perf_output_directory):
    scale = os.environ.get("MANI_RANK_PERF_SCALE", "full")
    parameters = _SCALE_PARAMETERS[scale]

    # ------------------------------------------------------------------
    # build the Mallows-grid query universe (identical to perf_cache)
    # ------------------------------------------------------------------
    datasets = {}
    for n_candidates, n_rankings, theta in parameters["profiles"]:
        table = scalability_table(n_candidates, rng=7)
        modal = calibrated_modal_ranking(table, _MODAL_TARGETS, rng=7)
        rankings = sample_mallows(modal, theta, n_rankings, rng=11)
        rankings.precedence_matrix()  # warm the shared cached kernel
        datasets[(n_candidates, n_rankings, theta)] = (rankings, table)

    queries = [
        {"profile": profile, "method": method, "strategy": None, "delta": delta}
        for profile in parameters["profiles"]
        for method in parameters["methods"]
        for delta in parameters["deltas"]
    ]
    assert parameters["memory_capacity"] < len(queries)  # force real evictions

    # Cold ground truth and pinned recompute cost for every distinct query
    # (min-of-k timing; repeat payloads must be bit-identical).
    cold_payloads = []
    cold_seconds = []
    for query in queries:
        rankings, table = datasets[query["profile"]]
        best = None
        for repeat in range(_COST_REPEATS):
            start = time.perf_counter()
            payload = compute_consensus_payload(
                rankings,
                table,
                method=query["method"],
                strategy=query["strategy"],
                delta=query["delta"],
            )
            elapsed = time.perf_counter() - start
            if repeat == 0:
                cold_payloads.append(payload)
                best = elapsed
            else:
                assert payload == cold_payloads[-1]  # recompute is deterministic
                best = min(best, elapsed)
        cold_seconds.append(best)

    # ------------------------------------------------------------------
    # Zipf request stream (same seed and permutation as perf_cache)
    # ------------------------------------------------------------------
    rng = np.random.default_rng(2022)
    ranks = np.arange(1, len(queries) + 1, dtype=float)
    popularity = ranks ** -parameters["zipf_exponent"]
    popularity /= popularity.sum()
    rank_to_query = rng.permutation(len(queries))
    request_stream = rank_to_query[
        rng.choice(len(queries), size=parameters["n_requests"], p=popularity)
    ]
    stream_cost = float(sum(cold_seconds[index] for index in request_stream))

    # ------------------------------------------------------------------
    # replay the identical trace through one cache per policy
    # ------------------------------------------------------------------
    policy_rows = []
    policy_stats = {}
    for policy in _POLICIES:
        cache = ResultCache(
            memory_capacity=parameters["memory_capacity"], policy=policy
        )
        recomputed = 0.0
        for query_index in request_stream:
            digest = f"q{query_index:03d}"
            served = cache.get(digest)
            if served is None:
                # The "recompute" replays the pinned cold result at its
                # pinned cost, so hit placement — and the saved total — is a
                # deterministic function of the policy alone.
                recomputed += cold_seconds[query_index]
                cache.put(
                    digest,
                    cold_payloads[query_index],
                    compute_seconds=cold_seconds[query_index],
                )
            else:
                # Bit-identity: whatever the policy chose to keep, a hit
                # serves exactly the cold computation's payload.
                assert served == cold_payloads[query_index]

        stats = cache.stats()
        saved = stats.recompute_seconds_saved
        assert stats.policy == policy
        assert stats.requests == parameters["n_requests"]
        assert stats.evictions > 0  # the capacity bound actually bit
        # Work conservation: every request's recompute cost was either saved
        # by a cache hit or spent recomputing — nothing lost, nothing double-
        # counted.
        assert abs(saved + recomputed - stream_cost) < 1e-9
        policy_rows.append({"policy": policy, "saved_s": saved})
        policy_stats[policy] = {
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_rate": stats.hit_rate,
            "evictions": stats.evictions,
            "recomputed_s": recomputed,
            "memory_cost_s": stats.memory_cost_seconds,
        }

    saved_by_policy = {row["policy"]: row["saved_s"] for row in policy_rows}
    for row in policy_rows:
        row["speedup"] = (
            row["saved_s"] / saved_by_policy["lru"] if saved_by_policy["lru"] else 1.0
        )

    # ------------------------------------------------------------------
    # acceptance gate: cost-aware must save at least as much as LRU
    # ------------------------------------------------------------------
    assert saved_by_policy["cost-aware"] >= saved_by_policy["lru"], (
        f"cost-aware saved {saved_by_policy['cost-aware']:.3f}s of recompute "
        f"vs LRU's {saved_by_policy['lru']:.3f}s on the measured Zipf trace"
    )

    # ------------------------------------------------------------------
    # persist the baseline — full scale only (smoke never overwrites it)
    # ------------------------------------------------------------------
    if perf_output_directory is not None:
        results_directory = perf_output_directory
    elif scale != "full":
        return
    payload = {
        "benchmark": "perf_eviction",
        "scale": scale,
        "parameters": {
            "profiles": [list(profile) for profile in parameters["profiles"]],
            "methods": list(parameters["methods"]),
            "deltas": list(parameters["deltas"]),
            "n_requests": parameters["n_requests"],
            "memory_capacity": parameters["memory_capacity"],
            "zipf_exponent": parameters["zipf_exponent"],
            "modal_targets": _MODAL_TARGETS,
        },
        "distinct_queries": len(queries),
        "stream_recompute_s": stream_cost,
        "policies": policy_rows,
        "policy_stats": policy_stats,
    }
    (results_directory / "perf_eviction.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    detail_rows = [
        {
            "policy": row["policy"],
            "saved_s": row["saved_s"],
            "speedup": row["speedup"],
            **policy_stats[row["policy"]],
        }
        for row in policy_rows
    ]
    text = "\n\n".join(
        [
            f"perf_eviction (scale={scale})",
            f"Zipf replay: {parameters['n_requests']} requests over "
            f"{len(queries)} distinct queries, memory capacity "
            f"{parameters['memory_capacity']}, total stream recompute cost "
            f"{stream_cost:.3f}s",
            "Policy comparison (saved_s = recompute seconds served from "
            "cache; speedup normalised by lru)\n"
            + render_table(detail_rows, digits=4),
        ]
    )
    (results_directory / "perf_eviction.txt").write_text(text + "\n")
