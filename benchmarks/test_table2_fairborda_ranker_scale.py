"""Benchmark: regenerate Table II (Fair-Borda runtime vs |R|)."""

from __future__ import annotations

from repro.experiments import table2


def test_table2_fairborda_ranker_scale(benchmark, bench_scale, save_result):
    result = benchmark.pedantic(
        table2.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_result(result)

    rows = sorted(result.records, key=lambda record: record["n_rankings"])
    assert len(rows) >= 2
    assert all(record["runtime_s"] > 0 for record in rows)

    # Paper shape (Table II): runtime grows mildly with |R| — the largest tier
    # costs more than the smallest, but far less than proportionally (the
    # per-candidate correction dominates).
    smallest, largest = rows[0], rows[-1]
    ranking_ratio = largest["n_rankings"] / smallest["n_rankings"]
    runtime_ratio = largest["runtime_s"] / smallest["runtime_s"]
    assert runtime_ratio < ranking_ratio * 1.5
