"""Benchmark: regenerate Figure 4 (MFCR methods vs baselines on Low-Fair)."""

from __future__ import annotations

from repro.experiments import figure4


def test_figure4_method_comparison(benchmark, bench_scale, save_result):
    result = benchmark.pedantic(
        figure4.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_result(result)
    delta = result.parameters["delta"]

    fair_labels = ("A1", "A2", "A3", "A4", "B4")
    unaware_labels = ("B1", "B2")

    # Paper shape: every proposed method and B4 satisfy the threshold on every
    # panel; B1/B2 (and usually B3) do not.
    for label in fair_labels:
        for record in result.filtered(label=label):
            assert record["ARP Gender"] <= delta + 1e-6
            assert record["ARP Race"] <= delta + 1e-6
            assert record["IRP"] <= delta + 1e-6
    for label in unaware_labels:
        assert any(
            max(r["ARP Gender"], r["ARP Race"], r["IRP"]) > delta
            for r in result.filtered(label=label)
        )

    # PD-loss ordering at each theta: Kemeny <= Fair-Kemeny <= Correct-Fairest-Perm,
    # and Fair-Kemeny is the best of the fair methods.  The tolerance covers
    # the 1e-3 relative MIP gap Fair-Kemeny is solved with.
    tolerance = 2e-3
    thetas = sorted({record["theta"] for record in result.records})
    for theta in thetas:
        losses = {
            record["label"]: record["pd_loss"] for record in result.filtered(theta=theta)
        }
        assert losses["B1"] <= losses["A1"] + tolerance
        assert losses["A1"] <= min(losses["A2"], losses["A3"], losses["A4"]) + tolerance
        assert losses["A1"] <= losses["B4"] + tolerance
