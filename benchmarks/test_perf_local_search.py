"""Performance benchmark of the incremental Kemeny-delta local-search engine.

Times the engine-backed local Kemenization
(:func:`repro.aggregation.local_search.local_kemenization`, the hot path of
:class:`~repro.aggregation.local_search.LocalSearchKemenyAggregator`) against
the retained from-scratch pass
(:func:`repro.aggregation.local_search.local_kemenization_reference`), and the
fairness-preserving local repair
(:func:`repro.fair.local_repair.fair_local_kemenization`) against its
from-scratch reference, across the synthetic-experiment regimes.

Results are written to ``benchmarks/results/perf_local_search.{json,txt}`` so
every future PR inherits a local-search perf trajectory alongside the PR-2
hot-path and PR-3 datagen baselines.  Set ``MANI_RANK_PERF_SCALE=smoke`` for
the reduced configuration used by the CI perf smoke job; smoke runs assert
but do not persist results, so they never overwrite the committed full-scale
baseline.

Each configuration is timed from two seeds:

* the aggregator's own Borda seed (near locally optimal — measures the
  converged fast path, where the engine decides "nothing to do" with one
  vectorised gather);
* a *cold* seed (the reversed Borda consensus, i.e. post-processing an
  adversarially bad upstream ranking — measures the full bubble workload the
  carry-run sweep accelerates).

Hard assertions guarding the tentpole:

* the engine-backed search returns the **identical** ranking to the retained
  reference from both seeds, and ``LocalSearchKemenyAggregator`` equals the
  reference pipeline (Borda + reference local Kemenization) end to end;
* at the acceptance configuration (n = 200 candidates, m = 500 rankings at
  full scale) the cold-seed local search is >= 5x faster than the reference
  (>= 2x at smoke scale, where fixed per-call overheads weigh more);
* the fairness-preserving repair is >= 3x faster than its from-scratch
  reference at the acceptance configuration (>= 1.5x at smoke scale), with
  an identical swap sequence.
"""

from __future__ import annotations

import json
import os
import timeit

import numpy as np

from repro.aggregation.borda import BordaAggregator
from repro.aggregation.local_search import (
    LocalSearchKemenyAggregator,
    local_kemenization,
    local_kemenization_reference,
)
from repro.core.ranking import Ranking
from repro.datagen.attributes import scalability_table
from repro.datagen.fair_modal import calibrated_modal_ranking
from repro.datagen.mallows import sample_mallows
from repro.experiments.reporting import render_table
from repro.fair.local_repair import (
    fair_local_kemenization,
    fair_local_kemenization_reference,
)
from repro.fair.make_mr_fair import make_mr_fair

_SCALE_PARAMETERS = {
    "full": {
        "configurations": ((100, 200), (200, 500)),
        "theta": 0.3,
        "min_speedup": 5.0,
        "repair_min_speedup": 3.0,
    },
    "smoke": {
        "configurations": ((40, 60), (60, 100)),
        "theta": 0.3,
        "min_speedup": 2.0,
        "repair_min_speedup": 1.5,
    },
}

#: Generous pass budget so both implementations always run to convergence.
_MAX_PASSES = 1000

#: Modal-ranking parity targets of the repair benchmark's dataset.
_REPAIR_TARGETS = {"Race": 0.3, "Gender": 0.5}
_REPAIR_DELTA = 0.05


def _best_of(function, repeat: int = 5) -> float:
    """Minimum wall-clock seconds over ``repeat`` single runs."""
    return min(timeit.repeat(function, number=1, repeat=repeat))


def test_perf_local_search(results_directory):
    scale = os.environ.get("MANI_RANK_PERF_SCALE", "full")
    parameters = _SCALE_PARAMETERS[scale]
    theta = parameters["theta"]

    # ------------------------------------------------------------------
    # local Kemenization: engine vs from-scratch reference, warm + cold seed
    # ------------------------------------------------------------------
    search_rows = []
    for n_candidates, n_rankings in parameters["configurations"]:
        modal = Ranking(
            np.random.default_rng(n_candidates).permutation(n_candidates)
        )
        rankings = sample_mallows(modal, theta, n_rankings, rng=17)
        rankings.precedence_matrix()  # warm the shared cached kernel
        borda = BordaAggregator().aggregate(rankings)
        cold = Ranking(borda.order[::-1].copy())

        # Tentpole guarantee: the engine path and the aggregator are exactly
        # equivalent to the retained reference pipeline.
        aggregated = LocalSearchKemenyAggregator(
            max_passes=_MAX_PASSES
        ).aggregate(rankings)
        assert aggregated == local_kemenization_reference(
            rankings, borda, max_passes=_MAX_PASSES
        )

        for seed_label, seed in (("borda", borda), ("cold", cold)):
            engine_ranking = local_kemenization(
                rankings, seed, max_passes=_MAX_PASSES
            )
            reference_ranking = local_kemenization_reference(
                rankings, seed, max_passes=_MAX_PASSES
            )
            assert engine_ranking == reference_ranking

            engine_s = _best_of(
                lambda: local_kemenization(rankings, seed, max_passes=_MAX_PASSES)
            )
            reference_s = _best_of(
                lambda: local_kemenization_reference(
                    rankings, seed, max_passes=_MAX_PASSES
                )
            )
            search_rows.append(
                {
                    "n_candidates": n_candidates,
                    "n_rankings": n_rankings,
                    "seed": seed_label,
                    "engine_s": engine_s,
                    "reference_s": reference_s,
                    "speedup": reference_s / engine_s,
                }
            )

    # The speedup gate applies at the acceptance configuration: the largest
    # (n_candidates * n_rankings) cold-seed workload timed, regardless of
    # listing order.  MANI_RANK_PERF_MIN_SPEEDUP loosens the gate where
    # timings are noisy but the run should still regenerate results (the
    # nightly shared runners).
    min_speedup = float(
        os.environ.get("MANI_RANK_PERF_MIN_SPEEDUP", parameters["min_speedup"])
    )
    acceptance = max(
        (row for row in search_rows if row["seed"] == "cold"),
        key=lambda row: row["n_candidates"] * row["n_rankings"],
    )
    assert acceptance["speedup"] >= min_speedup, (
        f"engine-backed local Kemenization only {acceptance['speedup']:.1f}x "
        f"faster than the from-scratch reference at "
        f"n={acceptance['n_candidates']}, m={acceptance['n_rankings']} "
        f"(required {min_speedup}x)"
    )

    # ------------------------------------------------------------------
    # fairness-preserving local repair: both engines vs from-scratch
    # ------------------------------------------------------------------
    repair_rows = []
    for n_candidates, n_rankings in parameters["configurations"]:
        table = scalability_table(n_candidates, rng=7)
        modal = calibrated_modal_ranking(table, _REPAIR_TARGETS, rng=7)
        rankings = sample_mallows(modal, theta, n_rankings, rng=11)
        rankings.precedence_matrix()
        corrected = make_mr_fair(
            BordaAggregator().aggregate(rankings), table, _REPAIR_DELTA
        ).ranking

        engine_repair = fair_local_kemenization(
            rankings, corrected, table, _REPAIR_DELTA
        )
        reference_repair = fair_local_kemenization_reference(
            rankings, corrected, table, _REPAIR_DELTA
        )
        assert engine_repair.ranking == reference_repair.ranking
        assert engine_repair.n_swaps == reference_repair.n_swaps

        engine_s = _best_of(
            lambda: fair_local_kemenization(rankings, corrected, table, _REPAIR_DELTA)
        )
        reference_s = _best_of(
            lambda: fair_local_kemenization_reference(
                rankings, corrected, table, _REPAIR_DELTA
            )
        )
        repair_rows.append(
            {
                "n_candidates": n_candidates,
                "n_rankings": n_rankings,
                "n_swaps": engine_repair.n_swaps,
                "engine_s": engine_s,
                "reference_s": reference_s,
                "speedup": reference_s / engine_s,
            }
        )

    repair_min_speedup = float(
        os.environ.get(
            "MANI_RANK_PERF_MIN_SPEEDUP", parameters["repair_min_speedup"]
        )
    )
    repair_acceptance = max(
        repair_rows, key=lambda row: row["n_candidates"] * row["n_rankings"]
    )
    assert repair_acceptance["speedup"] >= repair_min_speedup, (
        f"fair local repair only {repair_acceptance['speedup']:.1f}x faster "
        f"than the from-scratch reference at "
        f"n={repair_acceptance['n_candidates']}, "
        f"m={repair_acceptance['n_rankings']} (required {repair_min_speedup}x)"
    )

    # ------------------------------------------------------------------
    # persist the trajectory — full scale only, so a smoke run (CI, quick
    # local checks) never overwrites the committed full-scale baseline
    # ------------------------------------------------------------------
    if scale != "full":
        return
    payload = {
        "benchmark": "perf_local_search",
        "scale": scale,
        "parameters": {
            "configurations": [list(pair) for pair in parameters["configurations"]],
            "theta": theta,
            "max_passes": _MAX_PASSES,
            "repair_targets": _REPAIR_TARGETS,
            "repair_delta": _REPAIR_DELTA,
        },
        "local_kemenization": search_rows,
        "fair_local_repair": repair_rows,
    }
    (results_directory / "perf_local_search.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    text = "\n\n".join(
        [
            f"perf_local_search (scale={scale})",
            "Local Kemenization (delta engine vs from-scratch reference)\n"
            + render_table(search_rows, digits=4),
            "Fair local repair (incremental engines vs from-scratch)\n"
            + render_table(repair_rows, digits=4),
        ]
    )
    (results_directory / "perf_local_search.txt").write_text(text + "\n")
