"""Perf gate of the streaming consensus engine: update cost vs recompute.

The batch pipeline answers a profile change by rebuilding everything: a fresh
:class:`~repro.core.ranking_set.RankingSet` (O(m n^2) precedence build) and a
cold aggregation plus PD-loss pass.  The streaming engine patches the cached
matrices per update (O(n^2) for a single ranking) and warm-starts
Make-MR-Fair + the fairness-preserving local search from the previous
consensus.  This benchmark measures one submit/retract round trip through
both consensus paths against the from-scratch recompute:

* ``update-and-repair`` — patch + warm-started repair (the streaming fast
  path); the acceptance gate requires **>= 10x** over recompute at the
  n = 200 / m = 500 full-scale configuration (>= 3x at smoke scale;
  ``MANI_RANK_PERF_MIN_SPEEDUP`` overrides for noisy shared runners).
* ``update-and-refresh`` — patch + the exact batch pipeline on the patched
  state; still skips every O(m n^2) term, and its payload is asserted
  **bit-identical** to ``compute_consensus_payload`` on a rebuilt profile.

The warm repair payload is likewise asserted bit-identical to the retained
from-scratch reference (``rebuild`` + reference Make-MR-Fair + reference
local repair).  Results are written to
``benchmarks/results/perf_streaming.{json,txt}`` at full scale (smoke asserts
without persisting unless ``MANI_RANK_PERF_RESULTS_DIR`` redirects output).
"""

from __future__ import annotations

import json
import os
import timeit

import numpy as np

from repro.cache.service import compute_consensus_payload
from repro.datagen.attributes import scalability_table
from repro.datagen.fair_modal import calibrated_modal_ranking
from repro.datagen.mallows import sample_mallows
from repro.experiments.reporting import render_table
from repro.streaming import StreamingConsensusEngine

_SCALE_PARAMETERS = {
    "full": {
        "n_candidates": 200,
        "n_rankings": 500,
        "theta": 1.0,
        "min_repair_speedup": 10.0,
        "min_refresh_speedup": 1.5,
        "repeat": 5,
    },
    "smoke": {
        "n_candidates": 60,
        "n_rankings": 100,
        "theta": 1.0,
        "min_repair_speedup": 3.0,
        "min_refresh_speedup": 1.1,
        "repeat": 3,
    },
}

_MODAL_TARGETS = {"Race": 0.3, "Gender": 0.5}


def _best_of(function, repeat: int = 5) -> float:
    """Minimum wall-clock seconds over ``repeat`` single runs."""
    return min(timeit.repeat(function, number=1, repeat=repeat))


def test_perf_streaming(results_directory, perf_output_directory):
    scale = os.environ.get("MANI_RANK_PERF_SCALE", "full")
    parameters = _SCALE_PARAMETERS[scale]
    n_candidates = parameters["n_candidates"]
    n_rankings = parameters["n_rankings"]

    table = scalability_table(n_candidates, rng=7)
    modal = calibrated_modal_ranking(table, _MODAL_TARGETS, rng=7)
    rankings = sample_mallows(modal, parameters["theta"], n_rankings, rng=11)
    churn = sample_mallows(modal, parameters["theta"], 8, rng=13)
    churn_orders = [ranking.to_list() for ranking in churn]

    engine = StreamingConsensusEngine(table, rankings=rankings)
    # Materialise the cached matrices and the warm-start seed: a streaming
    # deployment is steady-state warm, and updates patch these in place.
    rankings.position_matrix()
    rankings.precedence_matrix()
    rankings.margin_matrix()
    engine.consensus()

    # ------------------------------------------------------------------
    # bit-identity: the fast paths against their from-scratch references
    # ------------------------------------------------------------------
    engine.add_rankings([churn_orders[0]])
    assert engine.consensus() == engine.rebuild_reference()
    previous = engine.last_consensus
    engine.add_rankings([churn_orders[1]])
    assert engine.repair() == engine.repair_reference(previous)
    engine.remove_rankings([churn_orders[0], churn_orders[1]])

    # ------------------------------------------------------------------
    # timings: one submit + one retract through each path, halved per update
    # ------------------------------------------------------------------
    def recompute() -> dict:
        return compute_consensus_payload(engine.rebuild(), table)

    cursor = {"i": 0}

    def next_order() -> list[int]:
        order = churn_orders[cursor["i"] % len(churn_orders)]
        cursor["i"] += 1
        return order

    def update_and_repair() -> None:
        order = next_order()
        engine.add_rankings([order])
        engine.repair()
        engine.remove_rankings([order])
        engine.repair()

    def update_and_refresh() -> None:
        order = next_order()
        engine.add_rankings([order])
        engine.consensus()
        engine.remove_rankings([order])
        engine.consensus()

    repeat = parameters["repeat"]
    recompute_s = _best_of(recompute, repeat=3)
    repair_s = _best_of(update_and_repair, repeat=repeat) / 2.0
    refresh_s = _best_of(update_and_refresh, repeat=repeat) / 2.0

    repair_speedup = recompute_s / repair_s
    refresh_speedup = recompute_s / refresh_s
    min_repair = float(
        os.environ.get(
            "MANI_RANK_PERF_MIN_SPEEDUP", parameters["min_repair_speedup"]
        )
    )
    min_refresh = min(
        parameters["min_refresh_speedup"],
        float(
            os.environ.get(
                "MANI_RANK_PERF_MIN_SPEEDUP", parameters["min_refresh_speedup"]
            )
        ),
    )
    assert repair_speedup >= min_repair, (
        f"update-and-repair only {repair_speedup:.1f}x faster than recompute "
        f"at n={n_candidates}, m={n_rankings} (required {min_repair}x)"
    )
    assert refresh_speedup >= min_refresh, (
        f"update-and-refresh only {refresh_speedup:.1f}x faster than recompute "
        f"at n={n_candidates}, m={n_rankings} (required {min_refresh}x)"
    )

    # ------------------------------------------------------------------
    # persist the baseline — full scale only (smoke never overwrites it);
    # MANI_RANK_PERF_RESULTS_DIR redirects persistence to a scratch directory
    # ------------------------------------------------------------------
    if perf_output_directory is not None:
        results_directory = perf_output_directory
    elif scale != "full":
        return
    operations = [
        {
            "operation": "update-and-repair",
            "n_candidates": n_candidates,
            "n_rankings": n_rankings,
            "seconds": repair_s,
            "speedup": repair_speedup,
        },
        {
            "operation": "update-and-refresh",
            "n_candidates": n_candidates,
            "n_rankings": n_rankings,
            "seconds": refresh_s,
            "speedup": refresh_speedup,
        },
    ]
    payload = {
        "benchmark": "perf_streaming",
        "scale": scale,
        "parameters": {
            "n_candidates": n_candidates,
            "n_rankings": n_rankings,
            "theta": parameters["theta"],
            "modal_targets": _MODAL_TARGETS,
            "method": "fair-borda",
            "delta": 0.1,
        },
        "recompute_s": recompute_s,
        "operations": operations,
    }
    (results_directory / "perf_streaming.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    text = "\n\n".join(
        [
            f"perf_streaming (scale={scale})",
            f"From-scratch recompute (rebuild + re-aggregate) at "
            f"n={n_candidates}, m={n_rankings}: {recompute_s:.4f}s per update",
            "Streaming updates (one submit/retract round trip, halved)\n"
            + render_table(operations, digits=4),
        ]
    )
    (results_directory / "perf_streaming.txt").write_text(text + "\n")
