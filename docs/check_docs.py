"""Documentation checker: links resolve, CLI examples run, tables are complete.

CI's ``docs`` job runs this script from the repository root after installing
the package (``python docs/check_docs.py``); ``tests/test_docs.py`` runs the
same checks in-process so the tier-1 suite catches documentation rot without
a subprocess. Three checks:

1. every relative markdown link in ``README.md`` and ``docs/*.md`` points at
   a file or directory that exists (``http(s)://``, ``mailto:`` and pure
   anchor links are skipped, anchor suffixes are stripped);
2. every ``$ ...`` command inside a fenced ```` ```console ```` block is
   executed **verbatim** from the repository root and must exit 0 — blocks
   fenced as ``sh`` are illustrative (e.g. the backgrounded ``serve``
   pipeline) and are not executed;
3. the README mentions every registered fair consensus method, so the
   method table cannot silently fall behind the registry.
"""

from __future__ import annotations

import re
import shlex
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown link targets: ``[text](target)``. Images and reference-style
#: links are not used in this repository's docs.
_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Fenced blocks whose commands must run verbatim: ```` ```console ````.
_CONSOLE_PATTERN = re.compile(r"```console\n(.*?)```", re.DOTALL)


def documentation_files() -> list[Path]:
    """README plus every markdown page under docs/."""
    return [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]


def check_links(paths=None) -> list[str]:
    """Return one error string per relative link that does not resolve."""
    errors = []
    for path in paths or documentation_files():
        for target in _LINK_PATTERN.findall(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not (path.parent / relative).exists():
                errors.append(f"{path.relative_to(REPO_ROOT)}: broken link {target!r}")
    return errors


def console_commands(paths=None) -> list[str]:
    """Every ``$ ...`` command found in ```console blocks, in order."""
    commands = []
    for path in paths or documentation_files():
        for block in _CONSOLE_PATTERN.findall(path.read_text()):
            for line in block.splitlines():
                if line.startswith("$ "):
                    commands.append(line[2:].strip())
    return commands


def _subprocess_runner(command: str) -> int:
    return subprocess.run(shlex.split(command), cwd=REPO_ROOT).returncode


def check_console_blocks(paths=None, runner=_subprocess_runner) -> list[str]:
    """Execute each documented command verbatim; return failures.

    ``runner`` maps a command string to an exit code — the default spawns the
    real binary, the test suite injects an in-process ``repro.cli.main``
    dispatch.
    """
    errors = []
    for command in console_commands(paths):
        code = runner(command)
        if code != 0:
            errors.append(f"documented command failed (exit {code}): {command}")
    return errors


def check_method_table(readme: Path | None = None) -> list[str]:
    """The README must name every method the registry can serve."""
    from repro.fair.registry import available_fair_methods

    text = (readme or REPO_ROOT / "README.md").read_text()
    return [
        f"README.md: registered method {method!r} is not documented"
        for method in available_fair_methods()
        if f"`{method}`" not in text
    ]


def main() -> int:
    """Run all checks; print every failure and return a shell exit code."""
    errors = check_links() + check_method_table() + check_console_blocks()
    for error in errors:
        print(f"FAIL: {error}")
    checked = documentation_files()
    print(
        f"checked {len(checked)} files, {len(console_commands())} console "
        f"commands: {'FAILED' if errors else 'ok'}"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
