"""Unit tests for the resilience primitives (injected clocks, no sleeps)."""

from __future__ import annotations

import asyncio

import pytest

from repro.cache.resilience import (
    AdmissionController,
    AsyncClock,
    CircuitBreaker,
    LatencyRecorder,
    RetryPolicy,
    ServerLimits,
)
from tests.cache.faults import ManualClock, enospc


class TestRetryPolicy:
    def test_first_try_success_never_sleeps(self):
        slept = []
        policy = RetryPolicy(attempts=3, sleep=slept.append)
        assert policy.call(lambda: 42) == 42
        assert slept == []

    def test_transient_failure_recovers_with_backoff(self):
        slept = []
        attempts = iter([enospc(), enospc(), "ok"])
        policy = RetryPolicy(attempts=3, base_delay=0.01, multiplier=2.0, sleep=slept.append)

        def operation():
            outcome = next(attempts)
            if isinstance(outcome, BaseException):
                raise outcome
            return outcome

        assert policy.call(operation) == "ok"
        assert slept == [0.01, 0.02]

    def test_persistent_failure_raises_after_budget(self):
        slept = []
        policy = RetryPolicy(attempts=3, sleep=slept.append)
        calls = []

        def operation():
            calls.append(1)
            raise enospc()

        with pytest.raises(OSError):
            policy.call(operation)
        assert len(calls) == 3
        assert len(slept) == 2

    def test_file_not_found_is_never_retried(self):
        calls = []

        def operation():
            calls.append(1)
            raise FileNotFoundError("gone")

        policy = RetryPolicy(attempts=5, sleep=lambda _: pytest.fail("slept"))
        with pytest.raises(FileNotFoundError):
            policy.call(operation)
        assert len(calls) == 1

    def test_non_retryable_exception_passes_through(self):
        policy = RetryPolicy(attempts=3, sleep=lambda _: pytest.fail("slept"))
        with pytest.raises(KeyError):
            policy.call(lambda: (_ for _ in ()).throw(KeyError("x")))

    def test_attempts_must_be_positive(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = ManualClock()
        breaker = CircuitBreaker(failure_threshold=3, recovery_after=30.0, clock=clock)
        assert breaker.state == "closed"
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.open_count == 1
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=ManualClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_recovers(self):
        clock = ManualClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_after=10.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()  # the single half-open probe
        assert breaker.state == "half-open"
        assert not breaker.allow()  # probe already in flight
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = ManualClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_after=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.open_count == 2
        assert not breaker.allow()  # the recovery clock restarted
        clock.advance(10.0)
        assert breaker.allow()

    def test_neutral_outcome_does_not_reset_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=ManualClock())
        breaker.record_failure()
        breaker.record_neutral()
        breaker.record_failure()
        assert breaker.state == "open"

    def test_inconclusive_half_open_probe_releases_the_probe_slot(self):
        clock = ManualClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_after=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        assert breaker.state == "half-open"
        breaker.record_neutral()  # the probe never exercised the guarded path
        assert breaker.state == "open"
        assert breaker.open_count == 1  # not a re-open
        assert breaker.allow()  # the next caller probes immediately
        breaker.record_success()
        assert breaker.state == "closed"

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)


class TestAdmissionController:
    def run(self, coroutine):
        return asyncio.run(coroutine)

    def test_admits_below_budget(self):
        async def scenario():
            admission = AdmissionController(max_inflight=2, queue_depth=0)
            assert await admission.acquire()
            assert await admission.acquire()
            assert admission.active == 2
            return admission

        admission = self.run(scenario())
        assert admission.shed == 0

    def test_sheds_beyond_budget_and_queue(self):
        async def scenario():
            admission = AdmissionController(max_inflight=1, queue_depth=0)
            assert await admission.acquire()
            assert not await admission.acquire()  # no queue: shed immediately
            assert admission.shed == 1
            admission.release()
            assert await admission.acquire()  # slot free again
            return admission.snapshot()

        snapshot = self.run(scenario())
        assert snapshot["shed"] == 1
        assert snapshot["admitted"] == 2

    def test_queue_hands_the_slot_to_the_oldest_waiter(self):
        async def scenario():
            admission = AdmissionController(max_inflight=1, queue_depth=2)
            assert await admission.acquire()
            first = asyncio.create_task(admission.acquire())
            second = asyncio.create_task(admission.acquire())
            await asyncio.sleep(0)  # park both waiters
            assert admission.queued == 2
            assert not await admission.acquire()  # queue full: shed
            admission.release()
            assert await first
            assert not second.done()  # only one slot was freed
            admission.release()
            assert await second
            admission.release()
            return admission.snapshot()

        snapshot = self.run(scenario())
        assert snapshot["shed"] == 1
        assert snapshot["inflight"] == 0

    def test_cancelled_waiter_does_not_leak_the_slot(self):
        async def scenario():
            admission = AdmissionController(max_inflight=1, queue_depth=1)
            assert await admission.acquire()
            waiter = asyncio.create_task(admission.acquire())
            await asyncio.sleep(0)
            waiter.cancel()
            await asyncio.gather(waiter, return_exceptions=True)
            admission.release()
            assert admission.active == 0  # the cancelled waiter was skipped
            assert await admission.acquire()
            return admission

        admission = self.run(scenario())
        assert admission.active == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="max_inflight"):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError, match="queue_depth"):
            AdmissionController(queue_depth=-1)


class TestLatencyRecorder:
    def test_empty_snapshot_is_zeroed(self):
        snapshot = LatencyRecorder().snapshot()
        assert snapshot == {
            "count": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p90_ms": 0.0, "p99_ms": 0.0,
        }

    def test_percentiles_over_a_known_sample(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):  # 1ms .. 100ms
            recorder.record(value / 1000.0)
        snapshot = recorder.snapshot()
        assert snapshot["count"] == 100
        assert snapshot["p50_ms"] == pytest.approx(51.0)
        assert snapshot["p90_ms"] == pytest.approx(90.0, abs=1.0)
        assert snapshot["p99_ms"] == pytest.approx(99.0, abs=1.0)
        assert snapshot["mean_ms"] == pytest.approx(50.5)

    def test_window_bounds_memory(self):
        recorder = LatencyRecorder(window=10)
        for value in range(100):
            recorder.record(float(value))
        snapshot = recorder.snapshot()
        assert snapshot["count"] == 100  # lifetime count survives the window
        assert snapshot["p50_ms"] >= 90_000  # only the last 10 samples remain


class TestAsyncClockAndLimits:
    def test_async_clock_wait_for_passes_result_through(self):
        async def scenario():
            clock = AsyncClock()
            assert clock.monotonic() > 0

            async def quick():
                return "done"

            assert await clock.wait_for(quick(), timeout=5.0) == "done"
            await clock.sleep(0)

        asyncio.run(scenario())

    def test_server_limits_defaults(self):
        limits = ServerLimits()
        assert limits.read_timeout == 10.0
        assert limits.max_header_count == 100
        assert limits.max_header_bytes == 8192
        assert limits.max_body_bytes == 64 * 1024 * 1024
