"""Deterministic fault injection for the serving resilience suite.

Three families of tools, all sleep-free:

- :class:`FlakyFilesystem` — a :class:`~repro.cache.store.LocalFilesystem`
  that fails, torn-writes, or keeps failing specific operations on a
  schedule, so the disk-fault tests (ENOSPC on put, permission-denied loads,
  stat races) are exact scripts instead of monkeypatch roulette.
- :class:`VirtualClock` / :class:`ManualClock` — time sources whose clock
  only advances when the test says so.  ``VirtualClock`` implements the
  :class:`~repro.cache.resilience.AsyncClock` interface the HTTP server takes
  every deadline through, so slowloris/drain scenarios resolve on
  ``advance()`` instead of wall time.
- Misbehaving raw-socket clients — helpers that speak just enough HTTP/1.1
  to hold connections half-open (slowloris), truncate bodies, or send
  garbage/oversized headers, plus a well-behaved :func:`http_request` for the
  control measurements.

Plus :class:`GateService`, a service stand-in whose ``aggregate`` blocks on a
:class:`threading.Event` (it runs on the server's executor), giving the
shed/drain tests a deterministic way to hold a request in flight.
"""

from __future__ import annotations

import asyncio
import contextlib
import errno
import heapq
import itertools
import json
import os
import threading
from collections import Counter, defaultdict, deque
from pathlib import Path

from repro.cache.store import LocalFilesystem


def enospc() -> OSError:
    """A fresh ``ENOSPC`` (disk full) error."""
    return OSError(errno.ENOSPC, os.strerror(errno.ENOSPC))


def eacces() -> PermissionError:
    """A fresh ``EACCES`` (permission denied) error."""
    return PermissionError(errno.EACCES, os.strerror(errno.EACCES))


class FlakyFilesystem(LocalFilesystem):
    """Filesystem seam that fails operations on an explicit schedule.

    ``fail_next(op, error, times)`` queues one-shot failures consumed in
    order; ``fail_always(op, error)`` installs a persistent failure until
    ``heal(op)``; ``torn_write(times)`` makes ``write_text`` persist only the
    first half of the text before raising ``ENOSPC`` — the torn blob is what
    the corruption quarantine must catch.  ``calls`` counts every operation,
    fault-injected or not.
    """

    _TORN = "torn"

    def __init__(self) -> None:
        """Start with no scheduled faults."""
        self._scheduled: dict[str, deque] = defaultdict(deque)
        self._persistent: dict[str, BaseException] = {}
        self.calls: Counter[str] = Counter()

    def fail_next(self, operation: str, error: BaseException, times: int = 1) -> None:
        """Queue ``times`` one-shot failures for ``operation``."""
        for _ in range(times):
            self._scheduled[operation].append(error)

    def fail_always(self, operation: str, error: BaseException) -> None:
        """Fail every ``operation`` with ``error`` until :meth:`heal`."""
        self._persistent[operation] = error

    def torn_write(self, times: int = 1) -> None:
        """Make the next ``times`` ``write_text`` calls persist half, then raise."""
        for _ in range(times):
            self._scheduled["write_text"].append(self._TORN)

    def heal(self, operation: str | None = None) -> None:
        """Clear the persistent failure for ``operation`` (or all of them)."""
        if operation is None:
            self._persistent.clear()
        else:
            self._persistent.pop(operation, None)

    def _next_fault(self, operation: str):
        """Consume and return the pending fault for ``operation``, if any."""
        self.calls[operation] += 1
        queued = self._scheduled.get(operation)
        if queued:
            return queued.popleft()
        return self._persistent.get(operation)

    def read_text(self, path: Path) -> str:
        """Read, unless a fault is scheduled."""
        fault = self._next_fault("read_text")
        if fault is not None:
            raise fault
        return super().read_text(path)

    def write_text(self, path: Path, text: str) -> None:
        """Write, torn-write, or fail per the schedule."""
        fault = self._next_fault("write_text")
        if fault is self._TORN:
            super().write_text(path, text[: len(text) // 2])
            raise enospc()
        if fault is not None:
            raise fault
        super().write_text(path, text)

    def replace(self, source: Path, destination: Path) -> None:
        """Rename, unless a fault is scheduled."""
        fault = self._next_fault("replace")
        if fault is not None:
            raise fault
        super().replace(source, destination)

    def unlink(self, path: Path, missing_ok: bool = False) -> None:
        """Unlink, unless a fault is scheduled."""
        fault = self._next_fault("unlink")
        if fault is not None:
            raise fault
        super().unlink(path, missing_ok=missing_ok)

    def glob(self, directory: Path, pattern: str) -> list[Path]:
        """List, unless a fault is scheduled."""
        fault = self._next_fault("glob")
        if fault is not None:
            raise fault
        return super().glob(directory, pattern)

    def stat(self, path: Path) -> os.stat_result:
        """Stat, unless a fault is scheduled."""
        fault = self._next_fault("stat")
        if fault is not None:
            raise fault
        return super().stat(path)


class ManualClock:
    """Callable monotonic clock advanced by hand (for breaker/retry tests)."""

    def __init__(self, start: float = 0.0) -> None:
        """Start the clock at ``start`` seconds."""
        self.now = start

    def __call__(self) -> float:
        """Current virtual time."""
        return self.now

    def advance(self, seconds: float) -> None:
        """Move the clock forward."""
        self.now += seconds


class VirtualClock:
    """Sleep-free :class:`~repro.cache.resilience.AsyncClock` replacement.

    ``monotonic()`` returns virtual time; ``wait_for``/``sleep`` park their
    timers on a heap that only fires when the test calls :meth:`advance` from
    inside the event loop.  ``pending_timers`` lets a test wait (by yielding)
    until the server is actually parked on a deadline before advancing.
    """

    def __init__(self) -> None:
        """Start at t=0 with no pending timers."""
        self._now = 0.0
        self._timers: list[tuple[float, int, asyncio.Future]] = []
        self._sequence = itertools.count()
        self.timers_created = 0

    def monotonic(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def pending_timers(self) -> int:
        """Number of armed, unfired timers (deadlines the server waits on)."""
        return sum(1 for _, _, future in self._timers if not future.done())

    def advance(self, seconds: float) -> None:
        """Move virtual time forward, firing every timer now due."""
        self._now += seconds
        while self._timers and self._timers[0][0] <= self._now:
            _, _, future = heapq.heappop(self._timers)
            if not future.done():
                future.set_result(None)

    def _arm(self, delay: float) -> asyncio.Future:
        """Register a timer ``delay`` virtual seconds out."""
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        heapq.heappush(self._timers, (self._now + delay, next(self._sequence), future))
        self.timers_created += 1
        return future

    async def sleep(self, delay: float) -> None:
        """Suspend until the clock is advanced past ``delay``."""
        await self._arm(delay)

    async def wait_for(self, awaitable, timeout: float):
        """Race ``awaitable`` against a virtual timer; timeout raises as asyncio does."""
        task = asyncio.ensure_future(awaitable)
        timer = self._arm(timeout)
        try:
            done, _ = await asyncio.wait(
                {task, timer}, return_when=asyncio.FIRST_COMPLETED
            )
            if task in done:
                timer.cancel()
                return task.result()
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
            raise asyncio.TimeoutError()
        except asyncio.CancelledError:
            timer.cancel()
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
            raise


async def yield_until(predicate, ticks: int = 10_000) -> None:
    """Spin the event loop (no wall-clock waiting) until ``predicate()`` holds."""
    for _ in range(ticks):
        if predicate():
            return
        await asyncio.sleep(0)
    raise AssertionError("predicate never became true while yielding")


class GateService:
    """Service stand-in whose ``aggregate`` blocks until the test releases it.

    ``started`` is set from the executor thread as soon as a request is in
    flight (tests wait on it via a second executor thread — event-driven, no
    polling); ``gate`` releases the response.  ``stats``/``health`` return
    empty-ish payloads so ``/stats`` and ``/healthz`` keep working.
    """

    def __init__(self) -> None:
        """Create the gate (closed) and the started signal (unset)."""
        self.gate = threading.Event()
        self.started = threading.Event()
        self.calls = 0

    def aggregate(self, *args, **kwargs) -> dict:
        """Signal arrival, block on the gate, then answer a canned payload."""
        self.calls += 1
        self.started.set()
        assert self.gate.wait(timeout=30), "GateService gate never released"
        return {"key": "gate", "cached": False, "result": {"ok": True}}

    def stats(self) -> dict:
        """Empty cache counters."""
        return {}

    def health(self) -> dict:
        """Healthy, never degraded."""
        return {"disk_degraded": False, "breaker_state": "closed", "disk_errors": 0}


# ----------------------------------------------------------------------
# raw-socket clients
# ----------------------------------------------------------------------
async def read_http_response(reader: asyncio.StreamReader):
    """Read one ``Connection: close`` response; return (status, headers, body)."""
    raw = await reader.read()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(body) if body else {}


async def http_request(host, port, verb, path, body=None):
    """Well-behaved request; return (status, headers, parsed JSON body)."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = b"" if body is None else json.dumps(body).encode()
    head = (
        f"{verb} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    response = await read_http_response(reader)
    writer.close()
    await writer.wait_closed()
    return response


async def send_raw(host, port, data: bytes, close_write: bool = False):
    """Send raw bytes (optionally half-closing) and return the parsed response."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(data)
    await writer.drain()
    if close_write:
        writer.write_eof()
    response = await read_http_response(reader)
    writer.close()
    await writer.wait_closed()
    return response


async def slowloris_connect(host, port, partial: bytes):
    """Open a connection, send a partial request, and hold it open.

    Returns ``(reader, writer)`` so the test can keep the connection pinned
    and later collect the server's timeout response (or observe the close).
    """
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(partial)
    await writer.drain()
    return reader, writer
