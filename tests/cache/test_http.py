"""Tests for the asyncio HTTP front-end (raw-socket clients, no extra deps)."""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.cache.http import ConsensusHTTPServer, run_server
from repro.cache.service import ConsensusCacheService, compute_consensus_payload
from repro.io.csv_io import write_candidate_table, write_ranking_set
from repro.io.serialization import candidate_table_to_dict, ranking_set_to_dict

DELTA = 0.35


async def http_request(host, port, verb, path, body=None):
    """Issue one HTTP/1.1 request with a raw asyncio socket, return (status, json)."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = b"" if body is None else json.dumps(body).encode()
    head = (
        f"{verb} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read()  # server always closes the connection
    writer.close()
    await writer.wait_closed()
    header_text, _, body_bytes = raw.partition(b"\r\n\r\n")
    status = int(header_text.split()[1])
    return status, json.loads(body_bytes)


def with_server(scenario, service=None, max_requests=None):
    """Run ``scenario(host, port)`` against a fresh server on a free port."""

    async def main():
        server = ConsensusHTTPServer(
            service or ConsensusCacheService(), port=0, max_requests=max_requests
        )
        host, port = await server.start()
        serve_task = asyncio.create_task(server.serve())
        try:
            return await scenario(host, port), serve_task.done()
        finally:
            server.request_stop()
            await serve_task

    return asyncio.run(main())


@pytest.fixture
def query_body(tiny_table, tiny_rankings):
    return {
        "rankings": ranking_set_to_dict(tiny_rankings),
        "candidates": candidate_table_to_dict(tiny_table),
        "delta": DELTA,
    }


class TestEndpoints:
    def test_aggregate_miss_then_hit(self, query_body, tiny_table, tiny_rankings):
        cold = compute_consensus_payload(tiny_rankings, tiny_table, delta=DELTA)

        async def scenario(host, port):
            first = await http_request(host, port, "POST", "/aggregate", query_body)
            second = await http_request(host, port, "POST", "/aggregate", query_body)
            return first, second

        (first, second), _ = with_server(scenario)
        assert first[0] == second[0] == 200
        assert first[1]["cached"] is False
        assert second[1]["cached"] is True
        assert first[1]["result"] == second[1]["result"] == cold

    def test_fairness_projection_shares_the_cache_entry(self, query_body):
        async def scenario(host, port):
            await http_request(host, port, "POST", "/aggregate", query_body)
            return await http_request(host, port, "POST", "/fairness", query_body)

        (status, payload), _ = with_server(scenario)
        assert status == 200
        assert payload["cached"] is True  # /aggregate already populated the entry
        assert payload["method_label"] == "Fair-Borda"
        assert "IRP" in payload["fairness"]
        assert set(payload) == {
            "key", "cached", "method", "method_label", "pd_loss", "parity", "fairness",
        }

    def test_csv_path_inputs(self, tmp_path, tiny_table, tiny_rankings):
        candidates_csv = tmp_path / "candidates.csv"
        rankings_csv = tmp_path / "rankings.csv"
        write_candidate_table(tiny_table, candidates_csv)
        write_ranking_set(tiny_rankings, tiny_table, rankings_csv)
        body = {
            "rankings_csv": str(rankings_csv),
            "candidates_csv": str(candidates_csv),
            "delta": DELTA,
        }

        async def scenario(host, port):
            return await http_request(host, port, "POST", "/aggregate", body)

        (status, payload), _ = with_server(scenario)
        assert status == 200
        assert payload["result"]["method_label"] == "Fair-Borda"

    def test_stats_counters(self, query_body):
        service = ConsensusCacheService()

        async def scenario(host, port):
            await http_request(host, port, "POST", "/aggregate", query_body)
            await http_request(host, port, "POST", "/aggregate", query_body)
            return await http_request(host, port, "GET", "/stats")

        (status, payload), _ = with_server(scenario, service=service)
        assert status == 200
        assert payload["cache"]["hits"] == 1
        assert payload["cache"]["misses"] == 1
        assert payload["server"]["requests"] == 2  # responses completed before /stats
        assert payload["server"]["endpoints"] == {"/aggregate": 2, "/stats": 1}
        assert "fair-borda-insertion" in payload["methods"]
        backends = payload["kernel_backend"]
        assert backends["active"]["name"] in backends["available"]
        assert isinstance(backends["active"]["compiled"], bool)
        assert backends["env_var"] == "MANI_RANK_BACKEND"

    def test_healthz_reports_kernel_backend(self):
        async def scenario(host, port):
            return await http_request(host, port, "GET", "/healthz")

        (status, payload), _ = with_server(scenario)
        assert status == 200
        assert payload["status"] == "ok"
        assert set(payload["kernel_backend"]) == {"name", "compiled", "detail"}


class TestErrors:
    def test_unknown_path_is_404(self):
        async def scenario(host, port):
            return await http_request(host, port, "GET", "/nope")

        (status, payload), _ = with_server(scenario)
        assert status == 404
        assert payload["paths"] == [
            "/aggregate", "/consensus", "/fairness", "/healthz", "/readyz",
            "/stats", "/update",
        ]

    def test_wrong_verb_is_405(self):
        async def scenario(host, port):
            return await http_request(host, port, "GET", "/aggregate")

        (status, _), _ = with_server(scenario)
        assert status == 405

    def test_invalid_json_is_400(self):
        async def scenario(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            body = b"{not json"
            writer.write(
                f"POST /aggregate HTTP/1.1\r\nContent-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            return int(raw.split()[1]), json.loads(raw.partition(b"\r\n\r\n")[2])

        (status, payload), _ = with_server(scenario)
        assert status == 400
        assert "not valid JSON" in payload["error"]

    def test_missing_inputs_is_400(self):
        async def scenario(host, port):
            return await http_request(host, port, "POST", "/aggregate", {"delta": 0.1})

        (status, payload), _ = with_server(scenario)
        assert status == 400
        assert "rankings" in payload["error"]

    def test_unknown_method_is_400(self, query_body):
        async def scenario(host, port):
            return await http_request(
                host, port, "POST", "/aggregate", {**query_body, "method": "nope"}
            )

        (status, payload), _ = with_server(scenario)
        assert status == 400
        assert "unknown fair consensus method" in payload["error"]

    def test_out_of_range_delta_is_400(self, query_body):
        async def scenario(host, port):
            return await http_request(
                host, port, "POST", "/aggregate", {**query_body, "delta": 2.0}
            )

        (status, payload), _ = with_server(scenario)
        assert status == 400
        assert "error" in payload

    def test_malformed_request_line_is_400(self):
        async def scenario(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GIBBERISH\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            return int(raw.split()[1])

        status, _ = with_server(scenario)
        assert status == 400


class TestLifecycle:
    def test_max_requests_triggers_clean_shutdown(self, query_body):
        async def scenario(host, port):
            await http_request(host, port, "POST", "/aggregate", query_body)
            await http_request(host, port, "GET", "/stats")
            # Give the serve loop a tick to observe the exhausted budget.
            await asyncio.sleep(0.05)
            return None

        _, serve_done = with_server(scenario, max_requests=2)
        assert serve_done  # serve() returned on its own, no request_stop needed

    def test_run_server_blocks_until_budget_spent(self, query_body):
        """The blocking entry point behind ``mani-rank serve`` exits cleanly."""
        responses = {}
        threads = []

        def client(address):
            import urllib.request

            host, port = address
            data = json.dumps(query_body).encode()
            request = urllib.request.Request(
                f"http://{host}:{port}/aggregate", data=data, method="POST"
            )
            with urllib.request.urlopen(request) as response:
                responses["aggregate"] = json.loads(response.read())
            with urllib.request.urlopen(f"http://{host}:{port}/stats") as response:
                responses["stats"] = json.loads(response.read())

        def on_ready(address):
            thread = threading.Thread(target=client, args=(address,), daemon=True)
            threads.append(thread)
            thread.start()

        exit_code = run_server(port=0, max_requests=2, on_ready=on_ready)
        threads[0].join(timeout=10)
        assert exit_code == 0
        assert responses["aggregate"]["cached"] is False
        assert responses["stats"]["cache"]["misses"] == 1
