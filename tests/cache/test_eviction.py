"""Eviction-policy suite: LRU bit-identity, cost-aware/clock semantics, TTL.

The ``lru`` policy is pinned to a from-scratch simulation of the pre-refactor
``OrderedDict`` memory tier on randomized traces — same hit/miss sequence,
same eviction order, same survivors — so the refactor provably changed
nothing for the default configuration.  TTL expiry runs entirely on the
injected :class:`~tests.cache.faults.ManualClock` (no wall-clock reads), and
the satellite regression tests cover the two accounting bugfixes (``stats()``
listing errors, construction-sweep breaker feed) plus the pressure-derived
``Retry-After`` computation.
"""

from __future__ import annotations

import asyncio
import random
from collections import OrderedDict

import pytest

from repro.cache.eviction import (
    ClockPolicy,
    CostAwarePolicy,
    LRUPolicy,
    available_policies,
    create_policy,
)
from repro.cache.http import ConsensusHTTPServer
from repro.cache.resilience import CLOSED, OPEN, CircuitBreaker, RetryPolicy
from repro.cache.store import ResultCache
from tests.cache.faults import FlakyFilesystem, GateService, ManualClock, eacces, enospc


def payload(tag: int) -> dict:
    return {"tag": tag, "consensus": list(range(tag, tag + 3))}


def instant_retry(attempts: int = 3) -> RetryPolicy:
    return RetryPolicy(attempts=attempts, sleep=lambda _: None)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_available_policies(self):
        assert available_policies() == ("lru", "cost-aware", "clock")

    def test_create_policy_by_name_and_instance(self):
        assert isinstance(create_policy("lru"), LRUPolicy)
        assert isinstance(create_policy("cost-aware"), CostAwarePolicy)
        assert isinstance(create_policy("clock"), ClockPolicy)
        instance = LRUPolicy()
        assert create_policy(instance) is instance

    def test_unknown_policy_is_rejected(self):
        with pytest.raises(ValueError, match="unknown eviction policy"):
            create_policy("mru")
        with pytest.raises(ValueError, match="unknown eviction policy"):
            ResultCache(policy="nope")

    def test_stats_reports_the_policy_name(self):
        assert ResultCache(policy="clock").stats().policy == "clock"
        assert ResultCache().stats().policy == "lru"


# ----------------------------------------------------------------------
# lru: bit-identical to the pre-refactor OrderedDict implementation
# ----------------------------------------------------------------------
class LegacyLRUMemoryTier:
    """From-scratch simulation of the pre-refactor ``OrderedDict`` memory tier.

    Mirrors the PR 6 ``ResultCache`` memory path verbatim: ``put`` inserts and
    ``move_to_end``s, then ``popitem(last=False)`` while over capacity; a hit
    ``move_to_end``s.  The eviction order is recorded so traces can compare
    sequences, not just final membership.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.memory: OrderedDict[str, dict] = OrderedDict()
        self.evicted: list[str] = []
        self.hits = 0
        self.misses = 0

    def put(self, digest: str, value: dict) -> None:
        self.memory[digest] = value
        self.memory.move_to_end(digest)
        while len(self.memory) > self.capacity:
            victim, _ = self.memory.popitem(last=False)
            self.evicted.append(victim)

    def get(self, digest: str) -> dict | None:
        if digest in self.memory:
            self.memory.move_to_end(digest)
            self.hits += 1
            return self.memory[digest]
        self.misses += 1
        return None


class TestLRUPinnedToLegacyBehaviour:
    @pytest.mark.parametrize("seed", range(8))
    def test_policy_victim_sequence_matches_ordereddict(self, seed):
        """Drive the bare policy and an OrderedDict through one random trace."""
        rng = random.Random(seed)
        keys = [f"k{index}" for index in range(12)]
        policy = LRUPolicy()
        reference: OrderedDict[str, None] = OrderedDict()
        victims: list[tuple[str, str]] = []
        for _ in range(400):
            action = rng.random()
            digest = rng.choice(keys)
            if action < 0.45:
                policy.on_admit(digest, 0.0, 0)
                reference[digest] = None
                reference.move_to_end(digest)
            elif action < 0.8 and digest in reference:
                policy.on_hit(digest, 0.0, 1)
                reference.move_to_end(digest)
            elif reference:
                victims.append((policy.victim(), reference.popitem(last=False)[0]))
        assert victims, "trace never evicted; rebalance the action mix"
        for actual, expected in victims:
            assert actual == expected

    @pytest.mark.parametrize("seed", range(8))
    def test_cache_trace_matches_legacy_cache(self, seed):
        """Random put/get traces: same hits, misses, evictions, survivors."""
        rng = random.Random(1000 + seed)
        capacity = rng.randint(2, 6)
        cache = ResultCache(memory_capacity=capacity, policy="lru")
        legacy = LegacyLRUMemoryTier(capacity)
        keys = [f"k{index}" for index in range(10)]
        for step in range(500):
            digest = rng.choice(keys)
            if rng.random() < 0.4:
                value = payload(step)
                cache.put(digest, value)
                legacy.put(digest, value)
            else:
                assert cache.get(digest) == legacy.get(digest)
        stats = cache.stats()
        assert stats.hits == legacy.hits
        assert stats.misses == legacy.misses
        assert stats.evictions == len(legacy.evicted)
        assert stats.memory_entries == len(legacy.memory)
        for digest in keys:  # identical survivors serve identical payloads
            assert cache.get(digest) == legacy.get(digest)


# ----------------------------------------------------------------------
# cost-aware / clock semantics
# ----------------------------------------------------------------------
class TestCostAwarePolicy:
    def test_expensive_entries_outlive_cheap_ones(self):
        cache = ResultCache(memory_capacity=2, policy="cost-aware")
        cache.put("cheap", payload(1), compute_seconds=0.01)
        cache.put("pricey", payload(2), compute_seconds=10.0)
        cache.put("newcomer", payload(3), compute_seconds=0.01)
        assert cache.get("cheap") is None  # lowest priority lost the slot
        assert cache.get("pricey") == payload(2)
        assert cache.get("newcomer") == payload(3)

    def test_frequency_raises_priority(self):
        policy = CostAwarePolicy()
        policy.on_admit("hot", 1.0, 0)
        policy.on_admit("cold", 1.0, 0)
        policy.on_hit("hot", 1.0, 5)  # priority 6.0 vs cold's 1.0
        assert policy.victim() == "cold"

    def test_inflation_ages_resident_entries(self):
        policy = CostAwarePolicy()
        policy.on_admit("old", 2.0, 0)  # priority 2.0 at L=0
        policy.on_admit("doomed", 1.0, 0)
        assert policy.victim() == "doomed"  # L jumps to 1.0
        policy.on_admit("fresh", 1.5, 0)  # priority 1.0 + 1.5 = 2.5 > old's 2.0
        assert policy.victim() == "old"

    def test_saved_seconds_accumulate_per_hit(self):
        cache = ResultCache(policy="cost-aware")
        cache.put("a", payload(1), compute_seconds=2.5)
        cache.get("a")
        cache.get("a")
        stats = cache.stats()
        assert stats.recompute_seconds_saved == pytest.approx(5.0)
        assert stats.memory_cost_seconds == pytest.approx(2.5)

    def test_cost_metadata_survives_the_disk_round_trip(self, tmp_path):
        ResultCache(directory=tmp_path).put("a", payload(1), compute_seconds=3.0)
        reopened = ResultCache(directory=tmp_path, policy="cost-aware")
        assert reopened.get("a") == payload(1)
        assert reopened.stats().recompute_seconds_saved == pytest.approx(3.0)
        assert reopened.stats().memory_cost_seconds == pytest.approx(3.0)


class TestClockPolicy:
    def test_hit_entries_get_a_second_chance(self):
        cache = ResultCache(memory_capacity=2, policy="clock")
        cache.put("a", payload(1))
        cache.put("b", payload(2))
        assert cache.get("a") == payload(1)  # sets a's referenced bit
        cache.put("c", payload(3))  # sweep passes a, evicts b
        assert cache.get("b") is None
        assert cache.get("a") == payload(1)
        assert cache.get("c") == payload(3)

    def test_untouched_entries_evict_fifo(self):
        policy = ClockPolicy()
        for digest in ("a", "b", "c"):
            policy.on_admit(digest, 0.0, 0)
        assert [policy.victim(), policy.victim(), policy.victim()] == ["a", "b", "c"]

    def test_remove_then_readmit_skips_the_stale_ring_slot(self):
        policy = ClockPolicy()
        policy.on_admit("a", 0.0, 0)
        policy.on_admit("b", 0.0, 0)
        policy.remove("a")
        policy.on_admit("a", 0.0, 0)  # fresh generation, queued after b
        assert policy.victim() == "b"
        assert policy.victim() == "a"


# ----------------------------------------------------------------------
# TTL expiry (ManualClock only — no wall-clock reads)
# ----------------------------------------------------------------------
class TestTTLExpiry:
    def test_ttl_must_be_positive(self):
        with pytest.raises(ValueError, match="ttl"):
            ResultCache(ttl=0)
        with pytest.raises(ValueError, match="ttl"):
            ResultCache(ttl=-5)

    @pytest.mark.parametrize("policy", available_policies())
    def test_expired_memory_entry_is_a_counted_miss_that_recomputes(self, policy):
        clock = ManualClock()
        cache = ResultCache(policy=policy, ttl=60.0, clock=clock)
        cache.put("a", payload(1))
        clock.advance(59.9)
        assert cache.get("a") == payload(1)  # still fresh
        clock.advance(0.2)
        assert cache.get("a") is None  # aged out: miss, recompute
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.misses == 1
        assert stats.memory_entries == 0
        cache.put("a", payload(2))  # the recompute stores a fresh entry
        assert cache.get("a") == payload(2)

    def test_expired_disk_entry_is_a_counted_miss_and_the_blob_is_deleted(
        self, tmp_path
    ):
        clock = ManualClock()
        cache = ResultCache(
            memory_capacity=1, directory=tmp_path, ttl=60.0, clock=clock
        )
        cache.put("a", payload(1))
        cache.put("b", payload(2))  # evicts a from memory; disk still holds it
        clock.advance(61.0)
        assert cache.get("a") is None  # disk blob aged out too
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.disk_hits == 0
        assert not (tmp_path / "a.json").exists()  # no stale resurrection later

    def test_memory_and_disk_expiry_of_one_entry_counts_once(self, tmp_path):
        clock = ManualClock()
        cache = ResultCache(directory=tmp_path, ttl=30.0, clock=clock)
        cache.put("a", payload(1))
        clock.advance(31.0)
        assert cache.get("a") is None
        assert cache.get("a") is None  # already gone everywhere: plain miss
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.misses == 2
        assert not (tmp_path / "a.json").exists()

    def test_future_stamped_blob_is_clamped_not_immortal(self, tmp_path):
        writer_clock = ManualClock(start=5000.0)
        ResultCache(directory=tmp_path, clock=writer_clock).put("a", payload(1))
        reader_clock = ManualClock(start=0.0)  # monotonic clock restarted
        cache = ResultCache(directory=tmp_path, ttl=10.0, clock=reader_clock)
        assert cache.get("a") == payload(1)  # clamped to "freshly stored"
        reader_clock.advance(10.0)
        assert cache.get("a") is None  # ...so it still expires after one TTL
        assert cache.stats().expirations == 1

    def test_ttl_stamp_survives_promotion(self, tmp_path):
        clock = ManualClock()
        cache = ResultCache(
            memory_capacity=1, directory=tmp_path, ttl=60.0, clock=clock
        )
        cache.put("a", payload(1))
        cache.put("b", payload(2))  # a lives on disk only
        clock.advance(40.0)
        assert cache.get("a") == payload(1)  # promoted with its original stamp
        clock.advance(25.0)  # 65 s after the put, 25 s after promotion
        assert cache.get("a") is None  # TTL measures age since compute
        assert cache.stats().expirations == 1


# ----------------------------------------------------------------------
# invalidate / breaker degradation across policies
# ----------------------------------------------------------------------
class TestPolicyObservesInvalidate:
    @pytest.mark.parametrize("policy", available_policies())
    def test_invalidated_digests_leave_the_policy_too(self, policy):
        cache = ResultCache(memory_capacity=2, policy=policy)
        cache.put("a", payload(1), compute_seconds=1.0)
        cache.put("b", payload(2), compute_seconds=1.0)
        assert cache.invalidate(["b"]) == 1
        cache.put("c", payload(3), compute_seconds=1.0)  # refills the freed slot
        cache.put("d", payload(4), compute_seconds=1.0)  # one real eviction (a)
        stats = cache.stats()
        # A policy still tracking the invalidated "b" would burn an extra
        # victim() round on the stale digest and over-count evictions.
        assert stats.evictions == 1
        assert stats.invalidations == 1
        assert cache.get("a") is None
        assert cache.get("c") == payload(3)
        assert cache.get("d") == payload(4)

    @pytest.mark.parametrize("policy", available_policies())
    def test_policies_serve_memory_only_while_the_breaker_is_open(
        self, tmp_path, policy
    ):
        fs = FlakyFilesystem()
        clock = ManualClock()
        cache = ResultCache(
            memory_capacity=4,
            directory=tmp_path,
            retry=instant_retry(),
            breaker=CircuitBreaker(
                failure_threshold=1, recovery_after=3600.0, clock=clock
            ),
            fs=fs,
            policy=policy,
            ttl=120.0,
            clock=clock,
        )
        fs.fail_always("write_text", enospc())
        cache.put("a", payload(1), compute_seconds=1.0)  # disk store fails: opens
        assert cache.breaker.state == OPEN
        assert cache.get("a") == payload(1)  # memory tier still serves
        clock.advance(121.0)
        assert cache.get("a") is None  # TTL expiry skips the dead disk tier
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.disk_degraded is True
        assert stats.policy == policy


# ----------------------------------------------------------------------
# satellite regressions: stats accounting, construction sweep, Retry-After
# ----------------------------------------------------------------------
class TestStatsAccountingFixes:
    def test_stats_listing_errors_are_counted_in_the_same_snapshot(self, tmp_path):
        fs = FlakyFilesystem()
        cache = ResultCache(
            directory=tmp_path,
            retry=instant_retry(),
            breaker=CircuitBreaker(
                failure_threshold=1, recovery_after=3600.0, clock=ManualClock()
            ),
            fs=fs,
        )
        fs.fail_always("glob", eacces())
        stats = cache.stats()
        # Pre-fix, this very snapshot reported disk_errors == 0 (the errors
        # were popped after construction) and the breaker never learned.
        assert stats.disk_errors >= 1
        assert stats.breaker_state == OPEN
        assert stats.disk_degraded is True
        assert stats.disk_entries == 0
        assert stats.disk_bytes == 0

    def test_stats_poll_does_not_consume_the_half_open_probe(self, tmp_path):
        fs = FlakyFilesystem()
        clock = ManualClock()
        cache = ResultCache(
            directory=tmp_path,
            retry=instant_retry(),
            breaker=CircuitBreaker(
                failure_threshold=1, recovery_after=10.0, clock=clock
            ),
            fs=fs,
        )
        fs.fail_always("write_text", enospc())
        cache.put("a", payload(1))
        assert cache.breaker.state == OPEN
        fs.heal("write_text")
        clock.advance(11.0)  # recovery window elapsed: one probe available
        assert cache.stats().breaker_state == OPEN  # poll must not take it
        cache.put("b", payload(2))  # the probe goes to a real disk write
        assert cache.breaker.state == CLOSED

    def test_construction_sweep_errors_feed_the_breaker(self, tmp_path):
        fs = FlakyFilesystem()
        fs.fail_always("glob", eacces())  # the startup temp-file sweep fails
        cache = ResultCache(
            directory=tmp_path,
            retry=instant_retry(),
            breaker=CircuitBreaker(
                failure_threshold=1, recovery_after=3600.0, clock=ManualClock()
            ),
            fs=fs,
        )
        # Pre-fix the error was counted but the breaker started closed.
        assert cache.breaker.state == OPEN
        assert cache.stats().disk_errors == 1


class TestDerivedRetryAfter:
    def test_floor_is_one_second_without_latency_samples(self):
        server = ConsensusHTTPServer(GateService(), port=0)
        assert server._retry_after_seconds() == 1

    def test_scales_with_p90_and_queue_depth(self):
        server = ConsensusHTTPServer(GateService(), port=0)
        for _ in range(10):
            server._latency.record(2.5)  # p90 = 2.5 s
        assert server._retry_after_seconds() == 3  # ceil((0 queued + 1) x 2.5)

        async def fill_queue():
            assert await server._admission.acquire()  # beyond max_inflight the
            for _ in range(64 - 1):  # rest of the budget...
                await server._admission.acquire()
            queueing = [
                asyncio.ensure_future(server._admission.acquire())
                for _ in range(2)  # ...two callers park in the queue
            ]
            await asyncio.sleep(0)
            assert server._admission.queued == 2
            hint = server._retry_after_seconds()
            for future in queueing:
                future.cancel()
            return hint

        assert asyncio.run(fill_queue()) == 8  # ceil((2 queued + 1) x 2.5)

    def test_shed_response_carries_the_derived_hint(self, tiny_table, tiny_rankings):
        from repro.io.serialization import (
            candidate_table_to_dict,
            ranking_set_to_dict,
        )
        from tests.cache.faults import http_request, yield_until

        body = {
            "rankings": ranking_set_to_dict(tiny_rankings),
            "candidates": candidate_table_to_dict(tiny_table),
        }

        async def main():
            service = GateService()
            server = ConsensusHTTPServer(
                service, port=0, max_inflight=1, queue_depth=0
            )
            for _ in range(10):
                server._latency.record(2.0)  # p90 = 2 s, empty queue: hint 2
            host, port = await server.start()
            serve_task = asyncio.create_task(server.serve())
            try:
                blocked = asyncio.create_task(
                    http_request(host, port, "POST", "/aggregate", body)
                )
                await yield_until(lambda: service.started.is_set())
                status, headers, _ = await http_request(
                    host, port, "POST", "/aggregate", body
                )
                service.gate.set()
                await blocked
            finally:
                server.request_stop()
                await serve_task
            return status, headers

        status, headers = asyncio.run(main())
        assert status == 503
        assert headers["retry-after"] == "2"
