"""Tests for the cached consensus service (compute path + cache semantics)."""

from __future__ import annotations

import pytest

from repro.cache.service import (
    ConsensusCacheService,
    compute_consensus_payload,
    resolve_method,
)
from repro.cache.store import ResultCache
from repro.core.ranking import Ranking
from repro.exceptions import AggregationError
from repro.fair.seeded import SeededFairAggregator
from repro.fairness.parity import parity_scores
from repro.fairness.pd_loss import pd_loss

DELTA = 0.35


class TestComputePayload:
    def test_payload_matches_direct_computation(self, tiny_table, tiny_rankings):
        payload = compute_consensus_payload(
            tiny_rankings, tiny_table, method="fair-borda", delta=DELTA
        )
        consensus = Ranking(payload["consensus"]["order"])
        assert payload["method"] == "fair-borda"
        assert payload["method_label"] == "Fair-Borda"
        assert payload["pd_loss"] == pd_loss(tiny_rankings, consensus)
        assert payload["parity"] == parity_scores(consensus, tiny_table)
        assert payload["consensus"]["names"] == [
            tiny_table.name_of(c) for c in consensus
        ]
        assert payload["delta"] == {"default": DELTA, "per_entity": {}}

    def test_payload_is_json_normalised(self, tiny_table, tiny_rankings):
        import json

        payload = compute_consensus_payload(tiny_rankings, tiny_table, delta=DELTA)
        assert payload == json.loads(json.dumps(payload))

    def test_strategy_reaches_diagnostics(self, tiny_table, tiny_rankings):
        payload = compute_consensus_payload(
            tiny_rankings, tiny_table, strategy="insertion", delta=DELTA
        )
        assert payload["strategy"] == "insertion"
        assert payload["diagnostics"]["repair_strategy"] == "insertion"

    def test_resolve_method_rejects_strategy_on_baselines(self):
        with pytest.raises(AggregationError, match="seeded method"):
            resolve_method("pick-fairest-perm", strategy="insertion")
        assert isinstance(
            resolve_method("fair-borda", strategy="insertion"), SeededFairAggregator
        )

    def test_every_registered_method_is_servable(self, tiny_table, tiny_rankings):
        """The service accepts every registry name, including the repairs."""
        from repro.fair.registry import available_fair_methods

        for method in available_fair_methods():
            payload = compute_consensus_payload(
                tiny_rankings, tiny_table, method=method, delta=DELTA
            )
            assert payload["method"] == method
            assert len(payload["consensus"]["order"]) == tiny_table.n_candidates


class TestServiceCaching:
    def test_miss_then_hit_is_bit_identical(self, tiny_table, tiny_rankings):
        service = ConsensusCacheService()
        first = service.aggregate(tiny_rankings, tiny_table, delta=DELTA)
        second = service.aggregate(tiny_rankings, tiny_table, delta=DELTA)
        cold = compute_consensus_payload(tiny_rankings, tiny_table, delta=DELTA)
        assert first["cached"] is False
        assert second["cached"] is True
        assert first["key"] == second["key"]
        assert first["result"] == second["result"] == cold

    def test_equivalent_spellings_share_one_entry(self, tiny_table, tiny_rankings):
        service = ConsensusCacheService()
        by_label = service.aggregate(tiny_rankings, tiny_table, method="A3", delta=DELTA)
        by_name = service.aggregate(
            tiny_rankings, tiny_table, method="fair-borda", delta=DELTA
        )
        assert by_label["key"] == by_name["key"]
        assert by_name["cached"] is True
        assert by_label["result"] == by_name["result"]

    def test_distinct_queries_do_not_collide(self, tiny_table, tiny_rankings):
        service = ConsensusCacheService()
        plain = service.aggregate(tiny_rankings, tiny_table, delta=DELTA)
        repaired = service.aggregate(
            tiny_rankings, tiny_table, strategy="insertion", delta=DELTA
        )
        assert plain["key"] != repaired["key"]
        assert repaired["cached"] is False
        assert service.stats()["misses"] == 2

    def test_disk_round_trip_is_bit_identical(self, tmp_path, tiny_table, tiny_rankings):
        warm = ConsensusCacheService(ResultCache(directory=tmp_path))
        cold_response = warm.aggregate(tiny_rankings, tiny_table, delta=DELTA)
        # A fresh process with an empty memory tier replays from disk.
        reopened = ConsensusCacheService(ResultCache(directory=tmp_path))
        replayed = reopened.aggregate(tiny_rankings, tiny_table, delta=DELTA)
        assert replayed["cached"] is True
        assert replayed["result"] == cold_response["result"]
        assert reopened.stats()["disk_hits"] == 1

    def test_corrupted_blob_recomputes_identically(
        self, tmp_path, tiny_table, tiny_rankings
    ):
        service = ConsensusCacheService(ResultCache(directory=tmp_path))
        original = service.aggregate(tiny_rankings, tiny_table, delta=DELTA)
        blob = tmp_path / f"{original['key']}.json"
        blob.write_text(blob.read_text()[:20])  # truncate the persisted payload
        reopened = ConsensusCacheService(ResultCache(directory=tmp_path))
        recomputed = reopened.aggregate(tiny_rankings, tiny_table, delta=DELTA)
        assert recomputed["cached"] is False  # corruption degraded to a miss
        assert recomputed["result"] == original["result"]
        stats = reopened.stats()
        assert stats["disk_corruptions"] == 1
        # The recompute healed the blob: the next service instance hits disk.
        healed = ConsensusCacheService(ResultCache(directory=tmp_path))
        assert healed.aggregate(tiny_rankings, tiny_table, delta=DELTA)["cached"] is True

    def test_stats_counter_accuracy(self, tiny_table, tiny_rankings):
        service = ConsensusCacheService(ResultCache(memory_capacity=1))
        service.aggregate(tiny_rankings, tiny_table, delta=DELTA)
        service.aggregate(tiny_rankings, tiny_table, delta=DELTA)
        service.aggregate(tiny_rankings, tiny_table, delta=0.5)  # evicts the first
        service.aggregate(tiny_rankings, tiny_table, delta=DELTA)  # miss again
        stats = service.stats()
        assert stats["requests"] == 4
        assert stats["hits"] == 1
        assert stats["misses"] == 3
        assert stats["evictions"] == 2
        assert stats["hit_rate"] == pytest.approx(0.25)
