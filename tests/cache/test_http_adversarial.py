"""Adversarial-client suite: slowloris, garbage headers, overload, drain.

Every scenario drives the real listener with raw sockets from
:mod:`tests.cache.faults`.  Timeout scenarios run on the
:class:`~tests.cache.faults.VirtualClock`, so the suite never sleeps on real
time; blocking-compute scenarios hold requests in flight with
:class:`~tests.cache.faults.GateService` events instead of timing.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cache.http import ConsensusHTTPServer
from repro.cache.resilience import ServerLimits
from repro.cache.service import ConsensusCacheService, compute_consensus_payload
from repro.io.serialization import candidate_table_to_dict, ranking_set_to_dict
from tests.cache.faults import (
    GateService,
    VirtualClock,
    http_request,
    read_http_response,
    send_raw,
    slowloris_connect,
    yield_until,
)

DELTA = 0.35


@pytest.fixture
def query_body(tiny_table, tiny_rankings):
    return {
        "rankings": ranking_set_to_dict(tiny_rankings),
        "candidates": candidate_table_to_dict(tiny_table),
        "delta": DELTA,
    }


def run_scenario(scenario, service=None, clock=None, **server_kwargs):
    """Run ``scenario(server, host, port)``; return (result, server) post-drain."""

    async def main():
        server = ConsensusHTTPServer(
            service if service is not None else ConsensusCacheService(),
            port=0,
            clock=clock,
            **server_kwargs,
        )
        host, port = await server.start()
        serve_task = asyncio.create_task(server.serve())
        try:
            result = await scenario(server, host, port)
        finally:
            server.request_stop()
            await serve_task
        return result, server

    return asyncio.run(main())


class TestSlowClients:
    def test_slowloris_request_line_times_out_408(self):
        clock = VirtualClock()

        async def scenario(server, host, port):
            reader, writer = await slowloris_connect(host, port, b"POST /aggre")
            await yield_until(lambda: clock.pending_timers >= 1)
            clock.advance(10.1)  # past the default 10 s read deadline
            status, _, body = await read_http_response(reader)
            writer.close()
            await writer.wait_closed()
            return status, body

        (status, body), server = run_scenario(scenario, clock=clock)
        assert status == 408
        assert "request line" in body["error"]

    def test_slowloris_headers_time_out_408(self):
        clock = VirtualClock()

        async def scenario(server, host, port):
            reader, writer = await slowloris_connect(
                host, port, b"POST /aggregate HTTP/1.1\r\nX-Drip: 1\r\n"
            )
            # Timers: request line, the X-Drip line, then the parked readline
            # for the next header — advance only once the server is parked.
            await yield_until(
                lambda: clock.timers_created >= 3 and clock.pending_timers == 1
            )
            clock.advance(10.1)
            status, _, body = await read_http_response(reader)
            writer.close()
            await writer.wait_closed()
            return status, body

        (status, body), _ = run_scenario(scenario, clock=clock)
        assert status == 408
        assert "headers" in body["error"]

    def test_slowloris_body_times_out_408(self):
        clock = VirtualClock()

        async def scenario(server, host, port):
            reader, writer = await slowloris_connect(
                host,
                port,
                b"POST /aggregate HTTP/1.1\r\nContent-Length: 100\r\n\r\nfive!",
            )
            # Timers: request line, Content-Length line, header terminator,
            # then the parked readexactly — advance only once parked there.
            await yield_until(
                lambda: clock.timers_created >= 4 and clock.pending_timers == 1
            )
            clock.advance(10.1)
            status, _, body = await read_http_response(reader)
            writer.close()
            await writer.wait_closed()
            return status, body

        (status, body), _ = run_scenario(scenario, clock=clock)
        assert status == 408
        assert "body" in body["error"]

    def test_timeouts_are_counted_in_stats(self):
        clock = VirtualClock()

        async def scenario(server, host, port):
            reader, writer = await slowloris_connect(host, port, b"GET /st")
            await yield_until(lambda: clock.pending_timers >= 1)
            clock.advance(10.1)
            await read_http_response(reader)
            writer.close()
            await writer.wait_closed()
            return await http_request(host, port, "GET", "/stats")

        (status, _, payload), _ = run_scenario(scenario, clock=clock)
        assert status == 200
        assert payload["server"]["read_timeouts"] == 1
        assert payload["server"]["responses_by_status"]["408"] == 1


class TestGarbageRequests:
    def test_oversized_header_line_431(self):
        async def scenario(server, host, port):
            request = (
                b"POST /aggregate HTTP/1.1\r\nX-Big: " + b"a" * 9000 + b"\r\n\r\n"
            )
            return await send_raw(host, port, request)

        (status, _, body), _ = run_scenario(scenario)
        assert status == 431
        assert "header line" in body["error"]

    def test_unterminated_giant_request_line_431(self):
        async def scenario(server, host, port):
            # > the 64 KiB StreamReader line limit, no newline anywhere.
            return await send_raw(host, port, b"G" * (70 * 1024), close_write=True)

        (status, _, _), _ = run_scenario(scenario)
        assert status == 431

    def test_too_many_headers_431(self):
        async def scenario(server, host, port):
            headers = b"".join(b"X-%d: v\r\n" % index for index in range(7))
            request = b"POST /aggregate HTTP/1.1\r\n" + headers + b"\r\n"
            return await send_raw(host, port, request)

        (status, _, body), _ = run_scenario(
            scenario, limits=ServerLimits(max_header_count=5)
        )
        assert status == 431
        assert "too many headers" in body["error"]

    def test_non_numeric_content_length_400(self):
        async def scenario(server, host, port):
            request = b"POST /aggregate HTTP/1.1\r\nContent-Length: banana\r\n\r\n"
            return await send_raw(host, port, request)

        (status, _, body), _ = run_scenario(scenario)
        assert status == 400
        assert "invalid Content-Length" in body["error"]

    def test_negative_content_length_400(self):
        async def scenario(server, host, port):
            request = b"POST /aggregate HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
            return await send_raw(host, port, request)

        (status, _, body), _ = run_scenario(scenario)
        assert status == 400
        assert "negative Content-Length" in body["error"]

    def test_truncated_body_400_with_byte_counts(self):
        async def scenario(server, host, port):
            request = (
                b"POST /aggregate HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort"
            )
            return await send_raw(host, port, request, close_write=True)

        (status, _, body), _ = run_scenario(scenario)
        assert status == 400
        assert "truncated request body" in body["error"]
        assert "expected 100 bytes, got 5" in body["error"]


class TestLoadShedding:
    def test_overload_is_shed_503_with_retry_after(self, query_body):
        service = GateService()

        async def scenario(server, host, port):
            loop = asyncio.get_running_loop()
            first = asyncio.create_task(
                http_request(host, port, "POST", "/aggregate", query_body)
            )
            assert await loop.run_in_executor(None, lambda: service.started.wait(10))
            shed = await http_request(host, port, "POST", "/aggregate", query_body)
            stats = await http_request(host, port, "GET", "/stats")
            service.gate.set()
            ok = await first
            return shed, ok, stats

        (shed, ok, stats), _ = run_scenario(
            scenario, service=service, max_inflight=1, queue_depth=0
        )
        shed_status, shed_headers, shed_body = shed
        assert shed_status == 503
        assert shed_headers["retry-after"] == "1"
        assert "overloaded" in shed_body["error"]
        ok_status, _, ok_body = ok
        assert ok_status == 200
        assert ok_body["result"] == {"ok": True}  # the admitted request finished intact
        assert stats[2]["server"]["admission"]["shed"] == 1

    def test_queue_admits_once_a_slot_frees(self, query_body):
        service = GateService()

        async def scenario(server, host, port):
            loop = asyncio.get_running_loop()
            first = asyncio.create_task(
                http_request(host, port, "POST", "/aggregate", query_body)
            )
            assert await loop.run_in_executor(None, lambda: service.started.wait(10))
            queued = asyncio.create_task(
                http_request(host, port, "POST", "/aggregate", query_body)
            )
            await yield_until(lambda: server._admission.queued == 1)
            shed = await http_request(host, port, "POST", "/aggregate", query_body)
            service.gate.set()  # releases first; the queued request then runs
            return shed, await first, await queued

        (shed, first, queued), _ = run_scenario(
            scenario, service=service, max_inflight=1, queue_depth=1
        )
        assert shed[0] == 503
        assert first[0] == 200
        assert queued[0] == 200

    def test_health_endpoints_answer_even_under_full_load(self, query_body):
        service = GateService()

        async def scenario(server, host, port):
            loop = asyncio.get_running_loop()
            first = asyncio.create_task(
                http_request(host, port, "POST", "/aggregate", query_body)
            )
            assert await loop.run_in_executor(None, lambda: service.started.wait(10))
            health = await http_request(host, port, "GET", "/healthz")
            ready = await http_request(host, port, "GET", "/readyz")
            service.gate.set()
            await first
            return health, ready

        (health, ready), _ = run_scenario(
            scenario, service=service, max_inflight=1, queue_depth=0
        )
        assert health[0] == 200
        assert health[2]["status"] == "ok"
        assert ready[0] == 200
        assert ready[2] == {"ready": True}


class TestGracefulDrain:
    def test_drain_finishes_inflight_flips_readiness_and_sheds_new_work(
        self, query_body
    ):
        service = GateService()

        async def scenario(server, host, port):
            loop = asyncio.get_running_loop()
            first = asyncio.create_task(
                http_request(host, port, "POST", "/aggregate", query_body)
            )
            assert await loop.run_in_executor(None, lambda: service.started.wait(10))
            ready_before = await http_request(host, port, "GET", "/readyz")
            server.request_stop()
            await yield_until(lambda: server.draining)
            ready_during = await http_request(host, port, "GET", "/readyz")
            shed_during = await http_request(host, port, "POST", "/aggregate", query_body)
            service.gate.set()  # let the in-flight request finish the drain
            ok = await first
            return ready_before, ready_during, shed_during, ok

        (ready_before, ready_during, shed_during, ok), server = run_scenario(
            scenario, service=service, drain_timeout=30.0
        )
        assert ready_before[0] == 200 and ready_before[2] == {"ready": True}
        assert ready_during[0] == 503
        assert ready_during[2] == {"ready": False, "reason": "draining"}
        assert shed_during[0] == 503
        assert shed_during[1]["retry-after"] == "1"
        assert "draining" in shed_during[2]["error"]
        assert ok[0] == 200  # the in-flight request was drained, not killed
        assert ok[2]["result"] == {"ok": True}
        assert server.drain_cancelled == 0

    def test_drain_timeout_cancels_stragglers(self):
        clock = VirtualClock()

        async def scenario(server, host, port):
            reader, writer = await slowloris_connect(
                host, port, b"POST /aggregate HTTP/1.1\r\n"
            )
            # Parked on the first header readline (timer 2 of 2).
            await yield_until(
                lambda: clock.timers_created >= 2 and clock.pending_timers == 1
            )
            server.request_stop()
            await yield_until(lambda: server.draining)
            await yield_until(lambda: clock.pending_timers >= 2)  # + drain timer
            clock.advance(5.1)  # drain_timeout < read_timeout: drain fires first
            writer.close()
            await writer.wait_closed()
            return None

        _, server = run_scenario(scenario, clock=clock, drain_timeout=5.0)
        assert server.drain_cancelled == 1

    def test_readyz_flips_even_before_the_drain_tick(self, query_body):
        async def scenario(server, host, port):
            # Connect before stopping so the listener close cannot race the
            # handshake; the request itself is sent only after the stop.
            reader, writer = await asyncio.open_connection(host, port)
            await yield_until(lambda: len(server._connections) >= 1)
            server.request_stop()
            # No yield between stop and request: readiness consults the stop
            # event directly, so the flip is visible before serve() marks the
            # server draining.
            writer.write(b"GET /readyz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
            await writer.drain()
            response = await read_http_response(reader)
            writer.close()
            await writer.wait_closed()
            return response

        (status, _, body), _ = run_scenario(scenario)
        assert status == 503
        assert body["ready"] is False


class TestBitIdentityUnderAdversaries:
    def test_responses_stay_bit_identical_with_a_slowloris_pinned(
        self, query_body, tiny_table, tiny_rankings
    ):
        cold = compute_consensus_payload(tiny_rankings, tiny_table, delta=DELTA)
        clock = VirtualClock()

        async def scenario(server, host, port):
            reader, writer = await slowloris_connect(host, port, b"POST /slow")
            first = await http_request(host, port, "POST", "/aggregate", query_body)
            second = await http_request(host, port, "POST", "/aggregate", query_body)
            await yield_until(lambda: clock.pending_timers >= 1)
            clock.advance(10.1)
            timed_out, _, _ = await read_http_response(reader)
            writer.close()
            await writer.wait_closed()
            return first, second, timed_out

        (first, second, timed_out), _ = run_scenario(scenario, clock=clock)
        assert timed_out == 408
        assert first[0] == second[0] == 200
        assert first[2]["cached"] is False
        assert second[2]["cached"] is True
        assert first[2]["result"] == second[2]["result"] == cold
