"""Tests for the two-tier result store: LRU eviction, disk tier, counters."""

from __future__ import annotations

import json

import pytest

from repro.cache.store import DiskTier, ResultCache


def payload(tag: int) -> dict:
    return {"tag": tag, "consensus": list(range(tag, tag + 3))}


class TestMemoryLRU:
    def test_eviction_at_capacity(self):
        cache = ResultCache(memory_capacity=2)
        cache.put("a", payload(1))
        cache.put("b", payload(2))
        cache.put("c", payload(3))
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.memory_entries == 2
        assert cache.get("a") is None  # memory-only cache: evicted means gone
        assert cache.get("b") == payload(2)
        assert cache.get("c") == payload(3)

    def test_lru_recency_order(self):
        cache = ResultCache(memory_capacity=2)
        cache.put("a", payload(1))
        cache.put("b", payload(2))
        assert cache.get("a") == payload(1)  # refresh a; b becomes the LRU entry
        cache.put("c", payload(3))
        assert cache.get("b") is None
        assert cache.get("a") == payload(1)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="memory_capacity"):
            ResultCache(memory_capacity=0)

    def test_unbounded_memory_never_evicts(self):
        cache = ResultCache(memory_capacity=None)
        for index in range(50):
            cache.put(str(index), payload(index))
        stats = cache.stats()
        assert stats.evictions == 0
        assert stats.memory_entries == 50


class TestDiskTier:
    def test_eviction_falls_back_to_disk(self, tmp_path):
        cache = ResultCache(memory_capacity=1, directory=tmp_path)
        cache.put("a", payload(1))
        cache.put("b", payload(2))  # evicts a from memory; disk still holds it
        assert cache.stats().evictions == 1
        assert cache.get("a") == payload(1)
        stats = cache.stats()
        assert stats.disk_hits == 1
        assert stats.memory_hits == 0

    def test_disk_promotion_back_into_memory(self, tmp_path):
        cache = ResultCache(memory_capacity=1, directory=tmp_path)
        cache.put("a", payload(1))
        cache.put("b", payload(2))
        assert cache.get("a") == payload(1)  # disk hit, promoted (evicting b)
        assert cache.get("a") == payload(1)  # now a memory hit
        stats = cache.stats()
        assert stats.disk_hits == 1
        assert stats.memory_hits == 1
        assert stats.evictions == 2

    def test_atomic_writes_leave_no_temp_files(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("a", payload(1))
        assert list(tmp_path.glob("*.tmp")) == []
        blob = json.loads((tmp_path / "a.json").read_text())
        assert blob["payload"] == payload(1)
        assert set(blob["meta"]) == {"compute_seconds", "frequency", "stored_at"}

    def test_persists_across_instances(self, tmp_path):
        ResultCache(directory=tmp_path).put("a", payload(1))
        reopened = ResultCache(directory=tmp_path)
        assert reopened.get("a") == payload(1)
        assert reopened.stats().disk_hits == 1

    def test_truncated_blob_is_a_miss_not_a_crash(self, tmp_path):
        cache = ResultCache(memory_capacity=1, directory=tmp_path)
        cache.put("a", payload(1))
        cache.put("b", payload(2))  # push a out of memory
        blob = tmp_path / "a.json"
        blob.write_text(blob.read_text()[:7])  # truncate mid-JSON
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats.disk_corruptions == 1
        assert stats.misses == 1
        assert not blob.exists()  # quarantined so the slot heals
        cache.put("a", payload(1))  # recompute path stores cleanly again
        assert ResultCache(directory=tmp_path).get("a") == payload(1)

    def test_non_object_blob_is_discarded(self, tmp_path):
        tier = DiskTier(tmp_path)
        tier.path_for("x").write_text('["not", "an", "object"]')
        assert tier.load("x") is None
        assert tier.pop_corruptions() == 1
        assert not tier.path_for("x").exists()

    def test_size_counters(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("a", payload(1))
        cache.put("b", payload(2))
        stats = cache.stats()
        assert stats.disk_entries == 2
        assert stats.disk_bytes == sum(
            path.stat().st_size for path in tmp_path.glob("*.json")
        )


class TestStatsAccuracy:
    def test_counter_accuracy_over_a_scripted_sequence(self, tmp_path):
        cache = ResultCache(memory_capacity=2, directory=tmp_path)
        assert cache.get("a") is None  # miss
        cache.put("a", payload(1))
        assert cache.get("a") == payload(1)  # memory hit
        cache.put("b", payload(2))
        cache.put("c", payload(3))  # evicts a
        assert cache.get("a") == payload(1)  # disk hit (promotes, evicting b)
        assert cache.get("b") == payload(2)  # disk hit again (promotes, evicting c)
        assert cache.get("missing") is None  # miss
        stats = cache.stats()
        assert stats.hits == 3
        assert stats.memory_hits == 1
        assert stats.disk_hits == 2
        assert stats.misses == 2
        assert stats.evictions == 3
        assert stats.requests == 5
        assert stats.hit_rate == pytest.approx(3 / 5)

    def test_stats_to_dict_round_trip(self):
        cache = ResultCache()
        cache.put("a", payload(1))
        cache.get("a")
        cache.get("b")
        as_dict = cache.stats().to_dict()
        assert as_dict["hits"] == 1
        assert as_dict["misses"] == 1
        assert as_dict["requests"] == 2
        assert as_dict["hit_rate"] == pytest.approx(0.5)
        assert as_dict["memory_entries"] == 1

    def test_empty_cache_hit_rate_is_zero(self):
        assert ResultCache().stats().hit_rate == 0.0


class TestInvalidation:
    def test_invalidate_removes_entries_from_both_tiers(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("a", payload(1))
        cache.put("b", payload(2))
        removed = cache.invalidate(["a", "b", "unknown"], profile_version=7)
        assert removed == 2
        assert cache.get("a") is None and cache.get("b") is None
        assert not (tmp_path / "a.json").exists()
        stats = cache.stats()
        assert stats.invalidations == 2
        assert stats.profile_version == 7

    def test_invalidation_is_distinct_from_eviction(self):
        cache = ResultCache(memory_capacity=1)
        cache.put("a", payload(1))
        cache.put("b", payload(2))  # evicts a
        cache.invalidate(["b"])
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.invalidations == 1
        assert stats.profile_version == 0  # unchanged when not given

    def test_invalidating_unknown_digests_is_a_counted_no_op(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        assert cache.invalidate(["missing"], profile_version=3) == 0
        stats = cache.stats()
        assert stats.invalidations == 0
        assert stats.profile_version == 3

    def test_duplicate_digests_invalidate_once(self):
        cache = ResultCache()
        cache.put("a", payload(1))
        assert cache.invalidate(["a", "a"]) == 1
        assert cache.stats().invalidations == 1

    def test_memory_only_cache_invalidates(self):
        cache = ResultCache()
        cache.put("a", payload(1))
        assert cache.invalidate(["a"]) == 1
        assert cache.get("a") is None
