"""Disk-fault suite: injected filesystem failures against the result cache.

Every scenario runs on the :class:`tests.cache.faults.FlakyFilesystem`
schedule and injected clocks — no real sleeps, no monkeypatching — and
asserts the degrade-don't-die contract: the cache absorbs the fault, counts
it, and keeps serving bit-identical results from memory.
"""

from __future__ import annotations

from repro.cache.resilience import CircuitBreaker, RetryPolicy
from repro.cache.service import ConsensusCacheService, compute_consensus_payload
from repro.cache.store import DiskTier, ResultCache
from tests.cache.faults import FlakyFilesystem, ManualClock, eacces, enospc


def payload(tag: int) -> dict:
    return {"tag": tag, "consensus": list(range(tag, tag + 3))}


def instant_retry(attempts: int = 3) -> RetryPolicy:
    return RetryPolicy(attempts=attempts, sleep=lambda _: None)


def faulty_cache(tmp_path, fs, clock=None, threshold=3, recovery=30.0, capacity=8):
    breaker = CircuitBreaker(
        failure_threshold=threshold,
        recovery_after=recovery,
        clock=clock if clock is not None else ManualClock(),
    )
    return ResultCache(
        memory_capacity=capacity,
        directory=tmp_path,
        retry=instant_retry(),
        breaker=breaker,
        fs=fs,
    )


class TestRetryOnTransientFaults:
    def test_transient_enospc_on_store_is_retried_away(self, tmp_path):
        fs = FlakyFilesystem()
        fs.fail_next("write_text", enospc(), times=1)
        cache = faulty_cache(tmp_path, fs)
        cache.put("a", payload(1))
        stats = cache.stats()
        assert stats.disk_errors == 0  # the retry absorbed the fault
        assert stats.disk_entries == 1
        assert ResultCache(directory=tmp_path).get("a") == payload(1)

    def test_torn_write_is_retried_and_leaves_a_clean_blob(self, tmp_path):
        fs = FlakyFilesystem()
        fs.torn_write(times=1)
        cache = faulty_cache(tmp_path, fs)
        cache.put("a", payload(1))
        assert cache.stats().disk_errors == 0
        assert ResultCache(directory=tmp_path).get("a") == payload(1)
        assert list(tmp_path.glob("*.tmp")) == []

    def test_transient_read_fault_is_retried_away(self, tmp_path):
        fs = FlakyFilesystem()
        cache = faulty_cache(tmp_path, fs, capacity=1)
        cache.put("a", payload(1))
        cache.put("b", payload(2))  # evict a from memory
        fs.fail_next("read_text", enospc(), times=1)
        assert cache.get("a") == payload(1)  # second attempt succeeds
        stats = cache.stats()
        assert stats.disk_hits == 1
        assert stats.disk_errors == 0


class TestEnospcOnPut:
    def test_persistent_enospc_degrades_to_memory_only(self, tmp_path):
        fs = FlakyFilesystem()
        fs.fail_always("write_text", enospc())
        clock = ManualClock()
        cache = faulty_cache(tmp_path, fs, clock=clock, threshold=3)

        for tag in range(3):
            cache.put(f"k{tag}", payload(tag))  # never raises
            assert cache.get(f"k{tag}") == payload(tag)  # served from memory

        stats = cache.stats()
        assert stats.disk_errors == 3
        assert stats.breaker_state == "open"
        assert stats.disk_degraded is True
        assert stats.memory_entries == 3

        # With the breaker open the disk tier is not even attempted.
        writes_so_far = fs.calls["write_text"]
        cache.put("k3", payload(3))
        assert fs.calls["write_text"] == writes_so_far
        assert cache.get("k3") == payload(3)

    def test_clean_misses_do_not_mask_persistent_write_failures(self, tmp_path):
        # The serve path interleaves a cold-miss get() (a clean FNF, which is
        # neutral evidence) with every failing put(); the breaker must still
        # open after `threshold` failed stores.
        fs = FlakyFilesystem()
        fs.fail_always("write_text", enospc())
        cache = faulty_cache(tmp_path, fs, threshold=3)
        for tag in range(3):
            assert cache.get(f"key{tag}") is None
            cache.put(f"key{tag}", payload(tag))
        stats = cache.stats()
        assert stats.breaker_state == "open"
        assert stats.disk_errors == 3

    def test_half_open_probe_recovers_the_disk_tier(self, tmp_path):
        fs = FlakyFilesystem()
        fs.fail_always("write_text", enospc())
        clock = ManualClock()
        cache = faulty_cache(tmp_path, fs, clock=clock, threshold=2, recovery=30.0)

        cache.put("a", payload(1))
        cache.put("b", payload(2))
        assert cache.stats().breaker_state == "open"

        # Before the recovery window the breaker stays open even if the disk
        # has healed underneath.
        fs.heal("write_text")
        cache.put("c", payload(3))
        assert cache.stats().breaker_state == "open"
        assert not (tmp_path / "c.json").exists()

        # Past the window the next put is the half-open probe; success closes
        # the breaker and the disk tier is live again.
        clock.advance(30.0)
        cache.put("d", payload(4))
        stats = cache.stats()
        assert stats.breaker_state == "closed"
        assert stats.disk_degraded is False
        assert (tmp_path / "d.json").exists()
        cache.put("e", payload(5))
        assert (tmp_path / "e.json").exists()

    def test_half_open_probe_failure_reopens(self, tmp_path):
        fs = FlakyFilesystem()
        fs.fail_always("write_text", enospc())
        clock = ManualClock()
        cache = faulty_cache(tmp_path, fs, clock=clock, threshold=1, recovery=10.0)
        cache.put("a", payload(1))
        assert cache.stats().breaker_state == "open"
        clock.advance(10.0)
        cache.put("b", payload(2))  # probe fails: still broken
        stats = cache.stats()
        assert stats.breaker_state == "open"
        assert stats.disk_errors == 2


class TestLoadHardening:
    def test_permission_denied_load_is_a_quarantined_miss(self, tmp_path):
        fs = FlakyFilesystem()
        cache = faulty_cache(tmp_path, fs, capacity=1)
        cache.put("a", payload(1))
        cache.put("b", payload(2))  # evict a
        fs.fail_always("read_text", eacces())
        assert cache.get("a") is None  # degraded miss, no raise
        stats = cache.stats()
        assert stats.disk_errors == 1
        assert stats.misses == 1
        assert (tmp_path / "a.json").exists()  # not deleted: we may not be able to

    def test_repeated_load_failures_open_the_breaker(self, tmp_path):
        fs = FlakyFilesystem()
        cache = faulty_cache(tmp_path, fs, threshold=2, capacity=1)
        cache.put("a", payload(1))
        cache.put("b", payload(2))
        fs.fail_always("read_text", eacces())
        assert cache.get("a") is None
        assert cache.get("a") is None
        assert cache.stats().breaker_state == "open"
        reads_so_far = fs.calls["read_text"]
        assert cache.get("a") is None  # breaker open: disk not attempted
        assert fs.calls["read_text"] == reads_so_far

    def test_direct_disk_tier_load_never_raises(self, tmp_path):
        fs = FlakyFilesystem()
        tier = DiskTier(tmp_path, retry=instant_retry(), fs=fs)
        tier.store("x", payload(1))
        fs.fail_always("read_text", eacces())
        assert tier.load("x") is None
        assert tier.pop_errors() == 1
        assert tier.pop_corruptions() == 0


class TestStatsRaceAndSweep:
    def test_total_bytes_skips_files_unlinked_between_glob_and_stat(self, tmp_path):
        fs = FlakyFilesystem()
        tier = DiskTier(tmp_path, retry=instant_retry(), fs=fs)
        tier.store("a", payload(1))
        tier.store("b", payload(2))
        fs.fail_next("stat", FileNotFoundError("unlinked concurrently"))
        size = tier.total_bytes()
        assert size == (tmp_path / "b.json").stat().st_size  # a was skipped
        assert tier.entry_count() == 2

    def test_listing_failure_degrades_to_zero_not_a_crash(self, tmp_path):
        fs = FlakyFilesystem()
        tier = DiskTier(tmp_path, retry=instant_retry(), fs=fs)
        tier.store("a", payload(1))
        fs.fail_always("glob", eacces())
        assert tier.entry_count() == 0
        assert tier.total_bytes() == 0
        assert tier.pop_errors() == 2

    def test_stale_tmp_files_are_swept_on_startup(self, tmp_path):
        (tmp_path / "dead.json.tmp").write_text('{"partial": ')
        (tmp_path / "live.json").write_text('{"tag": 9}')
        tier = DiskTier(tmp_path, retry=instant_retry())
        assert not (tmp_path / "dead.json.tmp").exists()
        assert tier.load("live") == {"tag": 9}

    def test_stats_endpoint_path_survives_the_race(self, tmp_path):
        fs = FlakyFilesystem()
        cache = faulty_cache(tmp_path, fs)
        cache.put("a", payload(1))
        fs.fail_next("stat", FileNotFoundError("gone"))
        stats = cache.stats()  # must not raise
        assert stats.disk_entries == 1
        assert stats.disk_bytes == 0  # the only blob was mid-unlink


class TestServiceBitIdentityUnderFaults:
    def test_responses_stay_bit_identical_with_a_dead_disk(
        self, tmp_path, tiny_table, tiny_rankings
    ):
        cold = compute_consensus_payload(tiny_rankings, tiny_table, delta=0.35)
        fs = FlakyFilesystem()
        fs.fail_always("write_text", enospc())
        service = ConsensusCacheService(faulty_cache(tmp_path, fs, threshold=1))

        first = service.aggregate(tiny_rankings, tiny_table, delta=0.35)
        second = service.aggregate(tiny_rankings, tiny_table, delta=0.35)
        assert first["cached"] is False
        assert second["cached"] is True  # memory tier still serves
        assert first["result"] == second["result"] == cold

        stats = service.stats()
        assert stats["disk_degraded"] is True
        assert stats["breaker_state"] == "open"
        assert stats["disk_errors"] >= 1
        health = service.health()
        assert health["disk_degraded"] is True

    def test_recovery_round_trips_through_the_disk(
        self, tmp_path, tiny_table, tiny_rankings
    ):
        cold = compute_consensus_payload(tiny_rankings, tiny_table, delta=0.35)
        fs = FlakyFilesystem()
        fs.fail_always("write_text", enospc())
        clock = ManualClock()
        cache = faulty_cache(tmp_path, fs, clock=clock, threshold=1, recovery=5.0)
        service = ConsensusCacheService(cache)

        service.aggregate(tiny_rankings, tiny_table, delta=0.35)
        assert service.stats()["breaker_state"] == "open"

        fs.heal("write_text")
        clock.advance(5.0)
        response = service.aggregate(tiny_rankings, tiny_table, delta=0.2)
        assert response["cached"] is False
        assert service.stats()["breaker_state"] == "closed"

        # A fresh process (new cache over the same directory) replays the
        # recovered entry bit-identically from disk.
        reopened = ConsensusCacheService(ResultCache(directory=tmp_path))
        replayed = reopened.aggregate(tiny_rankings, tiny_table, delta=0.2)
        assert replayed["cached"] is True
        assert replayed["result"] == compute_consensus_payload(
            tiny_rankings, tiny_table, delta=0.2
        )
        assert cold == compute_consensus_payload(tiny_rankings, tiny_table, delta=0.35)
