"""Tests for the content-addressed cache-key fingerprints."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.fingerprint import (
    cache_key,
    fingerprint_candidate_table,
    fingerprint_ranking_set,
    fingerprint_thresholds,
)
from repro.core.candidates import CandidateTable
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import AggregationError
from repro.fairness.thresholds import FairnessThresholds

ORDERS = [
    [0, 3, 5, 1, 2, 4],
    [3, 0, 5, 2, 1, 4],
    [0, 5, 3, 2, 4, 1],
]


class TestRankingSetFingerprint:
    def test_stable_across_construction_orders(self):
        """The same multiset of rankings fingerprints equal in any list order."""
        forward = RankingSet.from_orders(ORDERS)
        reversed_set = RankingSet.from_orders(ORDERS[::-1])
        rotated = RankingSet.from_orders(ORDERS[1:] + ORDERS[:1])
        assert (
            fingerprint_ranking_set(forward)
            == fingerprint_ranking_set(reversed_set)
            == fingerprint_ranking_set(rotated)
        )

    def test_stable_across_constructors(self):
        """from_orders, the Ranking constructor, and from_position_matrix agree."""
        from_orders = RankingSet.from_orders(ORDERS)
        from_rankings = RankingSet([Ranking(order) for order in ORDERS])
        positions = from_orders.position_matrix()
        from_matrix = RankingSet.from_position_matrix(np.array(positions))
        assert (
            fingerprint_ranking_set(from_orders)
            == fingerprint_ranking_set(from_rankings)
            == fingerprint_ranking_set(from_matrix)
        )

    def test_labels_do_not_affect_fingerprint(self):
        plain = RankingSet.from_orders(ORDERS)
        labelled = RankingSet.from_orders(ORDERS, labels=["math", "physics", "art"])
        assert fingerprint_ranking_set(plain) == fingerprint_ranking_set(labelled)

    def test_orders_affect_fingerprint(self):
        base = RankingSet.from_orders(ORDERS)
        changed = RankingSet.from_orders([ORDERS[0], ORDERS[1], [1, 4, 2, 3, 5, 0]])
        assert fingerprint_ranking_set(base) != fingerprint_ranking_set(changed)

    def test_weights_travel_with_their_ranking(self):
        weighted = RankingSet.from_orders(ORDERS, weights=[1.0, 2.0, 3.0])
        permuted = RankingSet.from_orders(ORDERS[::-1], weights=[3.0, 2.0, 1.0])
        mismatched = RankingSet.from_orders(ORDERS[::-1], weights=[1.0, 2.0, 3.0])
        assert fingerprint_ranking_set(weighted) == fingerprint_ranking_set(permuted)
        assert fingerprint_ranking_set(weighted) != fingerprint_ranking_set(mismatched)

    def test_duplicate_rankings_are_a_multiset(self):
        single = RankingSet.from_orders(ORDERS)
        doubled = RankingSet.from_orders(ORDERS + [ORDERS[0]])
        assert fingerprint_ranking_set(single) != fingerprint_ranking_set(doubled)


class TestTableAndThresholdFingerprints:
    def test_table_fingerprint_sensitive_to_schema(self, tiny_table):
        renamed = CandidateTable(
            {name: list(tiny_table.column(name)) for name in tiny_table.attribute_names},
            names=[f"x{i}" for i in range(tiny_table.n_candidates)],
        )
        assert fingerprint_candidate_table(tiny_table) != fingerprint_candidate_table(
            renamed
        )
        assert fingerprint_candidate_table(tiny_table) == fingerprint_candidate_table(
            tiny_table
        )

    def test_threshold_fingerprint_normalises_spellings(self):
        assert fingerprint_thresholds(0.1) == fingerprint_thresholds(
            FairnessThresholds(0.1)
        )
        assert fingerprint_thresholds(0.1) != fingerprint_thresholds(0.2)
        assert fingerprint_thresholds(
            FairnessThresholds(0.1, {"Race": 0.05})
        ) != fingerprint_thresholds(0.1)


class TestCacheKey:
    def test_paper_label_shares_key_with_plain_name(self, tiny_table, tiny_rankings):
        by_label = cache_key(tiny_rankings, tiny_table, method="A3")
        by_name = cache_key(tiny_rankings, tiny_table, method="fair-borda")
        assert by_label.digest == by_name.digest

    def test_distinct_queries_get_distinct_digests(self, tiny_table, tiny_rankings):
        base = cache_key(tiny_rankings, tiny_table)
        assert base.digest != cache_key(tiny_rankings, tiny_table, delta=0.2).digest
        assert (
            base.digest
            != cache_key(tiny_rankings, tiny_table, method="fair-copeland").digest
        )
        assert (
            base.digest
            != cache_key(tiny_rankings, tiny_table, strategy="insertion").digest
        )

    def test_key_to_dict_carries_digest(self, tiny_table, tiny_rankings):
        key = cache_key(tiny_rankings, tiny_table, strategy="insertion")
        payload = key.to_dict()
        assert payload["digest"] == key.digest
        assert payload["method"] == "fair-borda"
        assert payload["strategy"] == "insertion"

    def test_unknown_method_raises(self, tiny_table, tiny_rankings):
        with pytest.raises(AggregationError, match="unknown fair consensus method"):
            cache_key(tiny_rankings, tiny_table, method="nope")
