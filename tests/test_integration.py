"""End-to-end integration tests across the whole library.

These tests exercise realistic workflows a downstream user would run: build a
dataset, aggregate it with every method, check the MFCR contract (fairness
satisfied, preferences represented), and persist results.
"""

from __future__ import annotations

import pytest

from repro import (
    CandidateTable,
    FairnessThresholds,
    RankingSet,
    evaluate_mani_rank,
    get_fair_method,
    pd_loss,
)
from repro.datagen import generate_exam_dataset, generate_mallows_dataset, small_mallows_table
from repro.fair.registry import PAPER_LABELS
from repro.fairness.parity import mani_rank_satisfied, parity_scores
from repro.io.csv_io import read_candidate_table, read_ranking_set, write_candidate_table, write_ranking_set


ALL_LABELS = tuple(PAPER_LABELS)
FAIRNESS_GUARANTEEING = ("A1", "A2", "A3", "A4", "B4")


class TestFullPipelineOnMallowsData:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_mallows_dataset(
            small_mallows_table(group_size=2), "low", theta=0.6, n_rankings=15, rng=3
        )

    @pytest.mark.parametrize("label", ALL_LABELS)
    def test_every_method_produces_valid_permutation(self, dataset, label):
        method = get_fair_method(label)
        consensus = method.aggregate(dataset.rankings, dataset.table, 0.2)
        assert sorted(consensus.to_list()) == list(range(dataset.table.n_candidates))

    @pytest.mark.parametrize("label", FAIRNESS_GUARANTEEING)
    def test_mfcr_contract_fairness(self, dataset, label):
        method = get_fair_method(label)
        consensus = method.aggregate(dataset.rankings, dataset.table, 0.2)
        assert mani_rank_satisfied(consensus, dataset.table, 0.2)

    def test_fair_kemeny_dominates_other_fair_methods_on_pd_loss(self, dataset):
        delta = 0.2
        losses = {}
        for label in ("A1", "A2", "A3", "A4"):
            consensus = get_fair_method(label).aggregate(dataset.rankings, dataset.table, delta)
            losses[label] = pd_loss(dataset.rankings, consensus)
        assert losses["A1"] <= min(losses.values()) + 1e-6

    def test_unaware_kemeny_dominates_everything_on_pd_loss(self, dataset):
        kemeny = get_fair_method("B1").aggregate(dataset.rankings, dataset.table, 0.2)
        kemeny_loss = pd_loss(dataset.rankings, kemeny)
        for label in ("A1", "A3", "B3", "B4"):
            consensus = get_fair_method(label).aggregate(dataset.rankings, dataset.table, 0.2)
            assert kemeny_loss <= pd_loss(dataset.rankings, consensus) + 1e-9


class TestExamCaseStudyWorkflow:
    def test_debiasing_workflow(self):
        from repro.aggregation import CopelandAggregator

        dataset = generate_exam_dataset(n_students=150, seed=11)
        delta = FairnessThresholds(0.08, {"Lunch": 0.05})
        fair = get_fair_method("A4").aggregate(dataset.rankings, dataset.table, delta)
        report = evaluate_mani_rank(fair, dataset.table, delta)
        assert report.satisfied
        unaware = CopelandAggregator().aggregate(dataset.rankings)
        assert (
            parity_scores(unaware, dataset.table)["Lunch"]
            > parity_scores(fair, dataset.table)["Lunch"]
        )


class TestPersistenceWorkflow:
    def test_csv_round_trip_preserves_consensus(self, tmp_path):
        table = CandidateTable(
            {
                "Gender": ["M", "F", "F", "M", "F", "M"],
                "Race": ["A", "A", "B", "B", "A", "B"],
            },
            names=[f"p{i}" for i in range(6)],
        )
        rankings = RankingSet.from_orders(
            [[0, 3, 5, 1, 2, 4], [3, 0, 5, 2, 1, 4], [0, 5, 3, 2, 4, 1]]
        )
        write_candidate_table(table, tmp_path / "table.csv")
        write_ranking_set(rankings, table, tmp_path / "rankings.csv")
        table_loaded = read_candidate_table(tmp_path / "table.csv")
        rankings_loaded = read_ranking_set(tmp_path / "rankings.csv", table_loaded)

        method = get_fair_method("A3")
        original = method.aggregate(rankings, table, 0.35)
        reloaded = method.aggregate(rankings_loaded, table_loaded, 0.35)
        assert original == reloaded
