"""Shared parametrization for the cross-backend kernel suites.

``backend_params()`` yields one param per *known* backend: ``numpy`` always
runs; the ``numba`` leg is skipped — with the registry's reason visible in
the skip message — when numba is not importable, so a `-rs` run shows
exactly why the JIT leg did not execute instead of silently shrinking.
"""

from __future__ import annotations

import pytest

from repro.kernels.numba_backend import AVAILABLE as NUMBA_AVAILABLE
from repro.kernels.numba_backend import UNAVAILABLE_REASON


def backend_params() -> list:
    """One pytest param per known backend, numba marked skip when absent."""
    params = [pytest.param("numpy", id="numpy")]
    if NUMBA_AVAILABLE:
        params.append(pytest.param("numba", id="numba"))
    else:
        params.append(
            pytest.param(
                "numba",
                id="numba",
                marks=pytest.mark.skip(
                    reason=f"numba backend unavailable: {UNAVAILABLE_REASON}"
                ),
            )
        )
    return params


@pytest.fixture(params=backend_params())
def backend_name(request) -> str:
    """Every known backend name; the numba leg skips visibly when absent."""
    return request.param
