"""Tests for the compute-kernel backend registry (:mod:`repro.kernels`)."""

from __future__ import annotations

import pytest

from repro import kernels
from repro.exceptions import KernelError
from repro.kernels import (
    BACKEND_ENV_VAR,
    KernelBackend,
    NumpyKernelBackend,
    active_backend,
    active_backend_name,
    available_backends,
    create_backend,
    describe_backends,
    get_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
    unavailable_backends,
    use_backend,
)
from repro.kernels.numba_backend import AVAILABLE as NUMBA_AVAILABLE


@pytest.fixture(autouse=True)
def _reset_default_backend():
    """Every test leaves the process-wide default untouched."""
    yield
    set_default_backend(None)


class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in available_backends()

    def test_numba_is_either_available_or_explained(self):
        if NUMBA_AVAILABLE:
            assert "numba" in available_backends()
        else:
            assert "numba" not in available_backends()
            reason = unavailable_backends()["numba"]
            assert "numba" in reason

    def test_create_backend_returns_fresh_instances(self):
        assert create_backend("numpy") is not create_backend("numpy")

    def test_get_backend_shares_one_instance(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_unknown_name_raises_kernel_error_listing_available(self):
        with pytest.raises(KernelError, match="numpy"):
            create_backend("no-such-backend")

    def test_unavailable_name_error_includes_reason(self):
        if NUMBA_AVAILABLE:
            pytest.skip("numba is installed: no unavailable backend to probe")
        with pytest.raises(KernelError, match="unavailable"):
            create_backend("numba")

    def test_register_backend_replaces_and_drops_cached_instance(self):
        original = get_backend("numpy")

        @register_backend
        class ReplacementBackend(NumpyKernelBackend):
            name = "numpy"

        try:
            replaced = get_backend("numpy")
            assert isinstance(replaced, ReplacementBackend)
            assert replaced is not original
        finally:
            register_backend(NumpyKernelBackend)
        assert isinstance(get_backend("numpy"), NumpyKernelBackend)


class TestResolution:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert active_backend_name() == "numpy"
        assert isinstance(active_backend(), NumpyKernelBackend)

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert active_backend_name() == "numpy"

    def test_override_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "no-such-backend")
        set_default_backend("numpy")
        assert active_backend_name() == "numpy"

    def test_set_default_backend_validates_eagerly(self):
        with pytest.raises(KernelError):
            set_default_backend("no-such-backend")

    def test_use_backend_restores_previous_default(self):
        before = active_backend_name()
        with use_backend("numpy"):
            assert active_backend_name() == "numpy"
        assert active_backend_name() == before

    def test_resolve_backend_accepts_none_name_and_instance(self):
        instance = NumpyKernelBackend()
        assert resolve_backend(None).name == active_backend_name()
        assert resolve_backend("numpy").name == "numpy"
        assert resolve_backend(instance) is instance

    def test_resolve_backend_rejects_other_types(self):
        with pytest.raises(KernelError):
            resolve_backend(object())


class TestIntrospection:
    def test_describe_backends_shape(self):
        description = describe_backends()
        assert description["env_var"] == BACKEND_ENV_VAR
        assert "numpy" in description["available"]
        active = description["active"]
        assert set(active) == {"name", "compiled", "detail"}
        assert isinstance(active["compiled"], bool)

    def test_numpy_compile_status(self):
        status = get_backend("numpy").compile_status()
        assert status["name"] == "numpy"
        assert status["compiled"] is False

    def test_backend_is_kernel_backend(self):
        assert isinstance(get_backend("numpy"), KernelBackend)

    def test_warmup_is_safe(self):
        get_backend("numpy").warmup()

    def test_module_all_resolves(self):
        for name in kernels.__all__:
            assert hasattr(kernels, name), f"{name} exported but missing"
