"""Cross-backend bit-identity property suite.

Every registered kernel backend must produce **bit-identical** results to
the ``numpy`` backend (itself the pre-seam loops extracted verbatim) on the
unweighted integer-valued inputs the engines feed it: same orders, same
objectives, same parity floats, compared with ``==`` — no tolerances.  The
suite drives randomized sweep / move / swap / repair traces through every
backend; the ``numba`` leg auto-skips with the registry's reason when numba
is not importable (see ``conftest.backend_params``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregation.incremental import KemenyDeltaEngine
from repro.core.candidates import CandidateTable
from repro.core.pairwise import favored_mixed_pairs_by_group_naive
from repro.core.ranking import Ranking
from repro.core.ranking_set import RankingSet
from repro.exceptions import AggregationError
from repro.fair.make_mr_fair import make_mr_fair
from repro.fairness.incremental import FairnessState
from repro.kernels import get_backend


def _random_profile(rng: np.random.Generator, n: int, m: int) -> RankingSet:
    orders = [rng.permutation(n).tolist() for _ in range(m)]
    return RankingSet.from_orders(orders)


def _random_table(rng: np.random.Generator, n: int) -> CandidateTable:
    columns = {}
    for index in range(2):
        cardinality = int(rng.integers(2, 4))
        values = [f"v{v}" for v in range(cardinality)]
        values += [f"v{int(v)}" for v in rng.integers(0, cardinality, n - cardinality)]
        rng.shuffle(values)
        columns[f"P{index}"] = values
    return CandidateTable(columns)


class TestSweepTraces:
    """The carry-run bubble sweep: identical orders and objectives."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_full_sweep_to_convergence(self, backend_name, seed):
        rng = np.random.default_rng(seed)
        n, m = int(rng.integers(6, 24)), int(rng.integers(3, 12))
        rankings = _random_profile(rng, n, m)
        initial = Ranking(rng.permutation(n).tolist())
        engine = KemenyDeltaEngine(rankings, initial, backend=backend_name)
        reference = KemenyDeltaEngine(rankings, initial, backend="numpy")
        improved, steps = True, 0
        while improved and steps < 10_000:
            improved = engine.sweep_adjacent()
            assert improved == reference.sweep_adjacent()
            assert engine.order_list == reference.order_list
            assert engine.objective == reference.objective
            steps += 1
        assert not improved

    @pytest.mark.parametrize("seed", [10, 11])
    def test_sweep_interleaved_with_swaps(self, backend_name, seed):
        rng = np.random.default_rng(seed)
        n = 12
        rankings = _random_profile(rng, n, 7)
        initial = Ranking(rng.permutation(n).tolist())
        engine = KemenyDeltaEngine(rankings, initial, backend=backend_name)
        reference = KemenyDeltaEngine(rankings, initial, backend="numpy")
        for _ in range(30):
            first, second = rng.choice(n, size=2, replace=False)
            assert engine.apply_swap(first, second) == reference.apply_swap(
                first, second
            )
            engine.sweep_adjacent()
            reference.sweep_adjacent()
            assert engine.order_list == reference.order_list
            assert engine.objective == reference.objective


class TestMoveTraces:
    """Block-move scoring: identical delta vectors and applied objectives."""

    @pytest.mark.parametrize("seed", [20, 21, 22])
    def test_move_deltas_every_candidate(self, backend_name, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 20))
        rankings = _random_profile(rng, n, 9)
        initial = Ranking(rng.permutation(n).tolist())
        engine = KemenyDeltaEngine(rankings, initial, backend=backend_name)
        reference = KemenyDeltaEngine(rankings, initial, backend="numpy")
        for candidate in range(n):
            assert np.array_equal(
                engine.move_deltas(candidate), reference.move_deltas(candidate)
            )

    @pytest.mark.parametrize("seed", [30, 31])
    def test_random_move_trace(self, backend_name, seed):
        rng = np.random.default_rng(seed)
        n = 15
        rankings = _random_profile(rng, n, 6)
        initial = Ranking(rng.permutation(n).tolist())
        engine = KemenyDeltaEngine(rankings, initial, backend=backend_name)
        reference = KemenyDeltaEngine(rankings, initial, backend="numpy")
        for _ in range(40):
            candidate = int(rng.integers(n))
            position = int(rng.integers(n))
            assert engine.apply_move(candidate, position) == reference.apply_move(
                candidate, position
            )
            assert engine.order_list == reference.order_list
            assert engine.objective == reference.objective


class TestParityTraces:
    """Per-swap parity updates: identical floats after randomized traces."""

    @pytest.mark.parametrize("seed", [40, 41, 42])
    def test_swap_and_move_trace(self, backend_name, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(6, 20))
        table = _random_table(rng, n)
        ranking = Ranking(rng.permutation(n).tolist())
        state = FairnessState(ranking, table, backend=backend_name)
        reference = FairnessState(ranking, table, backend="numpy")
        for _ in range(50):
            if rng.random() < 0.5:
                first, second = rng.choice(n, size=2, replace=False)
                assert state.parity_after_swap(
                    int(first), int(second)
                ) == reference.parity_after_swap(int(first), int(second))
                state.apply_swap(int(first), int(second))
                reference.apply_swap(int(first), int(second))
            else:
                candidate = int(rng.integers(n))
                position = int(rng.integers(n))
                assert state.parity_after_move(
                    candidate, position
                ) == reference.parity_after_move(candidate, position)
                state.apply_move(candidate, position)
                reference.apply_move(candidate, position)
            assert state.parity_scores() == reference.parity_scores()
            for entity in table.all_fairness_entities():
                assert np.array_equal(
                    state.favored_counts(entity), reference.favored_counts(entity)
                )


class TestRepairTraces:
    """Make-MR-Fair end to end: identical repaired rankings per backend."""

    @pytest.mark.parametrize("seed", [50, 51, 52, 53])
    def test_repair_matches_numpy(self, backend_name, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(6, 18))
        table = _random_table(rng, n)
        ranking = Ranking(rng.permutation(n).tolist())
        delta = float(rng.choice([0.05, 0.1, 0.2]))
        try:
            reference = make_mr_fair(ranking, table, delta, backend="numpy")
        except AggregationError as error:
            # Infeasible threshold for this random group structure: every
            # backend must fail the same way.
            with pytest.raises(AggregationError, match="no progress"):
                make_mr_fair(ranking, table, delta, backend=backend_name)
            assert "no progress" in str(error)
            return
        result = make_mr_fair(ranking, table, delta, backend=backend_name)
        assert result.ranking == reference.ranking
        assert result.n_swaps == reference.n_swaps
        assert result.corrected_entities == reference.corrected_entities
        assert result.converged == reference.converged


class TestSharedKernels:
    """The core precedence / favored-pair kernels against naive references."""

    @pytest.mark.parametrize("seed", [60, 61])
    def test_precedence_accumulate(self, backend_name, seed):
        rng = np.random.default_rng(seed)
        n, m = 10, 8
        positions = np.argsort(
            np.stack([rng.permutation(n) for _ in range(m)]), axis=1
        ).astype(np.int64)
        weights = np.ones(m, dtype=np.float64)
        matrix = np.zeros((n, n), dtype=np.float64)
        get_backend(backend_name).precedence_accumulate(matrix, positions, weights)
        naive = np.zeros((n, n))
        for r in range(m):
            for a in range(n):
                for b in range(n):
                    if positions[r, b] < positions[r, a]:
                        naive[a, b] += 1.0
        assert np.array_equal(matrix, naive)

    @pytest.mark.parametrize("seed", [70, 71, 72])
    def test_favored_mixed_pairs_by_group(self, backend_name, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 25))
        n_groups = int(rng.integers(2, 5))
        membership = rng.integers(0, n_groups, n).astype(np.int64)
        ranking = Ranking(rng.permutation(n).tolist())
        counts = get_backend(backend_name).favored_mixed_pairs_by_group(
            ranking.order, membership, n_groups
        )
        naive = favored_mixed_pairs_by_group_naive(ranking, membership, n_groups)
        assert np.array_equal(np.asarray(counts), np.asarray(naive))
