"""Tests for the top-level package API and the exception hierarchy."""

from __future__ import annotations

import pytest

import repro
from repro import exceptions


class TestPublicApi:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"{name} is exported but missing"

    def test_core_types_importable_from_top_level(self):
        assert repro.CandidateTable is not None
        assert repro.Ranking is not None
        assert repro.RankingSet is not None
        assert repro.FairKemenyAggregator is not None

    def test_docstring_quickstart_runs(self):
        table = repro.CandidateTable(
            {
                "Gender": ["M", "M", "W", "W", "M", "M", "W", "W"],
                "Race": ["A", "B", "A", "B", "A", "B", "A", "B"],
            }
        )
        rankings = repro.RankingSet.from_orders(
            [[0, 1, 4, 5, 2, 3, 6, 7], [1, 0, 5, 4, 3, 2, 7, 6], [0, 4, 1, 5, 2, 6, 3, 7]]
        )
        fair = repro.FairKemenyAggregator().aggregate(rankings, table, delta=0.2)
        assert repro.evaluate_mani_rank(fair, table, delta=0.2).satisfied

    def test_singleton_intersections_make_fair_kemeny_infeasible(self):
        """A 2x2 table with one candidate per intersection cannot satisfy any IRP < 1."""
        table = repro.CandidateTable(
            {"Gender": ["M", "W", "W", "M"], "Race": ["A", "A", "B", "B"]}
        )
        rankings = repro.RankingSet.from_orders([[0, 3, 1, 2], [3, 0, 2, 1]])
        with pytest.raises(repro.InfeasibleProblemError):
            repro.FairKemenyAggregator().aggregate(rankings, table, delta=0.2)


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in exceptions.__all__:
            error_class = getattr(exceptions, name)
            assert issubclass(error_class, exceptions.ReproError)

    def test_validation_errors_are_value_errors(self):
        assert issubclass(exceptions.ValidationError, ValueError)
        assert issubclass(exceptions.RankingError, ValueError)

    def test_infeasible_is_aggregation_error(self):
        assert issubclass(exceptions.InfeasibleProblemError, exceptions.AggregationError)

    def test_catching_base_class_catches_subclasses(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.SolverError("boom")
