"""Tests for the stable :mod:`repro.api` facade, the deprecation shims, and
the package-wide ``__all__`` audit."""

from __future__ import annotations

import importlib
import pkgutil
import warnings

import numpy as np
import pytest

import repro
import repro.api as api
from repro import CandidateTable, Ranking, RankingSet
from repro.exceptions import ValidationError
from repro.fair.make_mr_fair import MakeMRFairResult
from repro.io.csv_io import write_candidate_table, write_ranking_set


@pytest.fixture
def profile():
    table = CandidateTable(
        {
            "Gender": ["M", "M", "W", "W", "M", "M", "W", "W"],
            "Race": ["A", "B", "A", "B", "A", "B", "A", "B"],
        }
    )
    rankings = RankingSet.from_orders(
        [[0, 1, 4, 5, 2, 3, 6, 7], [1, 0, 5, 4, 3, 2, 7, 6], [0, 4, 1, 5, 2, 6, 3, 7]]
    )
    return rankings, table


class TestFacadeVerbs:
    def test_load_profile_round_trips(self, tmp_path, profile):
        rankings, table = profile
        write_candidate_table(table, tmp_path / "candidates.csv")
        write_ranking_set(rankings, table, tmp_path / "rankings.csv")
        loaded = api.load_profile(
            tmp_path / "candidates.csv", tmp_path / "rankings.csv"
        )
        assert loaded.table.names == table.names
        assert loaded.rankings.to_order_lists() == rankings.to_order_lists()

    def test_load_profile_positions_errors(self, tmp_path, profile):
        _, table = profile
        write_candidate_table(table, tmp_path / "candidates.csv")
        (tmp_path / "rankings.csv").write_text("label,1,2\nr0,c0,nobody\n")
        with pytest.raises(ValidationError, match="rankings.csv:2"):
            api.load_profile(tmp_path / "candidates.csv", tmp_path / "rankings.csv")

    def test_aggregate_returns_payload(self, profile):
        rankings, table = profile
        payload = api.aggregate(rankings, table, method="fair-borda", delta=0.2)
        assert sorted(payload["consensus"]["order"]) == list(range(8))
        assert payload["method"] == "fair-borda"

    def test_aggregate_backend_is_scoped_to_the_call(self, profile):
        rankings, table = profile
        before = api.active_backend_name()
        explicit = api.aggregate(rankings, table, delta=0.2, backend="numpy")
        assert api.active_backend_name() == before
        assert explicit == api.aggregate(rankings, table, delta=0.2)

    def test_repair_single_ranking(self, profile):
        _, table = profile
        result = api.repair(Ranking(range(8)), table, delta=0.2)
        assert isinstance(result, MakeMRFairResult)
        assert api.evaluate_fairness(result.ranking, table, delta=0.2).satisfied

    def test_repair_batch_matches_serial(self, profile):
        _, table = profile
        rng = np.random.default_rng(5)
        batch = [Ranking(rng.permutation(8).tolist()) for _ in range(5)]
        serial = [api.repair(r, table, delta=0.2) for r in batch]
        sharded = api.repair(batch, table, delta=0.2, n_shards=2)
        assert [r.ranking for r in sharded] == [r.ranking for r in serial]

    def test_evaluate_fairness_accepts_plain_order(self, profile):
        _, table = profile
        report = api.evaluate_fairness([0, 1, 4, 5, 2, 3, 6, 7], table, delta=0.5)
        assert report.satisfied in (True, False)

    def test_open_cache_memory_only(self, profile):
        rankings, table = profile
        service = api.open_cache()
        first = service.aggregate(rankings, table, delta=0.2)
        second = service.aggregate(rankings, table, delta=0.2)
        assert not first["cached"] and second["cached"]
        assert first["result"] == second["result"]

    def test_open_cache_with_disk_tier(self, tmp_path, profile):
        rankings, table = profile
        service = api.open_cache(tmp_path / "cache", policy="cost-aware")
        service.aggregate(rankings, table, delta=0.2)
        assert any((tmp_path / "cache").iterdir())


class TestBackendReexports:
    def test_registry_surface_is_reexported(self):
        assert "numpy" in api.available_backends()
        assert api.describe_backends()["env_var"] == api.BACKEND_ENV_VAR
        assert api.get_backend("numpy").name == "numpy"

    def test_top_level_reexports(self):
        assert "numpy" in repro.available_backends()
        assert repro.active_backend_name() in repro.available_backends()


class TestDeprecatedAliases:
    def test_alias_warns_once_then_stays_silent(self):
        repro._warned_aliases.discard("cache_key")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = repro.cache_key
            second = repro.cache_key
        assert first is second
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.cache" in str(deprecations[0].message)

    def test_alias_resolves_to_real_object(self):
        from repro.cache import compute_consensus_payload

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert repro.compute_consensus_payload is compute_consensus_payload

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.no_such_symbol


class TestAllAudit:
    """Every ``__all__`` name across ``repro`` and its subpackages resolves."""

    def _modules(self):
        yield repro
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            yield importlib.import_module(info.name)

    def test_every_dunder_all_name_resolves(self):
        checked = 0
        for module in self._modules():
            for name in getattr(module, "__all__", ()):
                assert hasattr(module, name), f"{module.__name__}.{name} missing"
                checked += 1
        assert checked > 100

    def test_facade_all_is_complete(self):
        for name in api.__all__:
            assert hasattr(api, name)
        for verb in ("load_profile", "aggregate", "repair", "evaluate_fairness",
                     "open_cache"):
            assert verb in api.__all__
