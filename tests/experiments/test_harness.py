"""Tests for the shared experiment harness utilities."""

from __future__ import annotations

import pytest

from repro.experiments.harness import (
    DEFAULT_THETAS,
    SCALES,
    ScenarioCell,
    ScenarioGrid,
    evaluate_method,
    methods_by_label,
    record_from_evaluation,
    require_scale,
    theta_sweep_datasets,
)
from repro.exceptions import ExperimentError
from repro.fair.registry import get_fair_method
from repro.fairness.parity import mani_rank_satisfied


class TestScale:
    def test_valid_scales(self):
        assert require_scale("ci") == "ci"
        assert require_scale(" PAPER ") == "paper"
        assert set(SCALES) == {"ci", "paper"}

    def test_invalid_scale(self):
        with pytest.raises(ExperimentError):
            require_scale("huge")


class TestEvaluateMethod:
    def test_evaluation_fields(self, small_dataset):
        method = get_fair_method("A3")
        evaluation = evaluate_method(
            method, small_dataset.rankings, small_dataset.table, 0.1
        )
        assert evaluation.method == "Fair-Borda"
        assert 0.0 <= evaluation.pd_loss <= 1.0
        assert evaluation.runtime_seconds > 0.0
        assert evaluation.price_of_fairness is not None
        assert mani_rank_satisfied(evaluation.ranking, small_dataset.table, 0.1)

    def test_explicit_reference_used_for_pof(self, small_dataset):
        method = get_fair_method("A3")
        reference = small_dataset.rankings[0]
        evaluation = evaluate_method(
            method,
            small_dataset.rankings,
            small_dataset.table,
            0.1,
            reference_unaware=reference,
        )
        from repro.fairness.pd_loss import price_of_fairness

        expected = price_of_fairness(small_dataset.rankings, evaluation.ranking, reference)
        assert evaluation.price_of_fairness == pytest.approx(expected)

    def test_record_from_evaluation_flattens(self, small_dataset):
        method = get_fair_method("A3")
        evaluation = evaluate_method(
            method, small_dataset.rankings, small_dataset.table, 0.1
        )
        record = record_from_evaluation(evaluation, small_dataset.table, theta=0.6)
        assert record["theta"] == 0.6
        assert "ARP Gender" in record
        assert "IRP" in record
        assert record["method"] == "Fair-Borda"


class TestThetaSweep:
    def test_default_thetas(self):
        assert DEFAULT_THETAS == (0.2, 0.4, 0.6, 0.8)

    def test_sweep_shares_modal_ranking(self, small_table):
        datasets = theta_sweep_datasets(small_table, "low", (0.2, 0.8), 10, seed=3)
        assert len(datasets) == 2
        assert datasets[0].modal == datasets[1].modal
        assert datasets[0].theta == 0.2
        assert datasets[1].theta == 0.8
        assert datasets[0].rankings.n_rankings == 10

    def test_sweep_is_reproducible(self, small_table):
        first = theta_sweep_datasets(small_table, "low", (0.4,), 5, seed=3)
        second = theta_sweep_datasets(small_table, "low", (0.4,), 5, seed=3)
        assert first[0].rankings.to_order_lists() == second[0].rankings.to_order_lists()


class TestScenarioGrid:
    TARGETS = {"Race": 0.4, "Gender": 0.5}

    def test_product_cell_order(self):
        grid = ScenarioGrid.product(
            candidate_counts=(10, 20),
            ranking_counts=(5,),
            thetas=(0.6,),
            modal_targets=self.TARGETS,
            param_grid={"delta": (0.1, 0.33)},
            seed=3,
        )
        assert len(grid.cells) == 4
        # Data axes outermost, parameter axes innermost.
        assert [(c.n_candidates, c.extras["delta"]) for c in grid.cells] == [
            (10, 0.1),
            (10, 0.33),
            (20, 0.1),
            (20, 0.33),
        ]

    def test_kernels_are_cached_across_cells(self):
        grid = ScenarioGrid.product(
            candidate_counts=(12,),
            ranking_counts=(6,),
            thetas=(0.6,),
            modal_targets=self.TARGETS,
            param_grid={"delta": (0.1, 0.33)},
            seed=3,
        )
        first = grid.materialize(grid.cells[0])
        second = grid.materialize(grid.cells[1])
        assert first.table is second.table
        assert first.modal is second.modal
        assert first.rankings is second.rankings

    def test_run_records_axes_params_and_timings(self):
        grid = ScenarioGrid.product(
            candidate_counts=(12,),
            ranking_counts=(6,),
            thetas=(0.6,),
            modal_targets=self.TARGETS,
            param_grid={"delta": (0.1,)},
            seed=3,
        )
        records = grid.run(lambda data: {"m": data.rankings.n_rankings})
        assert len(records) == 1
        record = records[0]
        assert record["n_candidates"] == 12
        assert record["n_rankings"] == 6
        assert record["theta"] == 0.6
        assert record["delta"] == 0.1
        assert record["m"] == 6
        assert record["datagen_s"] >= 0.0
        assert record["cell_s"] >= 0.0

    def test_materialized_data_is_deterministic(self):
        def build():
            grid = ScenarioGrid(
                [ScenarioCell.build(12, 6, 0.6, self.TARGETS)], seed=11
            )
            return grid.materialize(grid.cells[0])

        first, second = build(), build()
        assert first.modal == second.modal
        assert first.rankings.to_order_lists() == second.rankings.to_order_lists()

    def test_sampling_streams_differ_across_theta(self):
        grid = ScenarioGrid.product(
            candidate_counts=(12,),
            ranking_counts=(6,),
            thetas=(0.2, 0.8),
            modal_targets=self.TARGETS,
            seed=3,
        )
        first, second = grid.cells[0], grid.cells[1]
        # Distinct workloads must not be comonotone: the underlying uniform
        # streams differ, not just the θ-dependent CDF inversion.
        assert (
            grid._cell_rng(first).random(4).tolist()
            != grid._cell_rng(second).random(4).tolist()
        )

    def test_run_evicts_passed_workload_samples(self):
        grid = ScenarioGrid.product(
            candidate_counts=(10,),
            ranking_counts=(4, 6),
            thetas=(0.6,),
            modal_targets=self.TARGETS,
            seed=3,
        )
        grid.run(lambda data: {})
        # Only the last workload's sample stays cached after a sweep.
        assert len(grid._rankings) == 1

    def test_empty_grid_rejected(self):
        with pytest.raises(ExperimentError):
            ScenarioGrid([])

    def test_invalid_worker_count_rejected(self):
        grid = ScenarioGrid([ScenarioCell.build(8, 4, 0.6, self.TARGETS)], seed=3)
        with pytest.raises(ExperimentError):
            grid.run(_count_rankings, n_workers=0)

    def test_workload_groups_split_on_data_axes_only(self):
        grid = ScenarioGrid.product(
            candidate_counts=(10, 12),
            ranking_counts=(4,),
            thetas=(0.6,),
            modal_targets=self.TARGETS,
            param_grid={"delta": (0.1, 0.33)},
            seed=3,
        )
        groups = grid.workload_groups()
        # Two workloads (one per candidate count), each holding both deltas.
        assert [len(group) for group in groups] == [2, 2]
        assert [cell for group in groups for cell in group] == grid.cells


#: Timing fields excluded from the parallel-determinism comparison (the only
#: fields allowed to differ between serial and parallel sweeps).
TIMING_FIELDS = {"datagen_s", "cell_s", "runtime_s"}


def _strip_timings(record: dict) -> dict:
    return {
        key: value for key, value in record.items() if key not in TIMING_FIELDS
    }


def _count_rankings(data) -> dict:
    """Module-level cell callback (picklable for the process pool)."""
    return {
        "m": data.rankings.n_rankings,
        "first_order": data.rankings[0].to_list(),
        "modal_head": int(data.modal[0]),
    }


class TestParallelScenarioGrid:
    TARGETS = {"Race": 0.4, "Gender": 0.5}

    def _grid(self) -> ScenarioGrid:
        return ScenarioGrid.product(
            candidate_counts=(10, 14),
            ranking_counts=(4, 6),
            thetas=(0.4, 0.8),
            modal_targets=self.TARGETS,
            param_grid={"delta": (0.1,)},
            seed=11,
        )

    def test_parallel_records_identical_to_serial(self):
        serial = self._grid().run(_count_rankings, n_workers=1)
        parallel = self._grid().run(_count_rankings, n_workers=4)
        assert len(serial) == len(parallel) == 8
        assert [_strip_timings(r) for r in serial] == [
            _strip_timings(r) for r in parallel
        ]
        # Timing fields are still present on every parallel record.
        assert all(
            TIMING_FIELDS - {"runtime_s"} <= set(record) for record in parallel
        )

    def test_worker_count_does_not_change_records(self):
        two = self._grid().run(_count_rankings, n_workers=2)
        three = self._grid().run(_count_rankings, n_workers=3)
        assert [_strip_timings(r) for r in two] == [_strip_timings(r) for r in three]

    def test_n_workers_none_means_serial(self):
        records = self._grid().run(_count_rankings, n_workers=None)
        assert [_strip_timings(r) for r in records] == [
            _strip_timings(r) for r in self._grid().run(_count_rankings)
        ]

    def test_single_cell_grid_runs_in_process(self):
        grid = ScenarioGrid([ScenarioCell.build(8, 4, 0.6, self.TARGETS)], seed=3)
        records = grid.run(_count_rankings, n_workers=4)
        assert len(records) == 1
        assert records[0]["m"] == 4

    def test_parallel_method_sweep_matches_serial(self):
        from repro.experiments.harness import evaluate_labelled_cell

        def build():
            return ScenarioGrid.product(
                candidate_counts=(12,),
                ranking_counts=(6,),
                thetas=(0.6,),
                modal_targets=self.TARGETS,
                param_grid={"label": ("A3", "B3"), "delta": (0.1,)},
                seed=3,
            )

        serial = build().run(evaluate_labelled_cell, n_workers=1)
        parallel = build().run(evaluate_labelled_cell, n_workers=2)
        assert [_strip_timings(r) for r in serial] == [
            _strip_timings(r) for r in parallel
        ]


class TestInGroupThreads:
    """Opt-in thread-level parallelism inside one workload group.

    The contract mirrors the process pool above: records are bit-identical
    to the serial sweep apart from the wall-clock timing fields.
    """

    TARGETS = {"Race": 0.4, "Gender": 0.5}

    def _grid(self) -> ScenarioGrid:
        return ScenarioGrid.product(
            candidate_counts=(10, 14),
            ranking_counts=(4,),
            thetas=(0.4, 0.8),
            modal_targets=self.TARGETS,
            param_grid={"delta": (0.1, 0.2)},
            seed=11,
        )

    @pytest.mark.parametrize("in_group_threads", [2, 3, None])
    def test_threaded_records_identical_to_serial(self, in_group_threads):
        serial = self._grid().run(_count_rankings, in_group_threads=1)
        threaded = self._grid().run(
            _count_rankings, in_group_threads=in_group_threads
        )
        assert [_strip_timings(r) for r in serial] == [
            _strip_timings(r) for r in threaded
        ]

    def test_threads_compose_with_process_pool(self):
        serial = self._grid().run(_count_rankings, n_workers=1)
        combined = self._grid().run(
            _count_rankings, n_workers=2, in_group_threads=2
        )
        assert [_strip_timings(r) for r in serial] == [
            _strip_timings(r) for r in combined
        ]

    def test_method_sweep_matches_serial(self):
        from repro.experiments.harness import evaluate_labelled_cell

        def build():
            return ScenarioGrid.product(
                candidate_counts=(12,),
                ranking_counts=(6,),
                thetas=(0.6,),
                modal_targets=self.TARGETS,
                param_grid={"label": ("A3", "B3"), "delta": (0.1,)},
                seed=3,
            )

        serial = build().run(evaluate_labelled_cell, in_group_threads=1)
        threaded = build().run(evaluate_labelled_cell, in_group_threads=3)
        assert [_strip_timings(r) for r in serial] == [
            _strip_timings(r) for r in threaded
        ]

    def test_invalid_thread_count_rejected(self):
        grid = ScenarioGrid([ScenarioCell.build(8, 4, 0.6, self.TARGETS)], seed=3)
        with pytest.raises(ExperimentError):
            grid.run(_count_rankings, in_group_threads=0)


class TestMethodsByLabel:
    def test_instantiates_requested_labels(self):
        methods = methods_by_label(["A3", "B3"])
        assert methods["A3"].name == "Fair-Borda"
        assert methods["B3"].name == "Pick-Fairest-Perm"
