"""Smoke and shape tests for the per-figure / per-table experiment modules.

Each experiment is run at a deliberately tiny configuration (few θ values,
few methods, small candidate counts) so the full suite stays fast; the
paper-shape assertions check the *qualitative* findings of the corresponding
figure or table rather than absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, available_experiments, run_experiment
from repro.experiments import figure3, figure4, figure5, figure6, figure7
from repro.experiments import table1, table2, table3, table4, table5
from repro.exceptions import ExperimentError


class TestRegistry:
    def test_every_paper_artifact_is_registered(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "table2",
            "figure7",
            "table3",
            "table4",
            "table5",
            "ablation-search",
        }

    def test_descriptions_available(self):
        descriptions = available_experiments()
        assert all(descriptions.values())

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment("figure99")

    def test_run_experiment_dispatches(self):
        result = run_experiment("table1", scale="ci")
        assert result.experiment == "table1"


class TestTable1:
    def test_profiles_and_columns(self):
        result = table1.run(scale="ci")
        assert len(result.records) == 3
        datasets = [record["dataset"] for record in result.records]
        assert datasets == ["Low-Fair", "Medium-Fair", "High-Fair"]
        for record in result.records:
            assert 0.0 <= record["IRP"] <= 1.0

    def test_profiles_ordered_by_unfairness(self):
        result = table1.run(scale="ci")
        by_name = {record["dataset"]: record for record in result.records}
        assert by_name["Low-Fair"]["ARP Gender"] > by_name["High-Fair"]["ARP Gender"]
        assert by_name["Low-Fair"]["IRP"] > by_name["High-Fair"]["IRP"]


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        return figure3.run(scale="ci", thetas=(0.6,))

    def test_all_approaches_present(self, result):
        approaches = {record["approach"] for record in result.records}
        assert approaches == {
            "Kemeny (unaware)",
            "Attributes only",
            "Intersection only",
            "MANI-Rank",
        }

    def test_only_mani_rank_constrains_everything(self, result):
        delta = result.parameters["delta"]
        for record in result.filtered(approach="MANI-Rank"):
            assert record["ARP Gender"] <= delta + 1e-6
            assert record["ARP Race"] <= delta + 1e-6
            assert record["IRP"] <= delta + 1e-6
        attr_only = result.filtered(approach="Attributes only")
        assert all(r["ARP Gender"] <= delta + 1e-6 for r in attr_only)
        assert any(r["IRP"] > delta for r in attr_only)
        inter_only = result.filtered(approach="Intersection only")
        assert all(r["IRP"] <= delta + 1e-6 for r in inter_only)

    def test_unaware_kemeny_violates(self, result):
        delta = result.parameters["delta"]
        assert any(
            record["ARP Gender"] > delta or record["IRP"] > delta
            for record in result.filtered(approach="Kemeny (unaware)")
        )


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return figure4.run(scale="ci", thetas=(0.6,))

    def test_every_method_reported(self, result):
        labels = {record["label"] for record in result.records}
        assert labels == {"A1", "A2", "A3", "A4", "B1", "B2", "B3", "B4"}

    def test_fair_methods_satisfy_threshold(self, result):
        delta = result.parameters["delta"]
        for label in ("A1", "A2", "A3", "A4", "B4"):
            for record in result.filtered(label=label):
                assert record["ARP Gender"] <= delta + 1e-6
                assert record["ARP Race"] <= delta + 1e-6
                assert record["IRP"] <= delta + 1e-6

    def test_unaware_baselines_violate(self, result):
        delta = result.parameters["delta"]
        for label in ("B1", "B2"):
            for record in result.filtered(label=label):
                assert max(record["ARP Gender"], record["ARP Race"], record["IRP"]) > delta

    def test_kemeny_has_lowest_pd_loss(self, result):
        rows = {record["label"]: record["pd_loss"] for record in result.records}
        assert rows["B1"] == min(rows.values())

    def test_fair_kemeny_best_among_fair_methods(self, result):
        rows = {record["label"]: record["pd_loss"] for record in result.records}
        assert rows["A1"] <= min(rows["A2"], rows["A3"], rows["A4"], rows["B4"]) + 1e-6


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return figure5.run(scale="ci", thetas=(0.4, 0.8), deltas=(0.1, 0.4))

    def test_panels_present(self, result):
        panels = {record["panel"] for record in result.records}
        assert panels == {"theta-sweep", "delta-sweep"}

    def test_pof_non_negative_for_fair_kemeny(self, result):
        for record in result.filtered(panel="theta-sweep"):
            assert record["PoF"] >= -1e-9

    def test_looser_delta_is_cheaper(self, result):
        for method in {record["method"] for record in result.filtered(panel="delta-sweep")}:
            rows = result.filtered(panel="delta-sweep", method=method)
            by_delta = {record["delta"]: record["PoF"] for record in rows}
            assert by_delta[0.4] <= by_delta[0.1] + 0.02


class TestScalabilityExperiments:
    def test_figure6_rows_and_tiers(self):
        result = figure6.run(
            scale="ci", ranking_counts=(20, 60), method_labels=("A3", "A4", "B3")
        )
        assert len(result.records) == 6
        for record in result.records:
            assert record["runtime_s"] >= 0.0

    def test_table2_replication_scaling(self):
        result = table2.run(scale="ci", ranking_counts=(100, 400))
        counts = [record["n_rankings"] for record in result.records]
        assert counts == [100, 400]
        assert all(record["runtime_s"] > 0 for record in result.records)

    def test_figure7_delta_effect(self):
        result = figure7.run(
            scale="ci", candidate_counts=(30,), deltas=(0.1, 0.33), method_labels=("A3",)
        )
        assert len(result.records) == 2

    def test_table3_candidate_scaling(self):
        result = table3.run(scale="ci", candidate_counts=(100, 200))
        runtimes = [record["runtime_s"] for record in result.records]
        assert len(runtimes) == 2
        assert all(value > 0 for value in runtimes)


class TestCaseStudies:
    @pytest.fixture(scope="class")
    def exam_result(self):
        return table4.run(scale="ci", methods=("B1", "A3", "A4"))

    def test_table4_rows(self, exam_result):
        labels = [record["ranking"] for record in exam_result.records]
        assert labels[:3] == ["Math", "Reading", "Writing"]
        assert "Kemeny" in labels
        assert "Fair-Borda" in labels

    def test_table4_fair_methods_reach_parity(self, exam_result):
        delta = exam_result.parameters["delta"]
        for record in exam_result.records:
            if record["ranking"].startswith("Fair-"):
                assert record["Gender"] <= delta + 1e-6
                assert record["Race"] <= delta + 1e-6
                assert record["Lunch"] <= delta + 1e-6
                assert record["IRP"] <= delta + 1e-6

    def test_table4_base_rankings_are_biased(self, exam_result):
        base = [r for r in exam_result.records if r["ranking"] in ("Math", "Reading", "Writing")]
        assert all(record["Lunch"] > 0.15 for record in base)

    def test_table5_structure_and_debiasing(self):
        result = table5.run(scale="ci", methods=("B1", "A4"))
        kemeny_row = next(r for r in result.records if r["ranking"] == "Kemeny")
        fair_row = next(r for r in result.records if r["ranking"] == "Fair-Copeland")
        assert kemeny_row["Location"] > fair_row["Location"]
        assert fair_row["Location"] <= result.parameters["delta"] + 1e-6
        assert fair_row["IRP"] <= result.parameters["delta"] + 1e-6


class TestAblationSearch:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import ablation_search

        return ablation_search.run(scale="ci", theta=0.2)

    def test_every_cell_reports_every_strategy_and_seed(self, result):
        from repro.aggregation.search import available_strategies

        expected = set(available_strategies())
        cells: dict[tuple, set] = {}
        for record in result.records:
            key = (record["n_candidates"], record["n_rankings"], record["seed_ranking"])
            cells.setdefault(key, set()).add(record["strategy"])
        assert cells
        assert {key[2] for key in cells} == {"borda", "cold"}
        for strategies in cells.values():
            assert strategies == expected

    def test_insertion_never_worse_than_adjacent_per_cell(self, result):
        for record in result.filtered(strategy="insertion"):
            (adjacent,) = [
                other
                for other in result.filtered(strategy="adjacent-swap")
                if all(
                    other[axis] == record[axis]
                    for axis in ("n_candidates", "n_rankings", "theta", "seed_ranking")
                )
            ]
            assert record["objective"] <= adjacent["objective"]

    def test_single_strategy_run_and_workers_match_serial(self):
        from repro.experiments import ablation_search

        serial = ablation_search.run(scale="ci", theta=0.6, strategies=("insertion",))
        assert {record["strategy"] for record in serial.records} == {"insertion"}
        parallel = ablation_search.run(
            scale="ci", theta=0.6, strategies=("insertion",), n_workers=2
        )
        def strip(record):
            return {
                key: value
                for key, value in record.items()
                if key not in ("search_s", "datagen_s", "cell_s")
            }

        assert [strip(r) for r in serial.records] == [strip(r) for r in parallel.records]
