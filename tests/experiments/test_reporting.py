"""Tests for the experiment result container and ASCII reporting."""

from __future__ import annotations


from repro.experiments.reporting import ExperimentResult, format_cell, render_table


class TestRenderTable:
    def test_empty_records(self):
        assert render_table([]) == "(no rows)"

    def test_basic_table(self):
        text = render_table([{"a": 1, "b": 0.5}, {"a": 2, "b": 0.25}])
        assert "a" in text and "b" in text
        assert "0.500" in text
        assert text.count("\n") == 3  # header, separator, two rows

    def test_column_selection(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_missing_cell_renders_blank(self):
        text = render_table([{"a": 1}, {"a": 2, "b": 3}])
        assert "b" in text

    def test_format_cell(self):
        assert format_cell(0.123456, 2) == "0.12"
        assert format_cell(True) == "True"
        assert format_cell("x") == "x"
        assert format_cell(7) == "7"


class TestExperimentResult:
    def _result(self) -> ExperimentResult:
        result = ExperimentResult("demo", "Demo experiment", parameters={"delta": 0.1})
        result.add(theta=0.2, method="A1", value=1.0)
        result.add(theta=0.4, method="A1", value=2.0)
        result.add(theta=0.2, method="B1", value=3.0)
        return result

    def test_columns_first_seen_order(self):
        assert self._result().columns() == ["theta", "method", "value"]

    def test_filtered(self):
        assert len(self._result().filtered(method="A1")) == 2
        assert self._result().filtered(method="A1", theta=0.4)[0]["value"] == 2.0

    def test_series_extraction(self):
        series = self._result().series("theta", "value", method="A1")
        assert series == [(0.2, 1.0), (0.4, 2.0)]

    def test_extend(self):
        result = self._result()
        result.extend([{"theta": 0.8, "method": "B1", "value": 4.0}])
        assert len(result.records) == 4

    def test_to_text_contains_parameters_and_notes(self):
        result = self._result()
        result.notes.append("a remark")
        text = result.to_text()
        assert "Demo experiment" in text
        assert "delta=0.1" in text
        assert "note: a remark" in text

    def test_to_dict_and_save(self, tmp_path):
        result = self._result()
        payload = result.to_dict()
        assert payload["experiment"] == "demo"
        path = tmp_path / "result.json"
        result.save(path)
        import json

        loaded = json.loads(path.read_text())
        assert loaded["records"][0]["method"] == "A1"
