"""Property tests for the incremental fairness engine (FairnessState).

The engine's contract is *exact* equivalence with the from-scratch
evaluators: after any sequence of swaps, every maintained statistic must be
bit-identical to recomputing it on the materialised ranking.  These tests
drive randomized swap sequences through both paths and compare.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import CandidateTable
from repro.core.pairwise import favored_mixed_pairs_by_group
from repro.core.ranking import Ranking
from repro.exceptions import FairnessError
from repro.fairness.fpr import fpr_by_group, fpr_vector
from repro.fairness.incremental import FairnessState
from repro.fairness.parity import parity_scores
from repro.fairness.thresholds import FairnessThresholds


def _random_table(rng: np.random.Generator, n: int, n_attributes: int = 2) -> CandidateTable:
    """Random candidate table where every attribute has >= 2 non-empty groups."""
    columns = {}
    for index in range(n_attributes):
        cardinality = int(rng.integers(2, 4))
        # One candidate per value first, so no group is empty.
        values = [f"v{v}" for v in range(cardinality)]
        values += [f"v{int(v)}" for v in rng.integers(0, cardinality, n - cardinality)]
        rng.shuffle(values)
        columns[f"P{index}"] = values
    return CandidateTable(columns)


def _assert_state_matches_scratch(state: FairnessState, table: CandidateTable) -> None:
    """Every maintained statistic equals the from-scratch value, bit for bit."""
    ranking = state.to_ranking()
    scratch = parity_scores(ranking, table)
    assert state.parity_scores() == scratch
    for entity in table.all_fairness_entities():
        membership = table.group_membership_array(entity)
        groups = table.groups(entity)
        expected_favored = favored_mixed_pairs_by_group(ranking, membership, len(groups))
        assert np.array_equal(state.favored_counts(entity), expected_favored)
        assert np.array_equal(state.fpr_vector(entity), fpr_vector(ranking, table, entity))


class TestConstruction:
    def test_initial_state_matches_scratch(self, tiny_table):
        ranking = Ranking([0, 3, 5, 1, 2, 4])
        state = FairnessState(ranking, tiny_table)
        _assert_state_matches_scratch(state, tiny_table)

    def test_to_ranking_round_trip(self, tiny_table):
        ranking = Ranking([5, 1, 0, 4, 2, 3])
        assert FairnessState(ranking, tiny_table).to_ranking() == ranking

    def test_universe_mismatch_rejected(self, tiny_table):
        with pytest.raises(FairnessError):
            FairnessState(Ranking([0, 1]), tiny_table)

    def test_group_covering_universe_rejected(self):
        # Declared domain has two values but only one occurs: a single group
        # covers every candidate, so the FPR is undefined (same failure as
        # the from-scratch fpr_vector).
        table = CandidateTable({"A": ["x", "x", "x"]}, domains={"A": ("x", "y")})
        with pytest.raises(FairnessError):
            FairnessState(Ranking([0, 1, 2]), table)

    def test_input_ranking_not_mutated(self, tiny_table):
        ranking = Ranking([0, 3, 5, 1, 2, 4])
        state = FairnessState(ranking, tiny_table)
        state.apply_swap(0, 4)
        assert ranking.to_list() == [0, 3, 5, 1, 2, 4]


class TestSwapQueries:
    def test_parity_after_swap_matches_materialised_swap(self, tiny_table):
        ranking = Ranking([0, 3, 5, 1, 2, 4])
        state = FairnessState(ranking, tiny_table)
        for first in range(6):
            for second in range(first + 1, 6):
                expected = parity_scores(ranking.swap(first, second), tiny_table)
                assert state.parity_after_swap(first, second) == expected
                # Symmetric in the argument order.
                assert state.parity_after_swap(second, first) == expected

    def test_delta_swap_matches_favored_difference(self, tiny_table):
        ranking = Ranking([2, 0, 4, 5, 1, 3])
        state = FairnessState(ranking, tiny_table)
        for first in range(6):
            for second in range(first + 1, 6):
                swapped = ranking.swap(first, second)
                deltas = state.delta_swap(first, second)
                for entity in tiny_table.all_fairness_entities():
                    membership = tiny_table.group_membership_array(entity)
                    n_groups = len(tiny_table.groups(entity))
                    before = favored_mixed_pairs_by_group(ranking, membership, n_groups)
                    after = favored_mixed_pairs_by_group(swapped, membership, n_groups)
                    assert np.array_equal(deltas[entity], after - before)

    def test_queries_do_not_mutate_state(self, tiny_table):
        ranking = Ranking([0, 3, 5, 1, 2, 4])
        state = FairnessState(ranking, tiny_table)
        before = state.parity_scores()
        state.parity_after_swap(0, 4)
        state.delta_swap(1, 5)
        state.potential_after_swap(2, 3, FairnessThresholds(0.1))
        assert state.parity_scores() == before
        assert state.to_ranking() == ranking

    def test_potential_after_swap_matches_violation_potential(self, tiny_table):
        from repro.fair.make_mr_fair import _violation_potential

        thresholds = FairnessThresholds(0.2, {"Race": 0.05})
        state = FairnessState(Ranking([0, 3, 5, 1, 2, 4]), tiny_table)
        for first, second in [(0, 4), (1, 2), (0, 5), (3, 4)]:
            assert state.potential_after_swap(first, second, thresholds) == (
                _violation_potential(state.parity_after_swap(first, second), thresholds)
            )

    def test_extreme_groups_match_fpr_argminmax(self, tiny_table):
        state = FairnessState(Ranking([4, 1, 0, 2, 5, 3]), tiny_table)
        for entity in tiny_table.all_fairness_entities():
            scores = state.fpr_vector(entity)
            assert state.extreme_groups(entity) == (
                int(np.argmax(scores)),
                int(np.argmin(scores)),
            )


class TestMoveQueries:
    @staticmethod
    def _materialised_move(ranking: Ranking, candidate: int, target: int) -> Ranking:
        order = ranking.to_list()
        order.remove(candidate)
        order.insert(target, candidate)
        return Ranking(order)

    def test_parity_after_move_matches_materialised_move(self, tiny_table):
        ranking = Ranking([0, 3, 5, 1, 2, 4])
        state = FairnessState(ranking, tiny_table)
        for candidate in range(6):
            for target in range(6):
                moved = self._materialised_move(ranking, candidate, target)
                assert state.parity_after_move(candidate, target) == parity_scores(
                    moved, tiny_table
                )

    def test_move_query_does_not_mutate_state(self, tiny_table):
        ranking = Ranking([0, 3, 5, 1, 2, 4])
        state = FairnessState(ranking, tiny_table)
        before = state.parity_scores()
        state.parity_after_move(0, 5)
        state.parity_after_move(5, 0)
        assert state.parity_scores() == before
        assert state.to_ranking() == ranking

    def test_move_target_out_of_range_rejected(self, tiny_table):
        state = FairnessState(Ranking.identity(6), tiny_table)
        with pytest.raises(FairnessError):
            state.parity_after_move(0, 6)
        with pytest.raises(FairnessError):
            state.apply_move(0, -1)

    def test_no_op_move_leaves_state_unchanged(self, tiny_table):
        ranking = Ranking([0, 3, 5, 1, 2, 4])
        state = FairnessState(ranking, tiny_table)
        for candidate in range(6):
            position = ranking.positions[candidate]
            assert state.parity_after_move(candidate, int(position)) == (
                state.parity_scores()
            )
            state.apply_move(candidate, int(position))
        assert state.to_ranking() == ranking
        _assert_state_matches_scratch(state, tiny_table)

    @pytest.mark.parametrize("target", [0, 5])
    def test_moves_to_both_ends(self, tiny_table, target):
        ranking = Ranking([0, 3, 5, 1, 2, 4])
        for candidate in range(6):
            state = FairnessState(ranking, tiny_table)
            state.apply_move(candidate, target)
            assert state.to_ranking() == self._materialised_move(
                ranking, candidate, target
            )
            _assert_state_matches_scratch(state, tiny_table)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_random_move_sequence_stays_exact(self, seed):
        """Every maintained statistic stays bit-identical to the from-scratch
        evaluators through randomized block-move sequences (the contract the
        fairness-constrained insertion repair relies on)."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 25))
        table = _random_table(rng, n, n_attributes=int(rng.integers(1, 4)))
        state = FairnessState(Ranking.random(n, rng), table)
        for _ in range(20):
            state.apply_move(int(rng.integers(0, n)), int(rng.integers(0, n)))
        _assert_state_matches_scratch(state, table)

    def test_interleaved_swaps_and_moves_stay_exact(self, tiny_table, rng):
        state = FairnessState(Ranking.random(6, rng), tiny_table)
        for _ in range(15):
            if rng.random() < 0.5:
                first, second = rng.choice(6, size=2, replace=False)
                state.apply_swap(int(first), int(second))
            else:
                state.apply_move(int(rng.integers(0, 6)), int(rng.integers(0, 6)))
            _assert_state_matches_scratch(state, tiny_table)


class TestSwapSequences:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_random_swap_sequence_stays_exact(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 30))
        table = _random_table(rng, n, n_attributes=int(rng.integers(1, 4)))
        ranking = Ranking.random(n, rng)
        state = FairnessState(ranking, table)
        for _ in range(25):
            first, second = rng.choice(n, size=2, replace=False)
            state.apply_swap(int(first), int(second))
        _assert_state_matches_scratch(state, table)

    def test_fpr_by_group_equivalence_after_swaps(self, tiny_table, rng):
        state = FairnessState(Ranking.random(6, rng), tiny_table)
        for _ in range(10):
            first, second = rng.choice(6, size=2, replace=False)
            state.apply_swap(int(first), int(second))
            current = state.to_ranking()
            for entity in tiny_table.all_fairness_entities():
                scratch = fpr_by_group(current, tiny_table, entity)
                groups = tiny_table.groups(entity)
                fast = state.fpr_vector(entity)
                assert {g.label: s for g, s in zip(groups, fast)} == scratch

    def test_swap_then_swap_back_restores_counts(self, tiny_table):
        ranking = Ranking([0, 3, 5, 1, 2, 4])
        state = FairnessState(ranking, tiny_table)
        reference = {
            entity: state.favored_counts(entity)
            for entity in tiny_table.all_fairness_entities()
        }
        state.apply_swap(0, 4)
        state.apply_swap(0, 4)
        assert state.to_ranking() == ranking
        for entity, counts in reference.items():
            assert np.array_equal(state.favored_counts(entity), counts)
