"""Tests for ARP, IRP and the MANI-Rank criteria (Definitions 5-7)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import CandidateTable
from repro.core.ranking import Ranking
from repro.fairness.parity import (
    arp,
    evaluate_mani_rank,
    irp,
    mani_rank_satisfied,
    mani_rank_violations,
    parity_scores,
)
from repro.fairness.thresholds import FairnessThresholds


class TestArp:
    def test_maximally_biased_ranking_has_arp_one(self, tiny_table):
        ranking = Ranking([0, 3, 5, 1, 2, 4])  # men block above women block
        assert arp(ranking, tiny_table, "Gender") == pytest.approx(1.0)

    def test_arp_zero_requires_equal_fpr(self):
        table = CandidateTable({"X": ["a", "b", "b", "a"]})
        # A symmetric placement (a at positions 0 and 3, b at 1 and 2) gives
        # both groups FPR exactly 0.5.
        ranking = Ranking([0, 1, 2, 3])
        assert arp(ranking, table, "X") == pytest.approx(0.0)

    def test_arp_bounds(self, tiny_table, rng):
        for _ in range(10):
            ranking = Ranking.random(6, rng)
            for entity in tiny_table.all_fairness_entities():
                assert 0.0 <= arp(ranking, tiny_table, entity) <= 1.0

    def test_arp_multivalued_attribute(self, tiny_table):
        ranking = Ranking([0, 1, 4, 2, 3, 5])  # race A block above race B block
        assert arp(ranking, tiny_table, "Race") == pytest.approx(1.0)

    def test_arp_is_max_pairwise_gap(self):
        table = CandidateTable({"X": ["a", "a", "b", "b", "c", "c"]})
        ranking = Ranking([0, 1, 2, 3, 4, 5])
        from repro.fairness.fpr import fpr_vector

        scores = fpr_vector(ranking, table, "X")
        assert arp(ranking, table, "X") == pytest.approx(scores.max() - scores.min())


class TestIrp:
    def test_irp_uses_intersection(self, tiny_table):
        ranking = Ranking([0, 3, 5, 1, 2, 4])
        assert irp(ranking, tiny_table) == arp(
            ranking, tiny_table, CandidateTable.INTERSECTION
        )

    def test_irp_single_attribute_degenerates_to_arp(self, single_attribute_table):
        ranking = Ranking([0, 2, 1, 3])
        assert irp(ranking, single_attribute_table) == arp(
            ranking, single_attribute_table, "Gender"
        )

    def test_singleton_intersection_groups_force_irp_one(self):
        """With all-singleton intersectional groups, IRP is 1 in any strict ranking."""
        table = CandidateTable(
            {"A": ["x", "x", "y", "y"], "B": ["u", "v", "u", "v"]}
        )
        for order in ([0, 1, 2, 3], [3, 1, 0, 2]):
            assert irp(Ranking(order), table) == pytest.approx(1.0)


class TestManiRank:
    def test_parity_scores_keys(self, tiny_table):
        scores = parity_scores(Ranking([0, 1, 2, 3, 4, 5]), tiny_table)
        assert set(scores) == {"Gender", "Race", CandidateTable.INTERSECTION}

    def test_biased_ranking_violates(self, tiny_table, biased_ranking_for_tiny_table):
        assert not mani_rank_satisfied(biased_ranking_for_tiny_table, tiny_table, 0.1)
        violations = mani_rank_violations(biased_ranking_for_tiny_table, tiny_table, 0.1)
        assert "Gender" in violations

    def test_loose_threshold_always_satisfied(self, tiny_table, rng):
        for _ in range(5):
            ranking = Ranking.random(6, rng)
            assert mani_rank_satisfied(ranking, tiny_table, 1.0)

    def test_per_entity_thresholds(self, tiny_table, biased_ranking_for_tiny_table):
        thresholds = FairnessThresholds(1.0, {"Gender": 0.5})
        violations = mani_rank_violations(
            biased_ranking_for_tiny_table, tiny_table, thresholds
        )
        assert set(violations) == {"Gender"}

    def test_threshold_boundary_counts_as_satisfied(self, tiny_table):
        ranking = Ranking([0, 1, 2, 3, 4, 5])
        scores = parity_scores(ranking, tiny_table)
        exact = FairnessThresholds(1.0, {entity: score for entity, score in scores.items()})
        assert mani_rank_satisfied(ranking, tiny_table, exact)

    def test_evaluate_mani_rank_report(self, tiny_table, biased_ranking_for_tiny_table):
        report = evaluate_mani_rank(biased_ranking_for_tiny_table, tiny_table, 0.2)
        assert not report.satisfied
        assert report.max_violation > 0
        assert set(report.parity) == set(report.thresholds)
        rows = report.entity_scores()
        assert len(rows) == 3
        assert any(not ok for _, _, _, ok in rows)

    def test_evaluate_mani_rank_satisfied_report(self, tiny_table):
        # Parity-friendly ranking: alternate groups.
        ranking = Ranking([0, 2, 4, 1, 5, 3])
        report = evaluate_mani_rank(ranking, tiny_table, 1.0)
        assert report.satisfied
        assert report.max_violation == 0.0

    @given(st.permutations(list(range(6))), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_violations_consistent_with_satisfied(self, order, delta):
        table = CandidateTable(
            {
                "Gender": ["Man", "Woman", "Woman", "Man", "Woman", "Man"],
                "Race": ["A", "A", "B", "B", "A", "B"],
            }
        )
        ranking = Ranking(list(order))
        satisfied = mani_rank_satisfied(ranking, table, delta)
        violations = mani_rank_violations(ranking, table, delta)
        assert satisfied == (not violations)
        for entity, score in violations.items():
            assert score > delta
